//! The shared sans-IO driving contract.
//!
//! Every protocol substrate in this workspace — reliable broadcast, binary
//! agreement, common subset, AVSS, the MPC engine — is written *sans IO*: a
//! pure state machine that consumes `(from, msg)` events and returns batches
//! of [`Outgoing`] messages. Historically each layer re-invented the glue
//! that turns such a machine into something a runtime can drive: the
//! broadcast crate had a private `Outgoing`/`Dest`/`Behavior` vocabulary and
//! a seeded-random `Net` driver, and `mediator-core` hand-rolled the same
//! wrapping again to embed the MPC engine into a [`Process`]. This module is
//! the one shared home for that contract:
//!
//! * [`Dest`] / [`Outgoing`] / [`map_batch`] — the outgoing-message shapes
//!   (re-exported by `mediator-bcast` for backward compatibility);
//! * [`route_batch`] — the single implementation of broadcast expansion;
//! * [`SansIo`] — the trait a driveable state machine implements;
//! * [`SansIoProcess`] — the generic adapter that wraps any [`SansIo`]
//!   machine as a [`Process`], so the full [`World`] — all
//!   schedulers, starvation bounds, traces, failure injection — can drive
//!   the substrates that previously only ran under the toy `Net` driver;
//! * [`Behavior`] / [`ByzantineProcess`] — byzantine players as processes,
//!   mirroring the `Net` driver's behaviour-closure semantics;
//! * [`run_machines`] — the convenience runner used by the protocol test
//!   suites (honest machines + byzantine behaviours + a scheduler in, an
//!   [`Outcome`] and per-player outputs out).
//!
//! See DESIGN.md §3 for the runtime-unification diagram.

use crate::process::{Action, Ctx, Process, ProcessId};
use crate::scheduler::Scheduler;
use crate::session::Session;
use crate::world::{Outcome, World};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// A shared message payload: `Arc` with value semantics.
///
/// [`route_batch`] expands a [`Dest::All`] batch by *cloning* the message
/// once per destination — for a `Vec<Fp>`-bearing payload that used to be
/// `n` deep copies per broadcast. Wrapping the heavy part of a message in
/// `Payload` turns each of those clones into a refcount bump; the receiving
/// state machine reads through `Deref` or takes ownership with
/// [`Payload::into_inner`] (free when it holds the last reference, e.g.
/// point-to-point messages). Comparisons forward to the payload value with
/// a pointer-equality fast path, so wire types keep deriving
/// `PartialEq`/`Ord` and broadcast copies compare equal in O(1). The
/// comparison impls require `T: Eq`/`T: Ord` (not merely the partial
/// forms): reflexivity is what makes the pointer fast path sound, and
/// every wire payload is an `Eq` type anyway.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct Payload<T>(Arc<T>);

impl<T> Payload<T> {
    /// Wraps a value for shared fan-out.
    pub fn new(value: T) -> Self {
        Payload(Arc::new(value))
    }

    /// Takes the value back out: free if this is the last reference
    /// (point-to-point delivery), one clone otherwise.
    pub fn into_inner(self) -> T
    where
        T: Clone,
    {
        Arc::try_unwrap(self.0).unwrap_or_else(|arc| (*arc).clone())
    }
}

impl<T> Clone for Payload<T> {
    fn clone(&self) -> Self {
        Payload(Arc::clone(&self.0))
    }
}

impl<T> std::ops::Deref for Payload<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> From<T> for Payload<T> {
    fn from(value: T) -> Self {
        Payload::new(value)
    }
}

impl<T: Eq> PartialEq for Payload<T> {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || *self.0 == *other.0
    }
}

impl<T: Eq> Eq for Payload<T> {}

impl<T: Ord> PartialOrd for Payload<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Ord> Ord for Payload<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            return std::cmp::Ordering::Equal;
        }
        self.0.cmp(&other.0)
    }
}

impl<T: std::hash::Hash> std::hash::Hash for Payload<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

/// Where an outgoing message goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dest {
    /// Point-to-point to one process.
    One(usize),
    /// To every process, **including the sender** (a process "receiving" its
    /// own broadcast keeps the state machines uniform; the embedding layer
    /// may shortcut the self-copy).
    All,
}

/// An outgoing message from a sans-IO state machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outgoing<M> {
    /// Destination.
    pub dest: Dest,
    /// Payload.
    pub msg: M,
}

impl<M> Outgoing<M> {
    /// Convenience constructor for a broadcast.
    pub fn all(msg: M) -> Self {
        Outgoing {
            dest: Dest::All,
            msg,
        }
    }

    /// Convenience constructor for a point-to-point message.
    pub fn to(dst: usize, msg: M) -> Self {
        Outgoing {
            dest: Dest::One(dst),
            msg,
        }
    }

    /// Maps the payload, keeping the destination (used to wrap sub-protocol
    /// messages with instance tags).
    pub fn map<N>(self, f: impl FnOnce(M) -> N) -> Outgoing<N> {
        Outgoing {
            dest: self.dest,
            msg: f(self.msg),
        }
    }
}

/// Maps a whole batch of outgoing messages (instance-tag wrapping).
pub fn map_batch<M, N>(batch: Vec<Outgoing<M>>, mut f: impl FnMut(M) -> N) -> Vec<Outgoing<N>> {
    batch.into_iter().map(|o| o.map(&mut f)).collect()
}

/// Expands a batch into point-to-point sends: the one shared implementation
/// of broadcast fan-out, used by the [`SansIoProcess`] adapter, the legacy
/// `Net` compatibility driver, and the cheap-talk embedding alike.
pub fn route_batch<M: Clone>(n: usize, batch: Vec<Outgoing<M>>, mut send: impl FnMut(usize, M)) {
    for o in batch {
        match o.dest {
            Dest::One(dst) => send(dst, o.msg),
            Dest::All => {
                for dst in 0..n {
                    send(dst, o.msg.clone());
                }
            }
        }
    }
}

/// Byzantine behaviour: `(me, from, msg) -> messages to inject`.
///
/// The same shape the legacy `Net` driver used; under a [`World`] the
/// behaviour runs inside a [`ByzantineProcess`].
pub trait BehaviorFn<M>: Fn(usize, usize, &M) -> Vec<(usize, M)> {
    /// Clones the behaviour into a fresh box (for reuse across seeds).
    fn clone_box(&self) -> Behavior<M>;
}

impl<M, F> BehaviorFn<M> for F
where
    F: Fn(usize, usize, &M) -> Vec<(usize, M)> + Clone + 'static,
{
    fn clone_box(&self) -> Behavior<M> {
        Box::new(self.clone())
    }
}

/// Boxed byzantine behaviour.
pub type Behavior<M> = Box<dyn BehaviorFn<M>>;

/// A driveable sans-IO protocol state machine.
///
/// Implementations hold whatever start-time input the protocol needs (a
/// dealer's value, an agreement vote, an MPC input vector) and surface the
/// protocol's terminal result through [`SansIo::on_message`]'s second return
/// slot. The `rng` handed in is the *process-local* deterministic generator
/// of the embedding runtime, so a machine's randomness is reproducible under
/// every scheduler.
pub trait SansIo {
    /// Wire message type.
    type Msg: Clone;
    /// Terminal (or notable intermediate) output type.
    type Output;

    /// Called exactly once when the runtime first schedules this player;
    /// returns the kick-off batch (empty for purely reactive players).
    fn on_start(&mut self, rng: &mut StdRng) -> Vec<Outgoing<Self::Msg>>;

    /// Handles one delivered message; returns messages to send plus the
    /// output if one is produced *now*.
    fn on_message(
        &mut self,
        from: usize,
        msg: Self::Msg,
        rng: &mut StdRng,
    ) -> (Vec<Outgoing<Self::Msg>>, Option<Self::Output>);

    /// Whether the machine has finished participating. Once true, the
    /// adapter halts the process: the runtime stops delivering to it.
    ///
    /// Implementations must only report `true` when the protocol's own
    /// termination rule says it is safe to stop (e.g. ABA's `2t+1`-Done
    /// gadget), otherwise early halting can strand peers below quorum.
    fn is_done(&self) -> bool {
        false
    }
}

/// Shared, cloneable per-player output store for a [`World`] run.
///
/// The [`World`] owns its processes, so output produced inside an adapter
/// has to flow out through a shared handle; `World` is single-threaded, so
/// an `Rc<RefCell<…>>` is exactly right.
#[derive(Debug)]
pub struct RunOutputs<T> {
    slots: Rc<RefCell<Vec<Option<T>>>>,
}

impl<T> Clone for RunOutputs<T> {
    fn clone(&self) -> Self {
        RunOutputs {
            slots: Rc::clone(&self.slots),
        }
    }
}

impl<T> RunOutputs<T> {
    /// Creates an empty store with one slot per player.
    pub fn new(n: usize) -> Self {
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || None);
        RunOutputs {
            slots: Rc::new(RefCell::new(v)),
        }
    }

    /// Records player `i`'s output (later outputs overwrite earlier ones, so
    /// the slot ends on the most recent — for terminal-event machines, the
    /// terminal — output).
    pub fn record(&self, i: usize, value: T) {
        self.slots.borrow_mut()[i] = Some(value);
    }

    /// Extracts all outputs, consuming the store's current contents.
    pub fn take(&self) -> Vec<Option<T>> {
        std::mem::take(&mut *self.slots.borrow_mut())
    }
}

impl<T: Clone> RunOutputs<T> {
    /// Snapshots all outputs.
    pub fn snapshot(&self) -> Vec<Option<T>> {
        self.slots.borrow().clone()
    }
}

/// Converts a machine output into the process's move in the underlying game
/// (see [`SansIoProcess::with_move`]).
pub type MoveMap<O> = Box<dyn Fn(&O) -> Action>;

/// The generic adapter: wraps any [`SansIo`] machine as a [`Process`], so
/// the full `World` — every scheduler, starvation bounds, traces, failure
/// injection — can drive it.
pub struct SansIoProcess<S: SansIo> {
    machine: S,
    n: usize,
    outputs: RunOutputs<S::Output>,
    to_action: Option<MoveMap<S::Output>>,
}

impl<S: SansIo> SansIoProcess<S> {
    /// Wraps `machine` for a world of `n` players, reporting outputs into
    /// `outputs`.
    pub fn new(machine: S, n: usize, outputs: RunOutputs<S::Output>) -> Self {
        SansIoProcess {
            machine,
            n,
            outputs,
            to_action: None,
        }
    }

    /// Additionally converts each output into a game move via `f` (so a
    /// substrate decision can double as the process's move in the underlying
    /// game, e.g. for outcome-resolution experiments).
    pub fn with_move(mut self, f: impl Fn(&S::Output) -> Action + 'static) -> Self {
        self.to_action = Some(Box::new(f));
        self
    }

    fn emit(&mut self, batch: Vec<Outgoing<S::Msg>>, ctx: &mut Ctx<S::Msg>) {
        route_batch(self.n, batch, |dst, msg| ctx.send(dst, msg));
    }
}

impl<S: SansIo> Process<S::Msg> for SansIoProcess<S> {
    fn on_start(&mut self, ctx: &mut Ctx<S::Msg>) {
        let batch = self.machine.on_start(ctx.std_rng());
        self.emit(batch, ctx);
        if self.machine.is_done() {
            ctx.halt();
        }
    }

    fn on_message(&mut self, src: ProcessId, msg: S::Msg, ctx: &mut Ctx<S::Msg>) {
        let (batch, output) = self.machine.on_message(src, msg, ctx.std_rng());
        self.emit(batch, ctx);
        if let Some(out) = output {
            if let Some(f) = &self.to_action {
                ctx.make_move(f(&out));
            }
            self.outputs.record(ctx.me(), out);
        }
        if self.machine.is_done() {
            ctx.halt();
        }
    }
}

/// A byzantine player as a process: every delivered message is fed to the
/// behaviour closure and the returned messages are injected into the world.
/// This reproduces the legacy `Net` driver's byzantine semantics under every
/// scheduler, including self-addressed injections (which arrive back as
/// fresh deliveries). An optional *kickoff* batch models actively deviant
/// starts — an equivocating dealer, forged first votes — sent when the
/// environment first schedules the player.
pub struct ByzantineProcess<M> {
    behavior: Behavior<M>,
    kickoff: Vec<(usize, M)>,
}

impl<M> ByzantineProcess<M> {
    /// Creates a byzantine process following `behavior`.
    pub fn new(behavior: Behavior<M>) -> Self {
        ByzantineProcess {
            behavior,
            kickoff: Vec::new(),
        }
    }

    /// Messages this player injects at start (e.g. an equivocating dealing).
    pub fn with_kickoff(mut self, kickoff: Vec<(usize, M)>) -> Self {
        self.kickoff = kickoff;
        self
    }
}

impl<M> From<Behavior<M>> for ByzantineProcess<M> {
    fn from(behavior: Behavior<M>) -> Self {
        ByzantineProcess::new(behavior)
    }
}

impl<M> Process<M> for ByzantineProcess<M> {
    fn on_start(&mut self, ctx: &mut Ctx<M>) {
        for (dst, m) in self.kickoff.drain(..) {
            ctx.send(dst, m);
        }
    }

    fn on_message(&mut self, src: ProcessId, msg: M, ctx: &mut Ctx<M>) {
        for (dst, m) in (self.behavior)(ctx.me(), src, &msg) {
            ctx.send(dst, m);
        }
    }
}

/// Default starvation bound for [`run_machines`]: adversarial schedulers
/// (LIFO, targeted delay) stay technically fair — every message is delivered
/// within this many steps — matching the paper's eventual-delivery model.
/// The value matches the cheap-talk embedding layer's bound: LIFO can spin
/// agreement rounds indefinitely on fresh traffic, and the bound is what
/// converts that livelock into near-linear runs while leaving plenty of
/// room for genuinely adversarial reordering.
pub const DEFAULT_STARVATION_BOUND: u64 = 2_000;

/// Builder over a set of sans-IO machines: the scenario-style entry the
/// protocol test suites and benches drive their substrates through.
///
/// One machine per player id; [`Machines::byzantine`] replaces a player's
/// machine with a behaviour (pass a [`Behavior`] for a purely reactive
/// adversary or a [`ByzantineProcess`] for one with a deviant kickoff).
/// [`Machines::run`] is the closed loop; [`Machines::session`] opens the
/// same run as a steppable [`Session`].
pub struct Machines<S: SansIo> {
    machines: Vec<S>,
    behaviors: Vec<Option<ByzantineProcess<S::Msg>>>,
    starvation_bound: u64,
}

impl<S> Machines<S>
where
    S: SansIo + 'static,
    S::Msg: 'static,
    S::Output: 'static,
{
    /// Starts a run over one machine per player. The starvation bound
    /// defaults to [`DEFAULT_STARVATION_BOUND`].
    pub fn new(machines: Vec<S>) -> Self {
        let n = machines.len();
        Machines {
            machines,
            behaviors: (0..n).map(|_| None).collect(),
            starvation_bound: DEFAULT_STARVATION_BOUND,
        }
    }

    /// Replaces player `p`'s machine with a byzantine behaviour.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a player.
    pub fn byzantine(mut self, p: usize, b: impl Into<ByzantineProcess<S::Msg>>) -> Self {
        assert!(p < self.machines.len(), "byzantine player {p} out of range");
        self.behaviors[p] = Some(b.into());
        self
    }

    /// Overrides the starvation bound (the fairness backstop force-delivers
    /// any event pending longer than this many steps).
    pub fn starvation_bound(mut self, bound: u64) -> Self {
        self.starvation_bound = bound;
        self
    }

    fn into_world(self, seed: u64) -> (World<S::Msg>, RunOutputs<S::Output>) {
        let n = self.machines.len();
        let outputs: RunOutputs<S::Output> = RunOutputs::new(n);
        let procs: Vec<Box<dyn Process<S::Msg>>> = self
            .machines
            .into_iter()
            .zip(self.behaviors)
            .map(|(m, b)| match b {
                Some(byzantine) => Box::new(byzantine) as Box<dyn Process<S::Msg>>,
                None => Box::new(SansIoProcess::new(m, n, outputs.clone())),
            })
            .collect();
        let mut world = World::new(procs, seed);
        world.set_starvation_bound(self.starvation_bound);
        (world, outputs)
    }

    /// Runs to completion, returning the world [`Outcome`] plus each
    /// player's recorded output (`None` for byzantine players and players
    /// that never produced one).
    pub fn run(
        self,
        scheduler: &mut dyn Scheduler,
        seed: u64,
        max_steps: u64,
    ) -> (Outcome, Vec<Option<S::Output>>) {
        let (mut world, outputs) = self.into_world(seed);
        let outcome = world.run(scheduler, max_steps);
        (outcome, outputs.take())
    }

    /// Opens the same run as a steppable [`Session`]. Outputs accumulate in
    /// the returned [`RunOutputs`] store as the session is stepped.
    pub fn session(
        self,
        scheduler: Box<dyn Scheduler>,
        seed: u64,
        max_steps: u64,
    ) -> (Session<S::Msg>, RunOutputs<S::Output>) {
        let (world, outputs) = self.into_world(seed);
        (Session::new(world, scheduler, max_steps), outputs)
    }
}

/// Runs one sans-IO machine per player under the given scheduler, replacing
/// the machines of byzantine players with their behaviours.
///
/// Thin wrapper over [`Machines`] (kept source-compatible for the protocol
/// test suites); see the builder for the steppable variant.
pub fn run_machines<S>(
    machines: Vec<S>,
    byz: Vec<(usize, ByzantineProcess<S::Msg>)>,
    scheduler: &mut dyn Scheduler,
    seed: u64,
    max_steps: u64,
) -> (Outcome, Vec<Option<S::Output>>)
where
    S: SansIo + 'static,
    S::Msg: 'static,
    S::Output: 'static,
{
    let mut run = Machines::new(machines);
    for (p, b) in byz {
        run = run.byzantine(p, b);
    }
    run.run(scheduler, seed, max_steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{FifoScheduler, LifoScheduler, RandomScheduler};
    use crate::world::TerminationKind;

    /// A toy sans-IO machine: the leader broadcasts a token; everyone
    /// outputs the first token they see and is done.
    struct Echo {
        token: Option<u32>,
        seen: Option<u32>,
    }

    impl SansIo for Echo {
        type Msg = u32;
        type Output = u32;

        fn on_start(&mut self, _rng: &mut StdRng) -> Vec<Outgoing<u32>> {
            match self.token.take() {
                Some(t) => vec![Outgoing::all(t)],
                None => Vec::new(),
            }
        }

        fn on_message(
            &mut self,
            _from: usize,
            msg: u32,
            _rng: &mut StdRng,
        ) -> (Vec<Outgoing<u32>>, Option<u32>) {
            if self.seen.is_none() {
                self.seen = Some(msg);
                (Vec::new(), Some(msg))
            } else {
                (Vec::new(), None)
            }
        }

        fn is_done(&self) -> bool {
            self.seen.is_some()
        }
    }

    fn echo_machines(n: usize, leader: usize, token: u32) -> Vec<Echo> {
        (0..n)
            .map(|me| Echo {
                token: (me == leader).then_some(token),
                seen: None,
            })
            .collect()
    }

    #[test]
    fn adapter_drives_machines_to_quiescence() {
        for seed in 0..5 {
            let (outcome, outputs) = run_machines(
                echo_machines(4, 0, 99),
                Vec::new(),
                &mut RandomScheduler::new(),
                seed,
                100_000,
            );
            assert_eq!(outcome.termination, TerminationKind::Quiescent);
            for o in &outputs {
                assert_eq!(*o, Some(99));
            }
        }
    }

    #[test]
    fn adapter_parity_across_schedulers() {
        let run = |sched: &mut dyn Scheduler| {
            run_machines(echo_machines(3, 1, 7), Vec::new(), sched, 3, 100_000).1
        };
        assert_eq!(run(&mut RandomScheduler::new()), run(&mut FifoScheduler));
        assert_eq!(run(&mut FifoScheduler), run(&mut LifoScheduler));
    }

    #[test]
    fn byzantine_behavior_replaces_machine() {
        // Player 1 is byzantine: it forwards a corrupted token to player 2.
        let behavior: Behavior<u32> = Box::new(|_me, _from, msg| vec![(2, msg * 2)]);
        let (_, outputs) = run_machines(
            echo_machines(3, 0, 21),
            vec![(1, behavior.into())],
            &mut FifoScheduler,
            0,
            100_000,
        );
        assert_eq!(outputs[0], Some(21));
        assert_eq!(outputs[1], None, "byzantine players record no output");
        // Player 2 sees either the real token first or the corrupted relay,
        // FIFO order: leader's broadcast (to 0,1,2) precedes the relay.
        assert_eq!(outputs[2], Some(21));
    }

    #[test]
    fn with_move_maps_outputs_to_game_moves() {
        let n = 3;
        let outputs = RunOutputs::new(n);
        let procs: Vec<Box<dyn Process<u32>>> = echo_machines(n, 0, 6)
            .into_iter()
            .map(|m| {
                Box::new(SansIoProcess::new(m, n, outputs.clone()).with_move(|&v| v as Action + 1))
                    as Box<dyn Process<u32>>
            })
            .collect();
        let mut world = World::new(procs, 5);
        let outcome = world.run(&mut RandomScheduler::new(), 100_000);
        assert_eq!(outcome.moves, vec![Some(7); n]);
    }

    #[test]
    fn route_batch_expands_broadcasts() {
        let mut sent = Vec::new();
        route_batch(3, vec![Outgoing::all(1u8), Outgoing::to(2, 9u8)], |d, m| {
            sent.push((d, m))
        });
        assert_eq!(sent, vec![(0, 1), (1, 1), (2, 1), (2, 9)]);
    }

    #[test]
    fn map_preserves_destination() {
        let o = Outgoing::to(3, 7u32).map(|v| v + 1);
        assert_eq!(o.dest, Dest::One(3));
        assert_eq!(o.msg, 8);
        let b = map_batch(vec![Outgoing::all(1u8), Outgoing::to(0, 2u8)], |v| {
            v as u16 * 10
        });
        assert_eq!(b[0].msg, 10);
        assert_eq!(b[1].msg, 20);
    }
}
