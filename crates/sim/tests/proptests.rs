//! Property-based tests for the simulator: determinism, conservation laws,
//! and trace well-formedness under arbitrary seeds and scheduler choices.

use mediator_sim::{
    Ctx, FifoScheduler, LifoScheduler, Process, ProcessId, RandomScheduler, Scheduler, TraceEvent,
    World,
};
use proptest::prelude::*;

/// A parameterized gossip protocol: each process forwards a counter to a
/// pseudo-random peer until it hits zero.
struct Gossip {
    n: usize,
    hops: u32,
}

impl Process<u32> for Gossip {
    fn on_start(&mut self, ctx: &mut Ctx<u32>) {
        if ctx.me() == 0 {
            let peer = 1 % self.n;
            ctx.send(peer, self.hops);
        }
    }
    fn on_message(&mut self, _src: ProcessId, hops: u32, ctx: &mut Ctx<u32>) {
        if hops == 0 {
            ctx.make_move(u64::from(hops));
            ctx.halt();
        } else {
            let peer = (ctx.me() + hops as usize) % self.n;
            ctx.send(peer, hops - 1);
        }
    }
}

fn gossip_world(n: usize, hops: u32, seed: u64) -> World<u32> {
    let procs: Vec<Box<dyn Process<u32>>> = (0..n)
        .map(|_| Box::new(Gossip { n, hops }) as Box<dyn Process<u32>>)
        .collect();
    World::new(procs, seed)
}

proptest! {
    /// Same seed + same scheduler = identical trace (full determinism).
    #[test]
    fn runs_are_reproducible(n in 2usize..6, hops in 0u32..20, seed in any::<u64>()) {
        let mut w1 = gossip_world(n, hops, seed);
        let mut w2 = gossip_world(n, hops, seed);
        let o1 = w1.run(&mut RandomScheduler::new(), 100_000);
        let o2 = w2.run(&mut RandomScheduler::new(), 100_000);
        prop_assert_eq!(o1.trace.events(), o2.trace.events());
        prop_assert_eq!(o1.moves, o2.moves);
        prop_assert_eq!(o1.steps, o2.steps);
    }

    /// Messages delivered never exceed messages sent, and with non-dropping
    /// schedulers the run ends with everything delivered or discarded at a
    /// halted process.
    #[test]
    fn message_conservation(n in 2usize..6, hops in 0u32..20, seed in any::<u64>()) {
        let mut w = gossip_world(n, hops, seed);
        let out = w.run(&mut RandomScheduler::new(), 100_000);
        prop_assert!(out.messages_delivered <= out.messages_sent);
        prop_assert_eq!(out.trace.sent_count(), out.messages_sent);
        prop_assert_eq!(out.trace.delivered_count(), out.messages_delivered);
    }

    /// Per-pair sequence numbers in the trace are consecutive from 1.
    #[test]
    fn per_pair_sequence_numbers_are_consecutive(n in 2usize..5, hops in 1u32..15, seed in any::<u64>()) {
        let mut w = gossip_world(n, hops, seed);
        let out = w.run(&mut FifoScheduler, 100_000);
        let mut counters = std::collections::BTreeMap::new();
        for e in out.trace.events() {
            if let TraceEvent::Sent { src, dst, k } = e {
                let c = counters.entry((src, dst)).or_insert(0u64);
                *c += 1;
                prop_assert_eq!(*k, *c, "non-consecutive k for {:?}", (src, dst));
            }
        }
    }

    /// The same protocol terminates under every built-in scheduler.
    #[test]
    fn termination_is_scheduler_independent(n in 2usize..5, hops in 0u32..15, seed in any::<u64>()) {
        for mk in [
            || Box::new(RandomScheduler::new()) as Box<dyn Scheduler>,
            || Box::new(FifoScheduler) as Box<dyn Scheduler>,
            || Box::new(LifoScheduler) as Box<dyn Scheduler>,
        ] {
            let mut w = gossip_world(n, hops, seed);
            let out = w.run(mk().as_mut(), 100_000);
            // The chain has hops+1 messages: someone eventually moves.
            prop_assert!(out.moves.iter().any(|m| m.is_some()));
        }
    }
}
