//! Property-based tests: distance metric axioms, LP solver sanity, and
//! solution-concept monotonicity laws.

use mediator_games::dist::{l1_distance, set_distance, OutcomeDist};
use mediator_games::lp;
use mediator_games::solution;
use mediator_games::BayesianGame;
use mediator_games::Strategy as GameStrategy;
use proptest::prelude::*;

fn arb_dist(support: usize) -> impl Strategy<Value = OutcomeDist> {
    proptest::collection::vec(1u32..100, support).prop_map(|ws| {
        let total: u32 = ws.iter().sum();
        ws.into_iter()
            .enumerate()
            .map(|(i, w)| (vec![i], w as f64 / total as f64))
            .collect()
    })
}

proptest! {
    #[test]
    fn l1_is_a_metric(a in arb_dist(4), b in arb_dist(4), c in arb_dist(4)) {
        // Identity, symmetry, triangle inequality.
        prop_assert!(l1_distance(&a, &a) < 1e-12);
        prop_assert!((l1_distance(&a, &b) - l1_distance(&b, &a)).abs() < 1e-12);
        prop_assert!(l1_distance(&a, &c) <= l1_distance(&a, &b) + l1_distance(&b, &c) + 1e-12);
    }

    #[test]
    fn l1_bounded_by_two(a in arb_dist(5), b in arb_dist(5)) {
        prop_assert!(l1_distance(&a, &b) <= 2.0 + 1e-12);
    }

    #[test]
    fn set_distance_zero_for_equal_sets(a in arb_dist(3), b in arb_dist(3)) {
        let xs = vec![a.clone(), b.clone()];
        let ys = vec![b, a];
        prop_assert!(set_distance(&xs, &ys) < 1e-12);
    }

    #[test]
    fn lp_max_min_margin_never_exceeds_best_entry(
        rows in proptest::collection::vec(
            proptest::collection::vec(-10.0f64..10.0, 3), 1..4
        ),
    ) {
        let base = vec![0.0; rows.len()];
        let (v, lambda) = lp::max_min_margin(&rows, &base);
        // Margin cannot exceed the best single entry of any row (each row's
        // margin is a convex combination of its entries).
        let cap = rows
            .iter()
            .map(|r| r.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
            .fold(f64::INFINITY, f64::min);
        prop_assert!(v <= cap + 1e-6, "v={v} cap={cap}");
        // The solution is a distribution.
        let total: f64 = lambda.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        prop_assert!(lambda.iter().all(|&l| l >= -1e-9));
        // And achieves (approximately) the reported value.
        let achieved = rows
            .iter()
            .map(|r| r.iter().zip(&lambda).map(|(x, l)| x * l).sum::<f64>())
            .fold(f64::INFINITY, f64::min);
        prop_assert!((achieved - v).abs() < 1e-6, "achieved={achieved} v={v}");
    }

    /// ε-monotonicity: if a profile is ε-k-resilient it is ε'-k-resilient
    /// for every ε' ≥ ε; and k-resilience is monotone downward in k.
    #[test]
    fn resilience_monotonicity(payoff_seed in any::<u64>()) {
        // Random 2-player 2-action complete-information game.
        let vals: Vec<f64> = (0..8)
            .map(|i| {
                let mut z = payoff_seed.wrapping_add(i * 0x9E37_79B9);
                z ^= z >> 16;
                (z % 100) as f64 / 10.0
            })
            .collect();
        let game = BayesianGame::complete_info("rand", vec![2, 2], move |a| {
            let ix = a[0] * 2 + a[1];
            vec![vals[ix], vals[4 + ix]]
        });
        let profile = vec![GameStrategy::pure(1, 2, 0), GameStrategy::pure(1, 2, 0)];
        for eps in [0.5f64, 1.0, 2.0, 4.0] {
            let weak = solution::is_k_resilient(&game, &profile, 2, eps);
            let weaker = solution::is_k_resilient(&game, &profile, 2, eps * 2.0);
            prop_assert!(!weak || weaker, "ε-monotonicity violated at ε={eps}");
        }
        let k2 = solution::is_k_resilient(&game, &profile, 2, 0.0);
        let k1 = solution::is_k_resilient(&game, &profile, 1, 0.0);
        prop_assert!(!k2 || k1, "k-monotonicity violated");
    }

    /// Robustness implies its components.
    #[test]
    fn robustness_implies_immunity_and_resilience(payoff_seed in any::<u64>()) {
        let vals: Vec<f64> = (0..8)
            .map(|i| {
                let mut z = payoff_seed.wrapping_add(i * 0xBF58_476D);
                z ^= z >> 13;
                (z % 50) as f64 / 5.0
            })
            .collect();
        let game = BayesianGame::complete_info("rand2", vec![2, 2], move |a| {
            let ix = a[0] * 2 + a[1];
            vec![vals[ix], vals[4 + ix]]
        });
        let profile = vec![GameStrategy::pure(1, 2, 1), GameStrategy::pure(1, 2, 1)];
        if solution::is_kt_robust(&game, &profile, 1, 1, 0.0, false) {
            prop_assert!(solution::is_k_resilient(&game, &profile, 1, 0.0));
            prop_assert!(solution::is_t_immune(&game, &profile, 1, 0.0));
        }
    }
}
