//! Behavioural strategies, profiles, and coalition deviations.

use crate::game::{ActionIx, BayesianGame, TypeIx};

/// A behavioural strategy for one player: a map `T_i → Δ(A_i)`.
///
/// # Example
///
/// ```
/// use mediator_games::Strategy;
/// let s = Strategy::uniform(2, 3); // 2 types, 3 actions, uniform play
/// assert!((s.prob(1, 2) - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Strategy {
    /// `rows[t][a]` = probability of action `a` given type `t`.
    rows: Vec<Vec<f64>>,
}

impl Strategy {
    /// Creates a strategy from explicit rows.
    ///
    /// # Panics
    ///
    /// Panics if any row is empty or does not sum to 1 (±1e-9).
    pub fn new(rows: Vec<Vec<f64>>) -> Self {
        assert!(!rows.is_empty(), "strategy needs at least one type row");
        for row in &rows {
            assert!(!row.is_empty(), "strategy row needs at least one action");
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "strategy row sums to {s}");
            assert!(row.iter().all(|&p| p >= -1e-12), "negative probability");
        }
        Strategy { rows }
    }

    /// The pure strategy playing `action` regardless of type.
    pub fn pure(types: usize, actions: usize, action: ActionIx) -> Self {
        assert!(action < actions);
        let mut row = vec![0.0; actions];
        row[action] = 1.0;
        Strategy {
            rows: vec![row; types],
        }
    }

    /// A type-dependent pure strategy: plays `choice[t]` on type `t`.
    pub fn pure_by_type(actions: usize, choice: &[ActionIx]) -> Self {
        let rows = choice
            .iter()
            .map(|&a| {
                assert!(a < actions);
                let mut row = vec![0.0; actions];
                row[a] = 1.0;
                row
            })
            .collect();
        Strategy { rows }
    }

    /// The uniformly-mixed strategy.
    pub fn uniform(types: usize, actions: usize) -> Self {
        Strategy {
            rows: vec![vec![1.0 / actions as f64; actions]; types],
        }
    }

    /// Probability of playing `a` given type `t`.
    pub fn prob(&self, t: TypeIx, a: ActionIx) -> f64 {
        self.rows[t][a]
    }

    /// Number of types this strategy covers.
    pub fn num_types(&self) -> usize {
        self.rows.len()
    }

    /// Number of actions.
    pub fn num_actions(&self) -> usize {
        self.rows[0].len()
    }
}

/// A strategy profile: one [`Strategy`] per player.
pub type StrategyProfile = Vec<Strategy>;

/// Validates that `profile` matches the game's dimensions.
///
/// # Panics
///
/// Panics on any mismatch — profiles are caller-constructed data and a
/// dimension error is a programming bug.
pub fn validate_profile(game: &BayesianGame, profile: &StrategyProfile) {
    assert_eq!(
        profile.len(),
        game.n(),
        "profile has wrong number of players"
    );
    for (i, s) in profile.iter().enumerate() {
        assert_eq!(
            s.num_types(),
            game.type_counts()[i],
            "player {i}: wrong type count"
        );
        assert_eq!(
            s.num_actions(),
            game.action_counts()[i],
            "player {i}: wrong action count"
        );
    }
}

/// A *coalition deviation*: a possibly-correlated joint strategy for a
/// coalition, as a function of the coalition's joint type.
///
/// The paper's deviating coalitions share their type information and may
/// correlate their moves (they can talk to each other), so a deviation maps
/// the coalition's joint type profile to a distribution over joint action
/// profiles of the coalition.
#[derive(Debug, Clone)]
pub struct CoalitionDeviation {
    /// Players in the coalition (sorted, no duplicates).
    pub members: Vec<usize>,
    /// `table[joint_type_index]` = distribution over joint actions, where
    /// joint indices enumerate the member type/action profiles
    /// lexicographically (member order as in `members`).
    pub table: Vec<Vec<f64>>,
}

impl CoalitionDeviation {
    /// The deviation in which the coalition plays a fixed joint pure action
    /// regardless of type.
    pub fn pure(game: &BayesianGame, members: Vec<usize>, joint_action: &[ActionIx]) -> Self {
        let num_joint_types: usize = members.iter().map(|&i| game.type_counts()[i]).product();
        let num_joint_actions: usize = members.iter().map(|&i| game.action_counts()[i]).product();
        let idx = joint_action_index(game, &members, joint_action);
        let mut row = vec![0.0; num_joint_actions];
        row[idx] = 1.0;
        CoalitionDeviation {
            members,
            table: vec![row; num_joint_types.max(1)],
        }
    }

    /// Probability that the coalition plays joint action index `ja` given
    /// joint type index `jt`.
    pub fn prob(&self, jt: usize, ja: usize) -> f64 {
        self.table[jt][ja]
    }
}

/// Lexicographic index of a joint action of `members`.
pub fn joint_action_index(game: &BayesianGame, members: &[usize], joint: &[ActionIx]) -> usize {
    debug_assert_eq!(members.len(), joint.len());
    let mut idx = 0;
    for (m, &a) in members.iter().zip(joint) {
        idx = idx * game.action_counts()[*m] + a;
    }
    idx
}

/// Lexicographic index of a joint type assignment of `members`.
pub fn joint_type_index(game: &BayesianGame, members: &[usize], types: &[TypeIx]) -> usize {
    debug_assert_eq!(members.len(), types.len());
    let mut idx = 0;
    for (m, &t) in members.iter().zip(types) {
        idx = idx * game.type_counts()[*m] + t;
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::BayesianGame;

    fn g() -> BayesianGame {
        BayesianGame::new(
            "t",
            vec![2, 1, 2],
            vec![2, 3, 2],
            vec![
                (vec![0, 0, 0], 0.25),
                (vec![0, 0, 1], 0.25),
                (vec![1, 0, 0], 0.25),
                (vec![1, 0, 1], 0.25),
            ],
            |_, _| vec![0.0; 3],
        )
    }

    #[test]
    fn pure_strategy_prob() {
        let s = Strategy::pure(2, 3, 1);
        assert_eq!(s.prob(0, 1), 1.0);
        assert_eq!(s.prob(1, 0), 0.0);
    }

    #[test]
    fn pure_by_type_varies() {
        let s = Strategy::pure_by_type(2, &[0, 1]);
        assert_eq!(s.prob(0, 0), 1.0);
        assert_eq!(s.prob(1, 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn invalid_row_rejected() {
        Strategy::new(vec![vec![0.7, 0.7]]);
    }

    #[test]
    fn validate_profile_accepts_matching() {
        let game = g();
        let profile = vec![
            Strategy::uniform(2, 2),
            Strategy::uniform(1, 3),
            Strategy::uniform(2, 2),
        ];
        validate_profile(&game, &profile);
    }

    #[test]
    #[should_panic(expected = "wrong type count")]
    fn validate_profile_rejects_mismatch() {
        let game = g();
        let profile = vec![
            Strategy::uniform(1, 2),
            Strategy::uniform(1, 3),
            Strategy::uniform(2, 2),
        ];
        validate_profile(&game, &profile);
    }

    #[test]
    fn joint_indices_are_lexicographic() {
        let game = g();
        // Coalition {0, 1}: actions 2 × 3.
        assert_eq!(joint_action_index(&game, &[0, 1], &[0, 0]), 0);
        assert_eq!(joint_action_index(&game, &[0, 1], &[0, 2]), 2);
        assert_eq!(joint_action_index(&game, &[0, 1], &[1, 0]), 3);
        // Coalition {0, 2}: types 2 × 2.
        assert_eq!(joint_type_index(&game, &[0, 2], &[1, 1]), 3);
    }

    #[test]
    fn pure_coalition_deviation() {
        let game = g();
        let d = CoalitionDeviation::pure(&game, vec![0, 1], &[1, 2]);
        let ja = joint_action_index(&game, &[0, 1], &[1, 2]);
        for jt in 0..d.table.len() {
            assert_eq!(d.prob(jt, ja), 1.0);
        }
        assert_eq!(d.table.len(), 2); // player 0 has 2 types, player 1 has 1
    }
}
