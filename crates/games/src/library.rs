//! Concrete games: the paper's running examples and the experiment workloads.
//!
//! * [`counterexample_game`] — the §6.4 game showing that naive punishment
//!   fails (actions `{0, 1, ⊥}`, payoffs 1.1 / 1 / 2 / 0).
//! * [`byzantine_agreement_game`] — the introduction's motivating example:
//!   agreement becomes trivial with a mediator computing the majority.
//! * [`chicken_correlated`] — the classic game whose correlated equilibrium
//!   (worth more than any Nash) *requires* a mediator; the canonical reason
//!   mediators help at all.
//! * [`prisoners_dilemma`], [`coordination_game`], [`free_rider_game`] —
//!   standard games used across the test-suite (the free-rider game encodes
//!   the paper's Gnutella discussion in §3).

use crate::dist::OutcomeDist;
use crate::game::{ActionIx, BayesianGame, TypeIx};
use crate::strategy::{Strategy, StrategyProfile};

/// Action index for `⊥` in the counterexample game.
pub const BOTTOM: ActionIx = 2;

/// The §6.4 counterexample game for `n` players (requires `n > 3k` with
/// `k = ⌊(n−1)/3⌋` computed here).
///
/// Actions are `{0, 1, ⊥}` (⊥ encoded as index [`BOTTOM`]). Payoffs (common
/// to all players):
///
/// * ≥ k+1 players play ⊥ → everyone gets **1.1**;
/// * ≤ k play ⊥ and everyone plays 0 or ⊥ → everyone gets **1**;
/// * ≤ k play ⊥ and everyone plays 1 or ⊥ → everyone gets **2**;
/// * otherwise → everyone gets **0**.
///
/// Returns `(game, mediated_outcome, k)`, where `mediated_outcome` is the
/// distribution the paper's mediator induces (all play `b` for a uniform
/// coin `b`), worth an expected **1.5** to every player.
pub fn counterexample_game(n: usize) -> (BayesianGame, OutcomeDist, usize) {
    assert!(n >= 4, "need n ≥ 4 so that k ≥ 1");
    let k = (n - 1) / 3;
    let game = BayesianGame::complete_info(
        format!("counterexample-6.4(n={n},k={k})"),
        vec![3; n],
        move |a| {
            let bots = a.iter().filter(|&&x| x == BOTTOM).count();
            let zeros = a.iter().filter(|&&x| x == 0).count();
            let ones = a.iter().filter(|&&x| x == 1).count();
            let u = if bots > k {
                1.1
            } else if ones == 0 && zeros + bots == a.len() {
                1.0
            } else if zeros == 0 && ones + bots == a.len() {
                2.0
            } else {
                0.0
            };
            vec![u; a.len()]
        },
    );
    let mut mediated = OutcomeDist::new();
    mediated.add(vec![0; n], 0.5);
    mediated.add(vec![1; n], 0.5);
    (game, mediated, k)
}

/// Expected utilities of a (complete-information) game under an outcome
/// distribution — e.g. the mediated reference outcome.
pub fn dist_utilities(game: &BayesianGame, types: &[TypeIx], dist: &OutcomeDist) -> Vec<f64> {
    let mut acc = vec![0.0; game.n()];
    for (profile, p) in dist.iter() {
        let us = game.utilities(types, profile);
        for i in 0..game.n() {
            acc[i] += p * us[i];
        }
    }
    acc
}

/// The Byzantine-agreement game from the paper's introduction for `n`
/// players.
///
/// Types are initial bits (uniform i.i.d.); actions are `{0, 1}`. All
/// players get 1 if they unanimously output the majority of the inputs
/// (ties broken toward 0), and 0 otherwise. With a mediator the honest
/// strategy is trivial: send your input, output the majority the mediator
/// returns.
pub fn byzantine_agreement_game(n: usize) -> BayesianGame {
    let profiles: Vec<(Vec<TypeIx>, f64)> = (0..(1usize << n))
        .map(|mask| {
            let tp: Vec<TypeIx> = (0..n).map(|i| (mask >> i) & 1).collect();
            (tp, 1.0 / (1usize << n) as f64)
        })
        .collect();
    BayesianGame::new(
        format!("byzantine-agreement(n={n})"),
        vec![2; n],
        vec![2; n],
        profiles,
        move |t, a| {
            let maj = majority(t);
            let agreed = a.iter().all(|&x| x == a[0]);
            let u = if agreed && a[0] == maj { 1.0 } else { 0.0 };
            vec![u; t.len()]
        },
    )
}

/// Majority of a bit vector, ties toward 0 (the mediator's rule).
pub fn majority(bits: &[usize]) -> usize {
    let ones = bits.iter().filter(|&&b| b == 1).count();
    usize::from(2 * ones > bits.len())
}

/// Chicken with a mediator-only correlated equilibrium.
///
/// Payoffs (row = player 0): actions are 0 = Dare, 1 = Chicken.
///
/// ```text
///            Dare      Chicken
/// Dare      (0, 0)     (7, 2)
/// Chicken   (2, 7)     (6, 6)
/// ```
///
/// The mediator draws `(C,C)` with probability 1/2 and `(C,D)`, `(D,C)` with
/// probability 1/4 each, privately telling each player its own action.
/// Obeying is a correlated equilibrium (told Dare: 7 > 6 strict; told
/// Chicken: 14/3 either way, weak) worth **5.25** to each player —
/// strictly more than the symmetric mixed Nash (14/3 ≈ 4.67) and
/// unattainable without correlation. The dyadic probabilities are chosen so
/// the distribution is *exactly* realizable from two fair coins, which the
/// arithmetic-circuit mediator needs.
pub fn chicken_correlated() -> (BayesianGame, OutcomeDist) {
    let game = BayesianGame::complete_info("chicken", vec![2, 2], |a| match (a[0], a[1]) {
        (0, 0) => vec![0.0, 0.0],
        (0, 1) => vec![7.0, 2.0],
        (1, 0) => vec![2.0, 7.0],
        (1, 1) => vec![6.0, 6.0],
        _ => unreachable!(),
    });
    let mut mediated = OutcomeDist::new();
    mediated.add(vec![1, 1], 0.5);
    mediated.add(vec![0, 1], 0.25);
    mediated.add(vec![1, 0], 0.25);
    (game, mediated)
}

/// The prisoner's dilemma and its defection equilibrium.
pub fn prisoners_dilemma() -> (BayesianGame, StrategyProfile) {
    let game =
        BayesianGame::complete_info("prisoners-dilemma", vec![2, 2], |a| match (a[0], a[1]) {
            (0, 0) => vec![3.0, 3.0],
            (0, 1) => vec![0.0, 4.0],
            (1, 0) => vec![4.0, 0.0],
            (1, 1) => vec![1.0, 1.0],
            _ => unreachable!(),
        });
    let defect = vec![Strategy::pure(1, 2, 1), Strategy::pure(1, 2, 1)];
    (game, defect)
}

/// A pure coordination game for `n` players with `m` meeting points: all get
/// 1 if unanimous, 0 otherwise.
pub fn coordination_game(n: usize, m: usize) -> BayesianGame {
    BayesianGame::complete_info(format!("coordination(n={n},m={m})"), vec![m; n], |a| {
        let u = if a.iter().all(|&x| x == a[0]) {
            1.0
        } else {
            0.0
        };
        vec![u; a.len()]
    })
}

/// The free-rider (file-sharing) game from the paper's §3 discussion of
/// Gnutella: action 0 = share (cost 0.2), action 1 = free-ride. Every player
/// gains 1 if at least one *other* player shares. Not sharing strictly
/// dominates, so "nobody shares" is the unique equilibrium — yet ~30% of
/// real users share, the paper's motivation for t-immunity.
pub fn free_rider_game(n: usize) -> (BayesianGame, StrategyProfile) {
    let game = BayesianGame::complete_info(format!("free-rider(n={n})"), vec![2; n], |a| {
        (0..a.len())
            .map(|i| {
                let others_share = a.iter().enumerate().any(|(j, &x)| j != i && x == 0);
                let gain = if others_share { 1.0 } else { 0.0 };
                let cost = if a[i] == 0 { 0.2 } else { 0.0 };
                gain - cost
            })
            .collect()
    });
    let all_ride = (0..n).map(|_| Strategy::pure(1, 2, 1)).collect();
    (game, all_ride)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution;

    #[test]
    fn counterexample_payoff_cases() {
        let (g, _, k) = counterexample_game(7);
        assert_eq!(k, 2);
        let n = 7;
        // All zeros → 1.
        assert_eq!(g.utilities(&vec![0; n], &vec![0; n])[0], 1.0);
        // All ones → 2.
        assert_eq!(g.utilities(&vec![0; n], &vec![1; n])[0], 2.0);
        // k+1 = 3 bottoms → 1.1 regardless of the rest.
        let mut a = vec![0; n];
        a[0] = BOTTOM;
        a[1] = BOTTOM;
        a[2] = BOTTOM;
        a[3] = 1;
        assert!((g.utilities(&vec![0; n], &a)[0] - 1.1).abs() < 1e-12);
        // Mixed 0s and 1s with ≤ k bottoms → 0.
        let mut a = vec![0; n];
        a[0] = 1;
        assert_eq!(g.utilities(&vec![0; n], &a)[0], 0.0);
        // ≤ k bottoms with only zeros → 1.
        let mut a = vec![0; n];
        a[0] = BOTTOM;
        assert_eq!(g.utilities(&vec![0; n], &a)[0], 1.0);
    }

    #[test]
    fn counterexample_mediated_value_is_1_5() {
        let (g, mediated, _) = counterexample_game(4);
        let us = dist_utilities(&g, &[0; 4], &mediated);
        for u in us {
            assert!((u - 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn byzantine_agreement_majority_outcome_pays() {
        let g = byzantine_agreement_game(3);
        // types (1,1,0): majority 1. Unanimous 1 pays.
        assert_eq!(g.utilities(&[1, 1, 0], &[1, 1, 1]), vec![1.0; 3]);
        assert_eq!(g.utilities(&[1, 1, 0], &[0, 0, 0]), vec![0.0; 3]);
        assert_eq!(g.utilities(&[1, 1, 0], &[1, 0, 1]), vec![0.0; 3]);
        // Tie (majority rule: ties toward 0) — n=3 cannot tie; check n=4.
        let g4 = byzantine_agreement_game(4);
        assert_eq!(g4.utilities(&[0, 0, 1, 1], &[0, 0, 0, 0]), vec![1.0; 4]);
    }

    #[test]
    fn majority_rule() {
        assert_eq!(majority(&[1, 1, 0]), 1);
        assert_eq!(majority(&[0, 1]), 0); // tie → 0
        assert_eq!(majority(&[1]), 1);
    }

    #[test]
    fn chicken_correlated_value_is_5_25() {
        let (g, med) = chicken_correlated();
        let us = dist_utilities(&g, &[0, 0], &med);
        // 0.5·6 + 0.25·7 + 0.25·2 = 5.25 for each player.
        assert!((us[0] - 5.25).abs() < 1e-12);
        assert!((us[1] - 5.25).abs() < 1e-12);
    }

    #[test]
    fn chicken_correlated_is_an_equilibrium_of_obedience() {
        // Obeying the mediator must be a correlated equilibrium: told Dare,
        // the other is surely Chicken (7 ≥ 6); told Chicken, the posterior is
        // 2/3 Chicken, 1/3 Dare (14/3 either way).
        let (g, med) = chicken_correlated();
        // Conditional on being told Chicken (action 1), player 0's payoff:
        let p_cc = med.prob(&[1, 1]);
        let p_cd = med.prob(&[1, 0]); // player 0 Chicken, player 1 Dare
        let norm = p_cc + p_cd;
        let obey = (p_cc * g.utilities(&[0, 0], &[1, 1])[0]
            + p_cd * g.utilities(&[0, 0], &[1, 0])[0])
            / norm;
        let defect = (p_cc * g.utilities(&[0, 0], &[0, 1])[0]
            + p_cd * g.utilities(&[0, 0], &[0, 0])[0])
            / norm;
        assert!(obey >= defect - 1e-12, "obey {obey} vs defect {defect}");
    }

    #[test]
    fn chicken_has_no_symmetric_pure_equilibrium_as_good() {
        let (g, _) = chicken_correlated();
        // (C,C) = (6,6) is not Nash: deviating to Dare gives 7.
        let cc = vec![Strategy::pure(1, 2, 1), Strategy::pure(1, 2, 1)];
        assert!(!solution::is_k_resilient(&g, &cc, 1, 0.0));
        // (D,C) is Nash, worth (7,2) — asymmetric.
        let dc = vec![Strategy::pure(1, 2, 0), Strategy::pure(1, 2, 1)];
        assert!(solution::is_k_resilient(&g, &dc, 1, 0.0));
    }

    #[test]
    fn free_riding_dominates() {
        let (g, all_ride) = free_rider_game(3);
        assert!(solution::is_k_resilient(&g, &all_ride, 1, 0.0));
        // Everyone sharing is NOT an equilibrium (free-riding saves 0.2).
        let all_share = vec![Strategy::pure(1, 2, 0); 3];
        assert!(!solution::is_k_resilient(&g, &all_share, 1, 0.0));
    }

    #[test]
    fn coordination_unanimity_is_robust_equilibrium() {
        let g = coordination_game(3, 2);
        let all0 = vec![Strategy::pure(1, 2, 0); 3];
        assert!(solution::is_k_resilient(&g, &all0, 1, 0.0));
        // A single adversary CAN harm the others (break unanimity):
        // coordination is not 1-immune.
        assert!(!solution::is_t_immune(&g, &all0, 1, 0.0));
    }
}
