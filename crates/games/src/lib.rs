//! Normal-form Bayesian games and the solution concepts of
//! Abraham–Dolev–Geffner–Halpern (PODC 2019), §2–§3.
//!
//! The paper's underlying game `Γ` is a finite normal-form Bayesian game:
//! players have private types drawn from a commonly-known joint distribution,
//! pick one action each, and receive utilities determined by the type and
//! action profiles. This crate provides:
//!
//! * [`BayesianGame`] — the game representation, with exact expected-utility
//!   evaluation by enumeration (games here are small by design).
//! * [`Strategy`] / [`StrategyProfile`] — behavioural strategies
//!   `T_i → Δ(A_i)` and profiles, plus *coalition deviations* that may
//!   correlate the coalition's actions and depend on the coalition's joint
//!   type (the paper lets deviating coalitions share type information).
//! * [`solution`] — exact checkers for k-resilience, t-immunity,
//!   (k,t)-robustness and their ε- and strong variants (Definitions
//!   3.1–3.6), using a small built-in LP so *mixed* coalition deviations are
//!   searched exactly, not just pure ones.
//! * [`punishment`] — m-punishment strategies (Definition 4.3).
//! * [`library`] — the concrete games used by the paper and the experiments,
//!   including the §6.4 counterexample.
//! * [`dist`] — the L1 distance on outcome distributions used by the
//!   ε-implementation definition (§2).
//! * [`stats`] — confidence intervals (normal, Wilson, bootstrap) for the
//!   empirical utility accounting the conformance harness builds on.
//!
//! # Example
//!
//! ```
//! use mediator_games::library;
//! use mediator_games::solution;
//!
//! let (game, eq) = library::prisoners_dilemma();
//! // Mutual defection is a Nash equilibrium (1-resilient) ...
//! assert!(solution::is_k_resilient(&game, &eq, 1, 0.0));
//! // ... but not resilient to a coalition of both players.
//! assert!(!solution::is_k_resilient(&game, &eq, 2, 0.0));
//! ```

pub mod correlated;
pub mod dist;
pub mod game;
pub mod library;
pub mod lp;
pub mod punishment;
pub mod solution;
pub mod stats;
pub mod strategy;

pub use dist::{l1_distance, OutcomeDist};
pub use game::{ActionIx, BayesianGame, TypeIx};
pub use stats::ConfidenceInterval;
pub use strategy::{CoalitionDeviation, Strategy, StrategyProfile};
