//! m-punishment strategies (Definition 4.3).
//!
//! A profile `ρ` in the underlying game is an *m-punishment strategy* with
//! respect to an (extended-game) equilibrium `σ'` if, whenever all but at
//! most `m` players play `ρ`, every one of the ≤ m deviators ends up strictly
//! worse off than its expected utility under `σ'` — no matter what the
//! deviators play. Theorems 4.4/4.5 use the punishment as the content of the
//! honest players' *wills*: deadlocking the cheap talk triggers `ρ`, so a
//! rational coalition prefers to let the protocol finish.

use crate::game::{BayesianGame, TypeIx};
use crate::solution::{payoff_matrix, subsets_up_to, TOL};
use crate::strategy::{validate_profile, StrategyProfile};

/// A witness that `rho` fails to m-punish: a deviating set and a member that
/// still reaches its equilibrium utility.
#[derive(Debug, Clone)]
pub struct PunishmentFailure {
    /// The deviating set `K`.
    pub deviators: Vec<usize>,
    /// The member whose best response against the punishment is not worse
    /// than its equilibrium utility.
    pub survivor: usize,
    /// Best-response utility against the punishment.
    pub achieved: f64,
    /// The equilibrium utility it had to fall below.
    pub target: f64,
    /// The conditioning joint type assignment of `K`.
    pub types: Vec<TypeIx>,
}

/// Checks Definition 4.3: is `rho` an m-punishment strategy with respect to
/// target utilities `target[i](x_K)`?
///
/// `target` gives each player's expected equilibrium utility in the extended
/// game, conditional on nothing (the common case: equilibrium utilities do
/// not depend on the coalition's private types — Corollary 6.3 makes them
/// scheduler-independent as well). Pass per-player unconditional utilities.
///
/// Deviators are searched over pure joint type-dependent actions, which is
/// exhaustive: each deviator maximizes a linear function of its own mixed
/// strategy, so a pure best response exists.
pub fn is_m_punishment(
    game: &BayesianGame,
    rho: &StrategyProfile,
    target: &[f64],
    m: usize,
) -> bool {
    punishment_failure(game, rho, target, m).is_none()
}

/// Returns a witness if `rho` fails to m-punish; see [`is_m_punishment`].
pub fn punishment_failure(
    game: &BayesianGame,
    rho: &StrategyProfile,
    target: &[f64],
    m: usize,
) -> Option<PunishmentFailure> {
    validate_profile(game, rho);
    assert_eq!(target.len(), game.n());
    if m == 0 {
        return None;
    }
    for deviators in subsets_up_to(game.n(), m) {
        for tassign in game.type_profiles_of(&deviators) {
            let mut rep = vec![0; game.n()];
            for (pos, &i) in deviators.iter().enumerate() {
                rep[i] = tassign[pos];
            }
            let cond = game.type_dist_given(&deviators, &rep);
            if cond.is_empty() {
                continue;
            }
            let matrix = payoff_matrix(game, rho, &[], &deviators, &cond);
            for (pos, &i) in deviators.iter().enumerate() {
                let best = matrix
                    .iter()
                    .map(|col| col[i])
                    .fold(f64::NEG_INFINITY, f64::max);
                // Definition 4.3 requires u_i(σ') > u_i(best response vs ρ):
                // the punishment fails if the deviator can reach ≥ target.
                if best >= target[i] - TOL {
                    return Some(PunishmentFailure {
                        deviators: deviators.clone(),
                        survivor: i,
                        achieved: best,
                        target: target[i],
                        types: tassign.clone(),
                    });
                }
                let _ = pos;
            }
        }
    }
    None
}

/// The *punishment margin*: the smallest gap `target[i] − best_response_i`
/// over all deviating sets of size ≤ m and members i. Positive iff `rho`
/// m-punishes. Used by experiment tables to report "how much teeth" a
/// punishment has.
pub fn punishment_margin(
    game: &BayesianGame,
    rho: &StrategyProfile,
    target: &[f64],
    m: usize,
) -> f64 {
    validate_profile(game, rho);
    let mut margin = f64::INFINITY;
    for deviators in subsets_up_to(game.n(), m) {
        for tassign in game.type_profiles_of(&deviators) {
            let mut rep = vec![0; game.n()];
            for (pos, &i) in deviators.iter().enumerate() {
                rep[i] = tassign[pos];
            }
            let cond = game.type_dist_given(&deviators, &rep);
            if cond.is_empty() {
                continue;
            }
            let matrix = payoff_matrix(game, rho, &[], &deviators, &cond);
            for &i in &deviators {
                let best = matrix
                    .iter()
                    .map(|col| col[i])
                    .fold(f64::NEG_INFINITY, f64::max);
                margin = margin.min(target[i] - best);
            }
        }
    }
    margin
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use crate::strategy::Strategy;

    #[test]
    fn counterexample_bottom_is_k_punishment() {
        // The §6.4 game: playing ⊥ (action 2) punishes coalitions of size ≤ k
        // against the target utility 1.5.
        let (game, _, k) = library::counterexample_game(4);
        let rho: StrategyProfile = (0..game.n()).map(|_| Strategy::pure(1, 3, 2)).collect();
        let target = vec![1.5; game.n()];
        assert!(is_m_punishment(&game, &rho, &target, k));
        // Margin: deviators get 1.1 (≥ k+1 players play ⊥), so 0.4.
        let m = punishment_margin(&game, &rho, &target, k);
        assert!((m - 0.4).abs() < 1e-9, "margin {m}");
    }

    #[test]
    fn punishment_fails_against_higher_target_set_too_low() {
        let (game, _, k) = library::counterexample_game(4);
        let rho: StrategyProfile = (0..game.n()).map(|_| Strategy::pure(1, 3, 2)).collect();
        // If the equilibrium only guaranteed 1.0, ⊥ (which yields 1.1) is no
        // punishment at all.
        let target = vec![1.0; game.n()];
        let fail = punishment_failure(&game, &rho, &target, k).unwrap();
        assert!(fail.achieved >= 1.1 - 1e-9);
    }

    #[test]
    fn zero_m_is_trivially_punishing() {
        let (game, _, _) = library::counterexample_game(4);
        let rho: StrategyProfile = (0..game.n()).map(|_| Strategy::pure(1, 3, 0)).collect();
        assert!(is_m_punishment(&game, &rho, &[0.0; 4], 0));
    }

    #[test]
    fn deviator_best_response_is_found() {
        // Punishment = all play 0; a deviator playing 1 gets 10 ⇒ fails.
        let game = BayesianGame::complete_info("g", vec![2, 2], |a| {
            let u = |ai: usize| if ai == 1 { 10.0 } else { 0.0 };
            vec![u(a[0]), u(a[1])]
        });
        let rho = vec![Strategy::pure(1, 2, 0), Strategy::pure(1, 2, 0)];
        let fail = punishment_failure(&game, &rho, &[5.0, 5.0], 1).unwrap();
        assert_eq!(fail.achieved, 10.0);
        assert_eq!(fail.target, 5.0);
    }
}
