//! Outcome distributions and the paper's distance on them (§2).
//!
//! An implementation (or ε-implementation) compares, for each type profile,
//! the distribution over action profiles induced in the cheap-talk game with
//! the one induced in the mediator game. The distance used by the paper is
//! total variation scaled by 2: `dist(π, π') = Σ_s |π(s) − π'(s)| ≤ ε`.

use crate::game::ActionIx;
use std::collections::BTreeMap;

/// A distribution over action profiles, stored sparsely.
///
/// # Example
///
/// ```
/// use mediator_games::OutcomeDist;
/// let mut d = OutcomeDist::new();
/// d.add(vec![0, 1], 0.5);
/// d.add(vec![1, 0], 0.5);
/// assert!((d.prob(&[0, 1]) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OutcomeDist {
    probs: BTreeMap<Vec<ActionIx>, f64>,
}

impl OutcomeDist {
    /// An empty (all-zero) distribution.
    pub fn new() -> Self {
        OutcomeDist::default()
    }

    /// Builds an empirical distribution from observed samples.
    pub fn from_samples<I: IntoIterator<Item = Vec<ActionIx>>>(samples: I) -> Self {
        let mut d = OutcomeDist::new();
        let mut count = 0usize;
        for s in samples {
            *d.probs.entry(s).or_insert(0.0) += 1.0;
            count += 1;
        }
        if count > 0 {
            for p in d.probs.values_mut() {
                *p /= count as f64;
            }
        }
        d
    }

    /// Adds probability mass to a profile.
    pub fn add(&mut self, profile: Vec<ActionIx>, p: f64) {
        *self.probs.entry(profile).or_insert(0.0) += p;
    }

    /// The probability of a profile.
    pub fn prob(&self, profile: &[ActionIx]) -> f64 {
        self.probs.get(profile).copied().unwrap_or(0.0)
    }

    /// Total mass (1.0 for a proper distribution).
    pub fn total(&self) -> f64 {
        self.probs.values().sum()
    }

    /// Iterates over `(profile, probability)` pairs with positive mass.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<ActionIx>, f64)> {
        self.probs.iter().map(|(k, &v)| (k, v))
    }

    /// The support size.
    pub fn support_len(&self) -> usize {
        self.probs.len()
    }

    /// The weighted mixture of several distributions. Weights are
    /// normalized by their sum, so passing per-group sample counts yields
    /// exactly the pooled empirical distribution of the union — the law
    /// `RunSet::pooled == merge(by_kind, seeds_per_kind)` the aggregation
    /// property suite pins.
    ///
    /// # Panics
    ///
    /// Panics if the total weight is not positive.
    pub fn merge<'a, I>(parts: I) -> OutcomeDist
    where
        I: IntoIterator<Item = (&'a OutcomeDist, f64)>,
    {
        let mut out = OutcomeDist::new();
        let mut total = 0.0;
        for (dist, w) in parts {
            total += w;
            for (profile, p) in dist.iter() {
                out.add(profile.clone(), p * w);
            }
        }
        assert!(total > 0.0, "merge needs positive total weight");
        for p in out.probs.values_mut() {
            *p /= total;
        }
        out
    }
}

impl FromIterator<(Vec<ActionIx>, f64)> for OutcomeDist {
    fn from_iter<I: IntoIterator<Item = (Vec<ActionIx>, f64)>>(iter: I) -> Self {
        let mut d = OutcomeDist::new();
        for (k, p) in iter {
            d.add(k, p);
        }
        d
    }
}

/// The paper's distance: `Σ_s |π(s) − π'(s)|` (twice the total variation).
pub fn l1_distance(a: &OutcomeDist, b: &OutcomeDist) -> f64 {
    let mut keys: Vec<&Vec<ActionIx>> = a.probs.keys().collect();
    for k in b.probs.keys() {
        if !a.probs.contains_key(k) {
            keys.push(k);
        }
    }
    keys.iter().map(|k| (a.prob(k) - b.prob(k)).abs()).sum()
}

/// The Hausdorff-style distance between two *sets* of distributions under
/// [`l1_distance`]: `max(sup_a inf_b d(a,b), sup_b inf_a d(a,b))`.
///
/// The paper's ε-implementation (§2) requires every scheduler-induced
/// distribution on one side to be ε-matched on the other side, in both
/// directions — exactly the two suprema here.
pub fn set_distance(xs: &[OutcomeDist], ys: &[OutcomeDist]) -> f64 {
    fn one_sided(xs: &[OutcomeDist], ys: &[OutcomeDist]) -> f64 {
        xs.iter()
            .map(|x| {
                ys.iter()
                    .map(|y| l1_distance(x, y))
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(0.0, f64::max)
    }
    if xs.is_empty() || ys.is_empty() {
        return if xs.is_empty() && ys.is_empty() {
            0.0
        } else {
            f64::INFINITY
        };
    }
    one_sided(xs, ys).max(one_sided(ys, xs))
}

/// The one-sided variant for *weak* implementation: every distribution in
/// `xs` must be ε-matched in `ys` (but not conversely).
pub fn weak_set_distance(xs: &[OutcomeDist], ys: &[OutcomeDist]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    if ys.is_empty() {
        return f64::INFINITY;
    }
    xs.iter()
        .map(|x| {
            ys.iter()
                .map(|y| l1_distance(x, y))
                .fold(f64::INFINITY, f64::min)
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_samples_normalizes() {
        let d = OutcomeDist::from_samples(vec![vec![0], vec![0], vec![1], vec![0]]);
        assert!((d.prob(&[0]) - 0.75).abs() < 1e-12);
        assert!((d.prob(&[1]) - 0.25).abs() < 1e-12);
        assert!((d.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn l1_identical_is_zero() {
        let d = OutcomeDist::from_samples(vec![vec![0, 1], vec![1, 0]]);
        assert_eq!(l1_distance(&d, &d), 0.0);
    }

    #[test]
    fn l1_disjoint_is_two() {
        let a = OutcomeDist::from_samples(vec![vec![0]]);
        let b = OutcomeDist::from_samples(vec![vec![1]]);
        assert!((l1_distance(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn l1_partial_overlap() {
        let mut a = OutcomeDist::new();
        a.add(vec![0], 0.5);
        a.add(vec![1], 0.5);
        let mut b = OutcomeDist::new();
        b.add(vec![0], 1.0);
        assert!((l1_distance(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn set_distance_symmetric_cases() {
        let a = OutcomeDist::from_samples(vec![vec![0]]);
        let b = OutcomeDist::from_samples(vec![vec![1]]);
        // Same sets: zero.
        assert_eq!(
            set_distance(&[a.clone(), b.clone()], &[b.clone(), a.clone()]),
            0.0
        );
        // One side missing b: distance 2 (b unmatched).
        assert!(
            (set_distance(&[a.clone(), b.clone()], std::slice::from_ref(&a)) - 2.0).abs() < 1e-12
        );
        // Weak distance is one-sided: {a} ⊆ {a,b} is fine.
        assert_eq!(
            weak_set_distance(std::slice::from_ref(&a), &[a.clone(), b.clone()]),
            0.0
        );
        assert!((weak_set_distance(&[a.clone(), b.clone()], &[a]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_set_conventions() {
        let a = OutcomeDist::from_samples(vec![vec![0]]);
        assert_eq!(set_distance(&[], &[]), 0.0);
        assert_eq!(set_distance(std::slice::from_ref(&a), &[]), f64::INFINITY);
        assert_eq!(weak_set_distance(&[], &[a]), 0.0);
    }

    #[test]
    fn merge_weights_by_sample_counts() {
        // 3 samples of [0] and 1 sample of [1], split across two groups.
        let a = OutcomeDist::from_samples(vec![vec![0], vec![0]]);
        let b = OutcomeDist::from_samples(vec![vec![0], vec![1]]);
        let m = OutcomeDist::merge([(&a, 2.0), (&b, 2.0)]);
        assert!((m.prob(&[0]) - 0.75).abs() < 1e-12);
        assert!((m.prob(&[1]) - 0.25).abs() < 1e-12);
        assert!((m.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn merge_rejects_zero_weight() {
        let a = OutcomeDist::from_samples(vec![vec![0]]);
        let _ = OutcomeDist::merge([(&a, 0.0)]);
    }

    #[test]
    fn collect_from_pairs() {
        let d: OutcomeDist = vec![(vec![0], 0.25), (vec![1], 0.75)].into_iter().collect();
        assert!((d.prob(&[1]) - 0.75).abs() < 1e-12);
        assert_eq!(d.support_len(), 2);
    }
}
