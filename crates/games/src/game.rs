//! The normal-form Bayesian game representation.

use std::fmt;
use std::sync::Arc;

/// Index of a type in a player's type space.
pub type TypeIx = usize;
/// Index of an action in a player's action set.
pub type ActionIx = usize;

/// Utility function: `(type_profile, action_profile) -> per-player utilities`.
type UtilityFn = dyn Fn(&[TypeIx], &[ActionIx]) -> Vec<f64> + Send + Sync;

/// A finite normal-form Bayesian game (the paper's underlying game `Γ`).
///
/// Players `0..n` have types from finite type spaces with a commonly-known
/// joint distribution; each simultaneously picks one action; utilities
/// depend on the full type and action profiles.
///
/// # Example
///
/// ```
/// use mediator_games::BayesianGame;
///
/// // Matching pennies: zero-sum, no types.
/// let g = BayesianGame::complete_info(
///     "matching-pennies",
///     vec![2, 2],
///     |a| {
///         let win = if a[0] == a[1] { 1.0 } else { -1.0 };
///         vec![win, -win]
///     },
/// );
/// assert_eq!(g.n(), 2);
/// assert_eq!(g.utilities(&[0, 0], &[1, 1]), vec![1.0, -1.0]);
/// ```
#[derive(Clone)]
pub struct BayesianGame {
    name: String,
    type_counts: Vec<usize>,
    action_counts: Vec<usize>,
    /// Joint distribution over type profiles; probabilities sum to 1.
    type_dist: Vec<(Vec<TypeIx>, f64)>,
    utility: Arc<UtilityFn>,
}

impl fmt::Debug for BayesianGame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BayesianGame")
            .field("name", &self.name)
            .field("type_counts", &self.type_counts)
            .field("action_counts", &self.action_counts)
            .field("type_profiles", &self.type_dist.len())
            .finish()
    }
}

impl BayesianGame {
    /// Creates a Bayesian game.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions are inconsistent, the distribution is empty,
    /// its probabilities do not sum to 1 (±1e-9), or a type index is out of
    /// range.
    pub fn new(
        name: impl Into<String>,
        type_counts: Vec<usize>,
        action_counts: Vec<usize>,
        type_dist: Vec<(Vec<TypeIx>, f64)>,
        utility: impl Fn(&[TypeIx], &[ActionIx]) -> Vec<f64> + Send + Sync + 'static,
    ) -> Self {
        assert_eq!(
            type_counts.len(),
            action_counts.len(),
            "player count mismatch"
        );
        assert!(!type_dist.is_empty(), "type distribution must be non-empty");
        let total: f64 = type_dist.iter().map(|(_, p)| p).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "type distribution sums to {total}, not 1"
        );
        for (tp, p) in &type_dist {
            assert_eq!(tp.len(), type_counts.len(), "type profile length mismatch");
            assert!(*p >= 0.0, "negative probability");
            for (i, &t) in tp.iter().enumerate() {
                assert!(
                    t < type_counts[i],
                    "type index {t} out of range for player {i}"
                );
            }
        }
        BayesianGame {
            name: name.into(),
            type_counts,
            action_counts,
            type_dist,
            utility: Arc::new(utility),
        }
    }

    /// Creates a complete-information game (every player has a single type).
    pub fn complete_info(
        name: impl Into<String>,
        action_counts: Vec<usize>,
        utility: impl Fn(&[ActionIx]) -> Vec<f64> + Send + Sync + 'static,
    ) -> Self {
        let n = action_counts.len();
        BayesianGame::new(
            name,
            vec![1; n],
            action_counts,
            vec![(vec![0; n], 1.0)],
            move |_t, a| utility(a),
        )
    }

    /// The game's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of players.
    pub fn n(&self) -> usize {
        self.type_counts.len()
    }

    /// Number of types of each player.
    pub fn type_counts(&self) -> &[usize] {
        &self.type_counts
    }

    /// Number of actions of each player.
    pub fn action_counts(&self) -> &[usize] {
        &self.action_counts
    }

    /// The joint type distribution (profiles with positive probability).
    pub fn type_dist(&self) -> &[(Vec<TypeIx>, f64)] {
        &self.type_dist
    }

    /// Per-player utilities for a pure profile.
    pub fn utilities(&self, types: &[TypeIx], actions: &[ActionIx]) -> Vec<f64> {
        debug_assert_eq!(types.len(), self.n());
        debug_assert_eq!(actions.len(), self.n());
        (self.utility)(types, actions)
    }

    /// The type distribution conditioned on players in `coalition` having the
    /// types given by `profile` at those indices (the paper's `T(x_K)`).
    ///
    /// Returns an empty vector if the conditioning event has probability 0.
    pub fn type_dist_given(
        &self,
        coalition: &[usize],
        profile: &[TypeIx],
    ) -> Vec<(Vec<TypeIx>, f64)> {
        let mut matching: Vec<(Vec<TypeIx>, f64)> = self
            .type_dist
            .iter()
            .filter(|(tp, _)| coalition.iter().all(|&i| tp[i] == profile[i]))
            .cloned()
            .collect();
        let total: f64 = matching.iter().map(|(_, p)| p).sum();
        if total <= 0.0 {
            return Vec::new();
        }
        for (_, p) in &mut matching {
            *p /= total;
        }
        matching
    }

    /// Iterates over all action profiles.
    pub fn action_profiles(&self) -> ProfileIter {
        ProfileIter::new(self.action_counts.clone())
    }

    /// Iterates over all action profiles of the players in `subset`
    /// (profiles are reported as vectors aligned with `subset`).
    pub fn action_profiles_of(&self, subset: &[usize]) -> ProfileIter {
        ProfileIter::new(subset.iter().map(|&i| self.action_counts[i]).collect())
    }

    /// Iterates over all type-profile assignments of the players in `subset`.
    pub fn type_profiles_of(&self, subset: &[usize]) -> ProfileIter {
        ProfileIter::new(subset.iter().map(|&i| self.type_counts[i]).collect())
    }
}

/// Odometer-style iterator over `Π counts[i]` index vectors.
#[derive(Debug, Clone)]
pub struct ProfileIter {
    counts: Vec<usize>,
    current: Option<Vec<usize>>,
}

impl ProfileIter {
    fn new(counts: Vec<usize>) -> Self {
        let current = if counts.contains(&0) {
            None
        } else {
            Some(vec![0; counts.len()])
        };
        ProfileIter { counts, current }
    }
}

impl Iterator for ProfileIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let out = self.current.clone()?;
        // Advance the odometer.
        let cur = self.current.as_mut().expect("checked above");
        let mut i = cur.len();
        loop {
            if i == 0 {
                self.current = None;
                break;
            }
            i -= 1;
            cur[i] += 1;
            if cur[i] < self.counts[i] {
                break;
            }
            cur[i] = 0;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coin_game() -> BayesianGame {
        // Two players; player 0 has two equally likely types; actions {0,1};
        // both get 1 if player 1 matches player 0's type, else 0.
        BayesianGame::new(
            "coin",
            vec![2, 1],
            vec![2, 2],
            vec![(vec![0, 0], 0.5), (vec![1, 0], 0.5)],
            |t, a| {
                let u = if a[1] == t[0] { 1.0 } else { 0.0 };
                vec![u, u]
            },
        )
    }

    #[test]
    fn dimensions_and_utilities() {
        let g = coin_game();
        assert_eq!(g.n(), 2);
        assert_eq!(g.type_counts(), &[2, 1]);
        assert_eq!(g.utilities(&[1, 0], &[0, 1]), vec![1.0, 1.0]);
        assert_eq!(g.utilities(&[1, 0], &[0, 0]), vec![0.0, 0.0]);
    }

    #[test]
    fn profile_iterator_enumerates_all() {
        let g = coin_game();
        let profiles: Vec<_> = g.action_profiles().collect();
        assert_eq!(
            profiles,
            vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]
        );
    }

    #[test]
    fn profile_iterator_empty_on_zero_count() {
        let mut it = ProfileIter::new(vec![2, 0]);
        assert!(it.next().is_none());
    }

    #[test]
    fn subset_profile_iterators() {
        let g = coin_game();
        let tp: Vec<_> = g.type_profiles_of(&[0]).collect();
        assert_eq!(tp, vec![vec![0], vec![1]]);
        let ap: Vec<_> = g.action_profiles_of(&[1]).collect();
        assert_eq!(ap, vec![vec![0], vec![1]]);
    }

    #[test]
    fn conditioning_on_coalition_types() {
        let g = coin_game();
        let cond = g.type_dist_given(&[0], &[1, 0]);
        assert_eq!(cond.len(), 1);
        assert_eq!(cond[0].0, vec![1, 0]);
        assert!((cond[0].1 - 1.0).abs() < 1e-12);
        // Conditioning on nothing returns the full distribution.
        let all = g.type_dist_given(&[], &[0, 0]);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn conditioning_on_impossible_event_is_empty() {
        let g = BayesianGame::new(
            "deterministic",
            vec![2, 1],
            vec![1, 1],
            vec![(vec![0, 0], 1.0)],
            |_, _| vec![0.0, 0.0],
        );
        assert!(g.type_dist_given(&[0], &[1, 0]).is_empty());
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn bad_distribution_rejected() {
        BayesianGame::new("bad", vec![1], vec![1], vec![(vec![0], 0.5)], |_, _| {
            vec![0.0]
        });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_type_index_rejected() {
        BayesianGame::new("bad", vec![1], vec![1], vec![(vec![3], 1.0)], |_, _| {
            vec![0.0]
        });
    }

    #[test]
    fn complete_info_constructor() {
        let g = BayesianGame::complete_info("pd", vec![2, 2], |a| vec![a[0] as f64, a[1] as f64]);
        assert_eq!(g.type_dist().len(), 1);
        assert_eq!(g.utilities(&[0, 0], &[1, 0]), vec![1.0, 0.0]);
    }
}
