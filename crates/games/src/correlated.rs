//! Correlated equilibria: the solution concept a mediator implements.
//!
//! A distribution `μ` over action profiles is a **correlated equilibrium**
//! if, for every player and every recommendation `a`, obeying is a best
//! response given the posterior over the others' recommendations. This is
//! exactly the incentive constraint a mediator-game equilibrium induces in
//! the underlying game (the mediator privately recommends actions), and the
//! standard example of why mediators add value at all: chicken's correlated
//! equilibrium is worth more than its symmetric Nash.
//!
//! Complete-information games only (the mediator games in the experiment
//! catalog condition on no private types; Bayesian mediators are exercised
//! through the cheap-talk machinery instead).

use crate::dist::OutcomeDist;
use crate::game::{ActionIx, BayesianGame};

/// A witness that the obedience constraint fails.
#[derive(Debug, Clone)]
pub struct ObedienceViolation {
    /// The player with a profitable disobedience.
    pub player: usize,
    /// The recommended action.
    pub recommended: ActionIx,
    /// The profitable deviation.
    pub better: ActionIx,
    /// Expected gain from disobeying (conditional on the recommendation).
    pub gain: f64,
}

/// Checks whether `mu` is an (ε-)correlated equilibrium of the
/// complete-information game `game`.
///
/// # Panics
///
/// Panics if the game has private types (use the cheap-talk machinery for
/// Bayesian mediators) or `mu` has support outside the action space.
pub fn correlated_violation(
    game: &BayesianGame,
    mu: &OutcomeDist,
    eps: f64,
) -> Option<ObedienceViolation> {
    assert!(
        game.type_counts().iter().all(|&c| c == 1),
        "correlated-equilibrium check requires complete information"
    );
    let n = game.n();
    let types = vec![0; n];
    for (profile, _) in mu.iter() {
        assert_eq!(profile.len(), n, "profile arity mismatch");
        for (i, &a) in profile.iter().enumerate() {
            assert!(
                a < game.action_counts()[i],
                "action out of range in support"
            );
        }
    }
    for i in 0..n {
        for rec in 0..game.action_counts()[i] {
            // Posterior mass over others' profiles given recommendation rec.
            let cond: Vec<(&Vec<ActionIx>, f64)> = mu.iter().filter(|(p, _)| p[i] == rec).collect();
            let mass: f64 = cond.iter().map(|(_, w)| w).sum();
            if mass <= 0.0 {
                continue; // recommendation never issued
            }
            let expected_obey: f64 = cond
                .iter()
                .map(|(p, w)| w * game.utilities(&types, p)[i])
                .sum::<f64>()
                / mass;
            for alt in 0..game.action_counts()[i] {
                if alt == rec {
                    continue;
                }
                let expected_alt: f64 = cond
                    .iter()
                    .map(|(p, w)| {
                        let mut q = (*p).clone();
                        q[i] = alt;
                        w * game.utilities(&types, &q)[i]
                    })
                    .sum::<f64>()
                    / mass;
                let gain = expected_alt - expected_obey;
                if gain > eps + 1e-9 {
                    return Some(ObedienceViolation {
                        player: i,
                        recommended: rec,
                        better: alt,
                        gain,
                    });
                }
            }
        }
    }
    None
}

/// Convenience wrapper: `true` iff no obedience constraint is violated by
/// more than `eps`.
pub fn is_correlated_equilibrium(game: &BayesianGame, mu: &OutcomeDist, eps: f64) -> bool {
    correlated_violation(game, mu, eps).is_none()
}

/// The per-player value of a correlated equilibrium (expected utilities
/// under obedience).
pub fn value(game: &BayesianGame, mu: &OutcomeDist) -> Vec<f64> {
    let types = vec![0; game.n()];
    let mut acc = vec![0.0; game.n()];
    for (p, w) in mu.iter() {
        let us = game.utilities(&types, p);
        for i in 0..game.n() {
            acc[i] += w * us[i];
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    #[test]
    fn chicken_mediated_distribution_is_correlated_equilibrium() {
        let (game, mu) = library::chicken_correlated();
        assert!(is_correlated_equilibrium(&game, &mu, 0.0));
        let v = value(&game, &mu);
        assert!((v[0] - 5.25).abs() < 1e-12);
        assert!((v[1] - 5.25).abs() < 1e-12);
    }

    #[test]
    fn mutual_dare_heavy_distribution_is_not() {
        let (game, _) = library::chicken_correlated();
        // Recommending (Dare, Dare) always: told Dare, deviating to Chicken
        // gains 2 − 0 = 2.
        let mut mu = OutcomeDist::new();
        mu.add(vec![0, 0], 1.0);
        let v = correlated_violation(&game, &mu, 0.0).expect("violated");
        assert_eq!(v.recommended, 0);
        assert_eq!(v.better, 1);
        assert!((v.gain - 2.0).abs() < 1e-9);
        // But it IS an ε-correlated equilibrium for ε ≥ 2.
        assert!(is_correlated_equilibrium(&game, &mu, 2.0));
    }

    #[test]
    fn pure_nash_as_point_mass_is_correlated_equilibrium() {
        let (game, _) = library::chicken_correlated();
        // (Dare, Chicken) is a pure Nash of chicken.
        let mut mu = OutcomeDist::new();
        mu.add(vec![0, 1], 1.0);
        assert!(is_correlated_equilibrium(&game, &mu, 0.0));
    }

    #[test]
    fn counterexample_mediated_outcome_is_correlated_equilibrium() {
        let (game, mu, _) = library::counterexample_game(4);
        // All-0 / all-1 each with probability 1/2: obedience is optimal
        // (disobeying alone yields 0 or keeps 1.1-threshold unreachable).
        assert!(is_correlated_equilibrium(&game, &mu, 0.0));
        let v = value(&game, &mu);
        assert!((v[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "complete information")]
    fn rejects_bayesian_games() {
        let g = crate::BayesianGame::new(
            "bayes",
            vec![2, 1],
            vec![1, 1],
            vec![(vec![0, 0], 0.5), (vec![1, 0], 0.5)],
            |_, _| vec![0.0, 0.0],
        );
        let mu = OutcomeDist::from_samples(vec![vec![0, 0]]);
        let _ = is_correlated_equilibrium(&g, &mu, 0.0);
    }
}
