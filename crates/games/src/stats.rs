//! Statistical accounting for empirical utilities: confidence intervals
//! instead of point estimates.
//!
//! The conformance harness turns batch outcomes into per-player expected
//! utilities. Those are sample means over a finite seed sweep, so every
//! comparison against an ε bound must carry its sampling error; this module
//! provides the three estimators it uses:
//!
//! * [`mean_ci`] — normal-approximation interval for a sample mean
//!   (the workhorse: utility samples are bounded, n is tens-to-thousands);
//! * [`wilson_interval`] — the Wilson score interval for Bernoulli
//!   proportions (outcome-profile probabilities from an
//!   [`OutcomeDist`](crate::dist::OutcomeDist) sample count);
//! * [`bootstrap_mean_ci`] — percentile bootstrap for small or skewed
//!   samples, deterministic via an inlined SplitMix64 (no RNG dependency).

/// A two-sided confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// The point estimate (sample mean / proportion).
    pub mean: f64,
    /// Lower confidence bound.
    pub lo: f64,
    /// Upper confidence bound.
    pub hi: f64,
    /// Samples the estimate is based on.
    pub samples: usize,
}

impl ConfidenceInterval {
    /// A degenerate (zero-width) interval: an exactly known value.
    pub fn point(value: f64, samples: usize) -> Self {
        ConfidenceInterval {
            mean: value,
            lo: value,
            hi: value,
            samples,
        }
    }

    /// The interval's full width `hi − lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        self.lo <= value && value <= self.hi
    }

    /// The interval of the difference `self − other` for **independent**
    /// estimates (variances add).
    pub fn minus(&self, other: &ConfidenceInterval) -> ConfidenceInterval {
        let mean = self.mean - other.mean;
        let half = ((self.hi - self.mean).powi(2) + (other.hi - other.mean).powi(2)).sqrt();
        ConfidenceInterval {
            mean,
            lo: mean - half,
            hi: mean + half,
            samples: self.samples.min(other.samples),
        }
    }
}

/// Normal-approximation confidence interval for the mean of `xs` at
/// critical value `z` (1.96 ≈ 95%). With fewer than two samples the
/// interval is the degenerate point (no variance estimate exists).
pub fn mean_ci(xs: &[f64], z: f64) -> ConfidenceInterval {
    let n = xs.len();
    if n == 0 {
        return ConfidenceInterval::point(0.0, 0);
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return ConfidenceInterval::point(mean, 1);
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
    let half = z * (var / n as f64).sqrt();
    ConfidenceInterval {
        mean,
        lo: mean - half,
        hi: mean + half,
        samples: n,
    }
}

/// The Wilson score interval for a Bernoulli proportion: `successes`
/// out of `trials` at critical value `z`. Well-behaved at the boundaries
/// (never escapes `[0, 1]`, sane at 0 and `trials`), which is why it is
/// used for outcome-profile probabilities rather than the Wald interval.
///
/// # Panics
///
/// Panics if `successes > trials` or `trials == 0`.
pub fn wilson_interval(successes: usize, trials: usize, z: f64) -> ConfidenceInterval {
    assert!(trials > 0, "wilson_interval needs at least one trial");
    assert!(successes <= trials, "more successes than trials");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ConfidenceInterval {
        mean: p,
        lo: (centre - half).max(0.0),
        hi: (centre + half).min(1.0),
        samples: trials,
    }
}

/// SplitMix64: the deterministic resampler behind the bootstrap (keeps the
/// crate free of an RNG dependency and bootstrap results reproducible).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Percentile-bootstrap confidence interval for the mean of `xs`:
/// `reps` resamples with replacement, interval at the `(alpha/2,
/// 1 − alpha/2)` percentiles (e.g. `alpha = 0.05` for 95%). Deterministic
/// in `seed`.
pub fn bootstrap_mean_ci(xs: &[f64], alpha: f64, reps: usize, seed: u64) -> ConfidenceInterval {
    let n = xs.len();
    if n == 0 {
        return ConfidenceInterval::point(0.0, 0);
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    if n == 1 || reps == 0 {
        return ConfidenceInterval::point(mean, n);
    }
    let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
    let mut means: Vec<f64> = (0..reps)
        .map(|_| {
            let mut acc = 0.0;
            for _ in 0..n {
                let i = (splitmix64(&mut state) % n as u64) as usize;
                acc += xs[i];
            }
            acc / n as f64
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("bootstrap means are finite"));
    let idx = |q: f64| -> f64 {
        let pos = q * (reps - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        means[lo] * (1.0 - frac) + means[hi] * frac
    };
    ConfidenceInterval {
        mean,
        lo: idx(alpha / 2.0),
        hi: idx(1.0 - alpha / 2.0),
        samples: n,
    }
}

/// Per-player expected utilities with confidence intervals over
/// `(types, actions)` samples — the interval-carrying companion of the
/// point-estimate accounting in `mediator-core`.
pub fn utilities_ci(
    game: &crate::game::BayesianGame,
    runs: &[(Vec<usize>, Vec<usize>)],
    z: f64,
) -> Vec<ConfidenceInterval> {
    let samples: Vec<Vec<f64>> = utility_samples(game, runs);
    samples.iter().map(|xs| mean_ci(xs, z)).collect()
}

/// The raw per-player utility sample vectors behind [`utilities_ci`]
/// (outer index: player; inner: one value per run). Exposed so paired
/// estimators (common-random-number gains) can difference them run-by-run.
pub fn utility_samples(
    game: &crate::game::BayesianGame,
    runs: &[(Vec<usize>, Vec<usize>)],
) -> Vec<Vec<f64>> {
    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(runs.len()); game.n()];
    for (types, actions) in runs {
        let us = game.utilities(types, actions);
        for (i, u) in us.into_iter().enumerate() {
            samples[i].push(u);
        }
    }
    samples
}

/// Paired-difference confidence interval: the mean of `a[i] − b[i]`.
/// With common random numbers (same seed grid on both sides) this cancels
/// shared run-to-run noise, which is what makes small deviation gains
/// statistically visible at modest seed counts.
///
/// # Panics
///
/// Panics if the two sample vectors have different lengths.
pub fn paired_gain_ci(a: &[f64], b: &[f64], z: f64) -> ConfidenceInterval {
    assert_eq!(a.len(), b.len(), "paired samples must align");
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    mean_ci(&diffs, z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_ci_shrinks_with_samples() {
        let xs: Vec<f64> = (0..100).map(|i| (i % 2) as f64).collect();
        let small = mean_ci(&xs[..10], 1.96);
        let large = mean_ci(&xs, 1.96);
        assert!((large.mean - 0.5).abs() < 1e-12);
        assert!(large.width() < small.width());
        assert!(large.contains(0.5));
    }

    #[test]
    fn mean_ci_degenerate_cases() {
        assert_eq!(mean_ci(&[], 1.96), ConfidenceInterval::point(0.0, 0));
        assert_eq!(mean_ci(&[3.0], 1.96), ConfidenceInterval::point(3.0, 1));
        let constant = mean_ci(&[2.0; 50], 1.96);
        assert_eq!(constant.width(), 0.0);
        assert_eq!(constant.mean, 2.0);
    }

    #[test]
    fn wilson_is_sane_at_boundaries() {
        let none = wilson_interval(0, 20, 1.96);
        assert_eq!(none.lo, 0.0);
        assert!(none.hi > 0.0 && none.hi < 0.25);
        let all = wilson_interval(20, 20, 1.96);
        assert_eq!(all.hi, 1.0);
        assert!(all.lo > 0.75);
        let half = wilson_interval(50, 100, 1.96);
        assert!(half.contains(0.5));
        assert!(half.width() < 0.25);
    }

    #[test]
    #[should_panic(expected = "more successes")]
    fn wilson_rejects_impossible_counts() {
        wilson_interval(5, 4, 1.96);
    }

    #[test]
    fn bootstrap_is_deterministic_and_covers_mean() {
        let xs: Vec<f64> = (0..40).map(|i| (i % 5) as f64).collect();
        let a = bootstrap_mean_ci(&xs, 0.05, 200, 7);
        let b = bootstrap_mean_ci(&xs, 0.05, 200, 7);
        assert_eq!(a, b, "same seed, same interval");
        assert!(a.contains(a.mean));
        assert!(a.lo < a.mean && a.mean < a.hi);
        let c = bootstrap_mean_ci(&xs, 0.05, 200, 8);
        assert!(
            (a.lo - c.lo).abs() < 0.5,
            "different seeds, similar interval"
        );
    }

    #[test]
    fn paired_gain_cancels_common_noise() {
        // a = noise + 0.1, b = noise: the paired CI is the exact point 0.1,
        // while independent differencing would inherit the noise width.
        let noise: Vec<f64> = (0..30).map(|i| (i * 37 % 11) as f64).collect();
        let a: Vec<f64> = noise.iter().map(|x| x + 0.1).collect();
        let paired = paired_gain_ci(&a, &noise, 1.96);
        assert!((paired.mean - 0.1).abs() < 1e-12);
        assert!(paired.width() < 1e-9);
        let unpaired = mean_ci(&a, 1.96).minus(&mean_ci(&noise, 1.96));
        assert!(unpaired.width() > 1.0);
    }

    #[test]
    fn utilities_ci_matches_hand_average() {
        let (game, _) = crate::library::prisoners_dilemma();
        let runs = vec![
            (vec![0, 0], vec![0, 0]), // (3,3)
            (vec![0, 0], vec![1, 1]), // (1,1)
        ];
        let cis = utilities_ci(&game, &runs, 1.96);
        assert_eq!(cis.len(), 2);
        for ci in &cis {
            assert!((ci.mean - 2.0).abs() < 1e-12);
            assert!(ci.contains(2.0));
            assert_eq!(ci.samples, 2);
        }
    }
}
