//! A small dense two-phase simplex solver.
//!
//! Solves `maximize c·x  subject to  A x ≤ b, x ≥ 0` for the tiny linear
//! programs arising in coalition-deviation checks (searching *mixed* joint
//! deviations exactly, which a pure-action enumeration cannot do: a
//! profitable deviation for a 2-coalition may require randomizing between
//! joint actions neither of which dominates alone).
//!
//! Bland's rule is used for pivot selection, so the solver never cycles.
//! Dimensions here are at most a few dozen, so no effort is spent on
//! sparsity or numerical refinements beyond a fixed tolerance.
#![allow(clippy::needless_range_loop)] // tableau code is index-driven throughout

/// Solver tolerance for feasibility/optimality decisions.
pub const EPS: f64 = 1e-9;

/// Result of [`maximize`].
#[derive(Debug, Clone, PartialEq)]
pub enum LpResult {
    /// Optimal solution found: objective value and primal solution.
    Optimal { value: f64, x: Vec<f64> },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded above.
    Unbounded,
}

/// Maximizes `c·x` subject to `a[r]·x ≤ b[r]` for every row and `x ≥ 0`.
///
/// # Panics
///
/// Panics if row lengths are inconsistent with `c`.
pub fn maximize(c: &[f64], a: &[Vec<f64>], b: &[f64]) -> LpResult {
    let n = c.len();
    let m = a.len();
    assert_eq!(b.len(), m, "b length mismatch");
    for row in a {
        assert_eq!(row.len(), n, "row length mismatch");
    }

    // Tableau layout: columns [x (n)] [slack (m)] [artificial (≤m)] [rhs].
    // Phase 1: minimize sum of artificials for rows with negative b.
    let mut need_artificial = vec![false; m];
    for (r, &bv) in b.iter().enumerate() {
        if bv < 0.0 {
            need_artificial[r] = true;
        }
    }
    let num_art: usize = need_artificial.iter().filter(|&&x| x).count();
    let cols = n + m + num_art; // + rhs handled separately
    let mut t = vec![vec![0.0; cols + 1]; m];
    let mut basis = vec![0usize; m];

    let mut art_ix = 0usize;
    for r in 0..m {
        if need_artificial[r] {
            // Multiply the row by -1 so rhs ≥ 0, slack gets -1, artificial +1.
            for j in 0..n {
                t[r][j] = -a[r][j];
            }
            t[r][n + r] = -1.0;
            t[r][n + m + art_ix] = 1.0;
            t[r][cols] = -b[r];
            basis[r] = n + m + art_ix;
            art_ix += 1;
        } else {
            for j in 0..n {
                t[r][j] = a[r][j];
            }
            t[r][n + r] = 1.0;
            t[r][cols] = b[r];
            basis[r] = n + r;
        }
    }

    if num_art > 0 {
        // Phase-1 objective: minimize Σ artificials == maximize -Σ artificials.
        let mut obj = vec![0.0; cols + 1];
        for j in n + m..cols {
            obj[j] = -1.0;
        }
        // Price out the basic artificials.
        for r in 0..m {
            if basis[r] >= n + m {
                for j in 0..=cols {
                    obj[j] += t[r][j];
                }
            }
        }
        if !run_simplex(&mut t, &mut obj, &mut basis, cols) {
            return LpResult::Unbounded; // cannot happen in phase 1
        }
        // The objective row stores the negated running value: after phase 1,
        // Σ artificials = obj[cols]. Nonzero means no feasible point.
        if obj[cols] > EPS {
            return LpResult::Infeasible;
        }
        // Drive any artificial variables out of the basis if possible.
        for r in 0..m {
            if basis[r] >= n + m {
                if let Some(j) = (0..n + m).find(|&j| t[r][j].abs() > EPS) {
                    pivot(&mut t, &mut vec![0.0; cols + 1], &mut basis, r, j, cols);
                } // else the row is redundant; leave the artificial at 0.
            }
        }
    }

    // Phase 2: original objective, artificial columns frozen at 0.
    let mut obj = vec![0.0; cols + 1];
    obj[..n].copy_from_slice(&c[..n]);
    // Price out basic variables.
    for r in 0..m {
        let bj = basis[r];
        if obj[bj].abs() > 0.0 {
            let coef = obj[bj];
            for j in 0..=cols {
                obj[j] -= coef * t[r][j];
            }
        }
    }
    // Forbid re-entering artificials by zeroing their reduced costs hard.
    let frozen = n + m;
    if !run_simplex_restricted(&mut t, &mut obj, &mut basis, cols, frozen) {
        return LpResult::Unbounded;
    }

    let mut x = vec![0.0; n];
    for r in 0..m {
        if basis[r] < n {
            x[basis[r]] = t[r][cols];
        }
    }
    let value = c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum();
    LpResult::Optimal { value, x }
}

/// Runs simplex iterations (Bland's rule). Returns `false` on unboundedness.
fn run_simplex(t: &mut [Vec<f64>], obj: &mut [f64], basis: &mut [usize], cols: usize) -> bool {
    run_simplex_restricted(t, obj, basis, cols, cols)
}

fn run_simplex_restricted(
    t: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    cols: usize,
    allowed: usize,
) -> bool {
    loop {
        // Entering variable: smallest index with positive reduced cost.
        let Some(e) = (0..allowed).find(|&j| obj[j] > EPS) else {
            return true; // optimal
        };
        // Leaving row: min ratio, ties by smallest basis index (Bland).
        let mut best: Option<(usize, f64)> = None;
        for (r, row) in t.iter().enumerate() {
            if row[e] > EPS {
                let ratio = row[cols] / row[e];
                match best {
                    None => best = Some((r, ratio)),
                    Some((br, bratio)) => {
                        if ratio < bratio - EPS || (ratio < bratio + EPS && basis[r] < basis[br]) {
                            best = Some((r, ratio));
                        }
                    }
                }
            }
        }
        let Some((r, _)) = best else {
            return false; // unbounded
        };
        pivot(t, obj, basis, r, e, cols);
    }
}

fn pivot(
    t: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    r: usize,
    e: usize,
    cols: usize,
) {
    let piv = t[r][e];
    for j in 0..=cols {
        t[r][j] /= piv;
    }
    for r2 in 0..t.len() {
        if r2 != r && t[r2][e].abs() > 0.0 {
            let f = t[r2][e];
            for j in 0..=cols {
                t[r2][j] -= f * t[r][j];
            }
        }
    }
    if obj[e].abs() > 0.0 {
        let f = obj[e];
        for j in 0..=cols {
            obj[j] -= f * t[r][j];
        }
    }
    basis[r] = e;
}

/// Solves `max_λ min_i (U λ)_i − base_i` over the probability simplex, where
/// `U` is `|rows| × |λ|`. Returns the optimal margin and the maximizing
/// distribution.
///
/// This is the coalition-deviation subproblem: `λ` ranges over distributions
/// on the coalition's joint actions, row `i` is a coalition member, and the
/// margin is the member's gain over the baseline. A strictly positive value
/// means a (possibly mixed) deviation makes **every** member strictly better
/// off.
pub fn max_min_margin(u: &[Vec<f64>], base: &[f64]) -> (f64, Vec<f64>) {
    let rows = u.len();
    assert_eq!(base.len(), rows);
    let nact = u[0].len();
    // Variables: λ_0..λ_{nact-1}, tp, tm  (margin = tp - tm).
    // max tp - tm
    // s.t. -Σ λ_a u[i][a] + tp - tm ≤ -base_i   ∀i
    //      Σ λ_a ≤ 1,  -Σ λ_a ≤ -1  (equality)
    let nv = nact + 2;
    let mut c = vec![0.0; nv];
    c[nact] = 1.0;
    c[nact + 1] = -1.0;
    let mut a = Vec::with_capacity(rows + 2);
    let mut b = Vec::with_capacity(rows + 2);
    for i in 0..rows {
        let mut row = vec![0.0; nv];
        for (j, coef) in row.iter_mut().enumerate().take(nact) {
            *coef = -u[i][j];
        }
        row[nact] = 1.0;
        row[nact + 1] = -1.0;
        a.push(row);
        b.push(-base[i]);
    }
    let mut sum_row = vec![1.0; nact];
    sum_row.extend_from_slice(&[0.0, 0.0]);
    a.push(sum_row.clone());
    b.push(1.0);
    let neg: Vec<f64> = sum_row.iter().map(|v| -v).collect();
    a.push(neg);
    b.push(-1.0);

    match maximize(&c, &a, &b) {
        LpResult::Optimal { value, x } => (value, x[..nact].to_vec()),
        // The feasible set (simplex × margins) is never empty and the margin
        // is bounded by finite utilities.
        other => unreachable!("max_min_margin LP must be solvable: {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} vs {b}");
    }

    #[test]
    fn simple_bounded_lp() {
        // max x + y s.t. x ≤ 2, y ≤ 3, x + y ≤ 4
        let r = maximize(
            &[1.0, 1.0],
            &[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]],
            &[2.0, 3.0, 4.0],
        );
        match r {
            LpResult::Optimal { value, .. } => assert_close(value, 4.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unbounded_detected() {
        let r = maximize(&[1.0], &[vec![-1.0]], &[1.0]);
        assert_eq!(r, LpResult::Unbounded);
    }

    #[test]
    fn infeasible_detected() {
        // x ≤ -1 with x ≥ 0 is infeasible.
        let r = maximize(&[1.0], &[vec![1.0]], &[-1.0]);
        assert_eq!(r, LpResult::Infeasible);
    }

    #[test]
    fn negative_rhs_feasible() {
        // max -x s.t. -x ≤ -2  (i.e. x ≥ 2) → x = 2, value -2.
        let r = maximize(&[-1.0], &[vec![-1.0]], &[-2.0]);
        match r {
            LpResult::Optimal { value, x } => {
                assert_close(value, -2.0);
                assert_close(x[0], 2.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn equality_via_two_inequalities() {
        // max x s.t. x + y = 1 (two ineqs), y ≥ 0 → x = 1.
        let r = maximize(
            &[1.0, 0.0],
            &[vec![1.0, 1.0], vec![-1.0, -1.0]],
            &[1.0, -1.0],
        );
        match r {
            LpResult::Optimal { value, .. } => assert_close(value, 1.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn max_min_margin_pure_winner() {
        // One member, two joint actions with gains 1 and 3 over base 0.
        let (v, lambda) = max_min_margin(&[vec![1.0, 3.0]], &[0.0]);
        assert_close(v, 3.0);
        assert_close(lambda[1], 1.0);
    }

    #[test]
    fn max_min_margin_requires_mixing() {
        // Two members; action 0 favours member 0, action 1 favours member 1.
        // base = (0.5, 0.5). Neither pure action beats the base for both,
        // but the 50/50 mix yields (1,1) > (0.5,0.5).
        let u = vec![vec![2.0, 0.0], vec![0.0, 2.0]];
        let (v, lambda) = max_min_margin(&u, &[0.5, 0.5]);
        assert_close(v, 0.5);
        assert_close(lambda[0], 0.5);
        assert_close(lambda[1], 0.5);
    }

    #[test]
    fn max_min_margin_negative_when_no_gain() {
        let u = vec![vec![0.0, 1.0]];
        let (v, _) = max_min_margin(&u, &[2.0]);
        assert_close(v, -1.0);
    }

    #[test]
    fn max_min_margin_single_action() {
        let (v, lambda) = max_min_margin(&[vec![5.0]], &[1.0]);
        assert_close(v, 4.0);
        assert_close(lambda[0], 1.0);
    }
}
