//! Exact checkers for the paper's solution concepts (Definitions 3.1–3.6).
//!
//! All checks are exact up to floating tolerance for the *underlying*
//! (one-shot) game: coalition deviations are searched over **mixed,
//! correlated, type-sharing** joint strategies using the LP in [`crate::lp`]
//! (pure-deviation enumeration alone is unsound for coalitions of size ≥ 2 —
//! see `lp::max_min_margin`). Deviations of the adversarial set `T` in the
//! (k,t)-robustness check are enumerated over pure type-dependent joint
//! strategies, which is exhaustive for the *minimizing/enabling* role `T`
//! plays in finite games of the size used here.
//!
//! Checks of extended (mediator / cheap-talk) games — where the strategy
//! space is infinite — live in `mediator-core::deviations` and are
//! necessarily battery-based; this module is the ground truth for one-shot
//! games.

use crate::game::{ActionIx, BayesianGame, TypeIx};
use crate::lp;
use crate::strategy::{
    joint_action_index, joint_type_index, validate_profile, CoalitionDeviation, StrategyProfile,
};

/// Numerical tolerance for equilibrium decisions.
pub const TOL: f64 = 1e-9;

/// A witness that a solution concept fails.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The deviating (rational) coalition `K`, if any.
    pub coalition: Vec<usize>,
    /// The adversarial set `T`, if any.
    pub adversaries: Vec<usize>,
    /// The margin by which the concept is violated.
    pub margin: f64,
    /// Human-readable description.
    pub description: String,
}

/// Enumerates all non-empty subsets of `0..n` with at most `max` elements.
pub fn subsets_up_to(n: usize, max: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    fn rec(start: usize, n: usize, max: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if !cur.is_empty() {
            out.push(cur.clone());
        }
        if cur.len() == max {
            return;
        }
        for i in start..n {
            cur.push(i);
            rec(i + 1, n, max, cur, out);
            cur.pop();
        }
    }
    rec(0, n, max, &mut cur, &mut out);
    out
}

/// Expected per-player utilities under `profile` with the deviations in
/// `devs` overriding the members' strategies, expectation over `cond`
/// (a normalized type distribution, e.g. [`BayesianGame::type_dist_given`]).
///
/// # Panics
///
/// Panics if deviations overlap each other.
pub fn expected_utilities_with(
    game: &BayesianGame,
    profile: &StrategyProfile,
    devs: &[&CoalitionDeviation],
    cond: &[(Vec<TypeIx>, f64)],
) -> Vec<f64> {
    let m = payoff_matrix(game, profile, devs, &[], cond);
    m.into_iter()
        .next()
        .expect("matrix has one row for empty searcher set")
}

/// Expected per-player utilities under `profile` over the full prior.
pub fn expected_utilities(game: &BayesianGame, profile: &StrategyProfile) -> Vec<f64> {
    validate_profile(game, profile);
    expected_utilities_with(game, profile, &[], game.type_dist())
}

/// The payoff matrix for a *searching* coalition: entry `[ja][i]` is player
/// `i`'s expected utility when the searchers play the joint pure action with
/// lexicographic index `ja`, everyone else plays `profile` overridden by
/// `devs`, and types follow `cond`.
///
/// With an empty searcher set the matrix has a single row: the expected
/// utilities themselves.
///
/// # Panics
///
/// Panics if `searchers` intersects any deviation, or deviations overlap.
pub fn payoff_matrix(
    game: &BayesianGame,
    profile: &StrategyProfile,
    devs: &[&CoalitionDeviation],
    searchers: &[usize],
    cond: &[(Vec<TypeIx>, f64)],
) -> Vec<Vec<f64>> {
    let n = game.n();
    // Ownership map: who controls each player's action.
    #[derive(Clone, Copy, PartialEq)]
    enum Owner {
        Profile,
        Dev(usize),
        Searcher,
    }
    let mut owner = vec![Owner::Profile; n];
    for (d, dev) in devs.iter().enumerate() {
        for &i in &dev.members {
            assert!(
                matches!(owner[i], Owner::Profile),
                "overlapping deviations at player {i}"
            );
            owner[i] = Owner::Dev(d);
        }
    }
    for &i in searchers {
        assert!(
            matches!(owner[i], Owner::Profile),
            "searcher {i} overlaps a deviation"
        );
        owner[i] = Owner::Searcher;
    }

    let num_ja: usize = searchers
        .iter()
        .map(|&i| game.action_counts()[i])
        .product::<usize>()
        .max(1);
    let mut out = vec![vec![0.0; n]; num_ja];

    for (types, tprob) in cond {
        if *tprob <= 0.0 {
            continue;
        }
        // Joint type indices for each deviation.
        let dev_jts: Vec<usize> = devs
            .iter()
            .map(|dev| {
                let tprofile: Vec<TypeIx> = dev.members.iter().map(|&i| types[i]).collect();
                joint_type_index(game, &dev.members, &tprofile)
            })
            .collect();

        for actions in game.action_profiles() {
            // Probability of the non-searcher part of this action profile.
            let mut prob = *tprob;
            for i in 0..n {
                match owner[i] {
                    Owner::Profile => prob *= profile[i].prob(types[i], actions[i]),
                    Owner::Dev(_) | Owner::Searcher => {}
                }
                if prob == 0.0 {
                    break;
                }
            }
            if prob == 0.0 {
                continue;
            }
            for (d, dev) in devs.iter().enumerate() {
                let ja: Vec<ActionIx> = dev.members.iter().map(|&i| actions[i]).collect();
                prob *= dev.prob(dev_jts[d], joint_action_index(game, &dev.members, &ja));
                if prob == 0.0 {
                    break;
                }
            }
            if prob == 0.0 {
                continue;
            }
            let sja: Vec<ActionIx> = searchers.iter().map(|&i| actions[i]).collect();
            let col = if searchers.is_empty() {
                0
            } else {
                joint_action_index_for(game, searchers, &sja)
            };
            let us = game.utilities(types, &actions);
            for i in 0..n {
                out[col][i] += prob * us[i];
            }
        }
    }
    out
}

fn joint_action_index_for(game: &BayesianGame, members: &[usize], joint: &[ActionIx]) -> usize {
    joint_action_index(game, members, joint)
}

/// Checks Definition 3.1 / 3.2: `profile` is a (ε-)k-resilient equilibrium.
///
/// With `eps == 0.0` this is exact k-resilience ("no coalition of ≤ k can
/// make **all** its members strictly better off, sharing type information");
/// with `eps > 0.0` it is ε-k-resilience ("... better off by ≥ ε").
pub fn is_k_resilient(game: &BayesianGame, profile: &StrategyProfile, k: usize, eps: f64) -> bool {
    k_resilience_violation(game, profile, k, eps).is_none()
}

/// Returns a witness if (ε-)k-resilience fails; see [`is_k_resilient`].
pub fn k_resilience_violation(
    game: &BayesianGame,
    profile: &StrategyProfile,
    k: usize,
    eps: f64,
) -> Option<Violation> {
    validate_profile(game, profile);
    resilience_violation_given(game, profile, None, k, eps, false)
}

/// Checks strong (ε-)k-resilience: no coalition deviation makes **any**
/// member better off (Definition 3.1, "strongly").
pub fn is_strongly_k_resilient(
    game: &BayesianGame,
    profile: &StrategyProfile,
    k: usize,
    eps: f64,
) -> bool {
    validate_profile(game, profile);
    resilience_violation_given(game, profile, None, k, eps, true).is_none()
}

/// Inner resilience check with an optional fixed adversary deviation
/// (used by the robustness check, where `T` plays `tau_t`).
fn resilience_violation_given(
    game: &BayesianGame,
    profile: &StrategyProfile,
    tau_t: Option<&CoalitionDeviation>,
    k: usize,
    eps: f64,
    strong: bool,
) -> Option<Violation> {
    let n = game.n();
    let blocked: Vec<usize> = tau_t.map(|d| d.members.clone()).unwrap_or_default();
    let candidates: Vec<usize> = (0..n).filter(|i| !blocked.contains(i)).collect();
    let devs_fixed: Vec<&CoalitionDeviation> = tau_t.into_iter().collect();

    for coalition_local in subsets_up_to(candidates.len(), k) {
        let coalition: Vec<usize> = coalition_local.iter().map(|&j| candidates[j]).collect();
        // Condition on every joint type of K∪T with positive probability.
        let mut cond_set = coalition.clone();
        cond_set.extend_from_slice(&blocked);
        for tassign in game.type_profiles_of(&cond_set) {
            // Build a representative full type profile for conditioning.
            let mut rep = vec![0; n];
            for (pos, &i) in cond_set.iter().enumerate() {
                rep[i] = tassign[pos];
            }
            let cond = game.type_dist_given(&cond_set, &rep);
            if cond.is_empty() {
                continue;
            }
            // Baseline: everyone plays profile (T still plays tau_t).
            let base = expected_utilities_with(game, profile, &devs_fixed, &cond);
            // Matrix over the coalition's joint pure actions.
            let matrix = payoff_matrix(game, profile, &devs_fixed, &coalition, &cond);
            let rows: Vec<Vec<f64>> = coalition
                .iter()
                .map(|&i| matrix.iter().map(|col| col[i]).collect())
                .collect();
            let base_k: Vec<f64> = coalition.iter().map(|&i| base[i]).collect();
            let margin = if strong {
                // Any single member gaining violates strong resilience; the
                // max of a linear function over the simplex is at a vertex.
                rows.iter()
                    .zip(&base_k)
                    .map(|(r, b)| r.iter().cloned().fold(f64::NEG_INFINITY, f64::max) - b)
                    .fold(f64::NEG_INFINITY, f64::max)
            } else {
                let (m, _) = lp::max_min_margin(&rows, &base_k);
                m
            };
            let threshold = if eps > 0.0 { eps - TOL } else { TOL };
            if margin >= threshold {
                return Some(Violation {
                    coalition: coalition.clone(),
                    adversaries: blocked.clone(),
                    margin,
                    description: format!(
                        "coalition {coalition:?} (types {tassign:?}) gains {margin:.6}"
                    ),
                });
            }
        }
    }
    None
}

/// Checks Definition 3.3 / 3.5: `profile` is (ε-)t-immune — no set of ≤ t
/// players can lower any *other* player's utility (by ≥ ε).
pub fn is_t_immune(game: &BayesianGame, profile: &StrategyProfile, t: usize, eps: f64) -> bool {
    t_immunity_violation(game, profile, t, eps).is_none()
}

/// Returns a witness if (ε-)t-immunity fails; see [`is_t_immune`].
pub fn t_immunity_violation(
    game: &BayesianGame,
    profile: &StrategyProfile,
    t: usize,
    eps: f64,
) -> Option<Violation> {
    validate_profile(game, profile);
    if t == 0 {
        return None;
    }
    let n = game.n();
    for adv in subsets_up_to(n, t) {
        for tassign in game.type_profiles_of(&adv) {
            let mut rep = vec![0; n];
            for (pos, &i) in adv.iter().enumerate() {
                rep[i] = tassign[pos];
            }
            let cond = game.type_dist_given(&adv, &rep);
            if cond.is_empty() {
                continue;
            }
            let base = expected_utilities_with(game, profile, &[], &cond);
            // T minimizes some victim's utility: linear ⇒ pure suffices.
            let matrix = payoff_matrix(game, profile, &[], &adv, &cond);
            for i in 0..n {
                if adv.contains(&i) {
                    continue;
                }
                let worst = matrix
                    .iter()
                    .map(|col| col[i])
                    .fold(f64::INFINITY, f64::min);
                let harm = base[i] - worst;
                let threshold = if eps > 0.0 { eps - TOL } else { TOL };
                if harm >= threshold {
                    return Some(Violation {
                        coalition: vec![i],
                        adversaries: adv.clone(),
                        margin: harm,
                        description: format!(
                            "adversaries {adv:?} (types {tassign:?}) harm player {i} by {harm:.6}"
                        ),
                    });
                }
            }
        }
    }
    None
}

/// Checks Definition 3.4 / 3.6: `profile` is a (ε-)(k,t)-robust equilibrium.
///
/// `profile` must be (ε-)t-immune, and for every adversary set `T` (|T| ≤ t)
/// and every pure type-dependent joint strategy `τ_T`, the profile with `T`
/// fixed to `τ_T` must be (ε-)k-resilient for coalitions disjoint from `T`.
///
/// The `τ_T` enumeration is over pure deviations; the searched coalition
/// response is mixed (LP). Set `strong` for the "strongly" variants.
///
/// # Panics
///
/// Panics if the `τ_T` enumeration would exceed `10^7` candidates; the
/// checker is meant for the small games in [`crate::library`].
pub fn is_kt_robust(
    game: &BayesianGame,
    profile: &StrategyProfile,
    k: usize,
    t: usize,
    eps: f64,
    strong: bool,
) -> bool {
    kt_robustness_violation(game, profile, k, t, eps, strong).is_none()
}

/// Returns a witness if (ε-)(k,t)-robustness fails; see [`is_kt_robust`].
pub fn kt_robustness_violation(
    game: &BayesianGame,
    profile: &StrategyProfile,
    k: usize,
    t: usize,
    eps: f64,
    strong: bool,
) -> Option<Violation> {
    validate_profile(game, profile);
    if let Some(v) = t_immunity_violation(game, profile, t, eps) {
        return Some(v);
    }
    if k == 0 {
        return None;
    }
    // T = ∅ case: plain resilience.
    if let Some(v) = resilience_violation_given(game, profile, None, k, eps, strong) {
        return Some(v);
    }
    if t == 0 {
        return None;
    }
    let n = game.n();
    for adv in subsets_up_to(n, t) {
        for tau in enumerate_pure_deviations(game, &adv) {
            if let Some(v) = resilience_violation_given(game, profile, Some(&tau), k, eps, strong) {
                return Some(v);
            }
        }
    }
    None
}

/// Enumerates all pure type-dependent joint deviations of `members`.
fn enumerate_pure_deviations(game: &BayesianGame, members: &[usize]) -> Vec<CoalitionDeviation> {
    let num_jt: usize = members
        .iter()
        .map(|&i| game.type_counts()[i])
        .product::<usize>()
        .max(1);
    let num_ja: usize = members
        .iter()
        .map(|&i| game.action_counts()[i])
        .product::<usize>()
        .max(1);
    let total = (num_ja as f64).powi(num_jt as i32);
    assert!(
        total <= 1e7,
        "pure deviation space too large ({total:.0}); use the battery-based checker instead"
    );
    let mut out = Vec::with_capacity(total as usize);
    let mut choice = vec![0usize; num_jt];
    loop {
        let table: Vec<Vec<f64>> = choice
            .iter()
            .map(|&ja| {
                let mut row = vec![0.0; num_ja];
                row[ja] = 1.0;
                row
            })
            .collect();
        out.push(CoalitionDeviation {
            members: members.to_vec(),
            table,
        });
        // Odometer.
        let mut i = num_jt;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            choice[i] += 1;
            if choice[i] < num_ja {
                break;
            }
            choice[i] = 0;
        }
    }
}

/// Enumerates all pure-strategy Nash equilibria of a complete-information
/// game (each returned profile is a vector of action indices).
///
/// A small diagnostic used to contrast Nash outcomes with mediated
/// (correlated) outcomes — e.g. chicken's pure equilibria are the
/// asymmetric (7,2)/(2,7) cells while the mediator reaches 5.25 each.
///
/// # Panics
///
/// Panics if the game has private types.
pub fn pure_nash_equilibria(game: &BayesianGame) -> Vec<Vec<ActionIx>> {
    assert!(
        game.type_counts().iter().all(|&c| c == 1),
        "pure-Nash enumeration requires complete information"
    );
    let types = vec![0; game.n()];
    let mut out = Vec::new();
    'profiles: for profile in game.action_profiles() {
        let us = game.utilities(&types, &profile);
        for i in 0..game.n() {
            for alt in 0..game.action_counts()[i] {
                if alt == profile[i] {
                    continue;
                }
                let mut q = profile.clone();
                q[i] = alt;
                if game.utilities(&types, &q)[i] > us[i] + TOL {
                    continue 'profiles;
                }
            }
        }
        out.push(profile);
    }
    out
}

/// The maximum joint gain any coalition of size ≤ k can extract (over all
/// joint types): a diagnostic used by experiment tables.
pub fn best_coalition_gain(game: &BayesianGame, profile: &StrategyProfile, k: usize) -> f64 {
    validate_profile(game, profile);
    let n = game.n();
    let mut best = f64::NEG_INFINITY;
    for coalition in subsets_up_to(n, k) {
        for tassign in game.type_profiles_of(&coalition) {
            let mut rep = vec![0; n];
            for (pos, &i) in coalition.iter().enumerate() {
                rep[i] = tassign[pos];
            }
            let cond = game.type_dist_given(&coalition, &rep);
            if cond.is_empty() {
                continue;
            }
            let base = expected_utilities_with(game, profile, &[], &cond);
            let matrix = payoff_matrix(game, profile, &[], &coalition, &cond);
            let rows: Vec<Vec<f64>> = coalition
                .iter()
                .map(|&i| matrix.iter().map(|col| col[i]).collect())
                .collect();
            let base_k: Vec<f64> = coalition.iter().map(|&i| base[i]).collect();
            let (m, _) = lp::max_min_margin(&rows, &base_k);
            best = best.max(m);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::BayesianGame;
    use crate::strategy::Strategy;

    /// Prisoner's dilemma. Action 0 = cooperate, 1 = defect.
    fn pd() -> (BayesianGame, StrategyProfile) {
        let g = BayesianGame::complete_info("pd", vec![2, 2], |a| match (a[0], a[1]) {
            (0, 0) => vec![3.0, 3.0],
            (0, 1) => vec![0.0, 4.0],
            (1, 0) => vec![4.0, 0.0],
            (1, 1) => vec![1.0, 1.0],
            _ => unreachable!(),
        });
        let defect = vec![Strategy::pure(1, 2, 1), Strategy::pure(1, 2, 1)];
        (g, defect)
    }

    #[test]
    fn subsets_enumeration() {
        let s = subsets_up_to(3, 2);
        assert_eq!(s.len(), 6); // {0},{0,1},{0,2},{1},{1,2},{2}
        assert!(s.contains(&vec![0, 2]));
        assert!(!s.contains(&vec![0, 1, 2]));
    }

    #[test]
    fn pd_defect_is_nash_but_not_2_resilient() {
        let (g, defect) = pd();
        assert!(is_k_resilient(&g, &defect, 1, 0.0));
        // Jointly cooperating gives both 3 > 1.
        assert!(!is_k_resilient(&g, &defect, 2, 0.0));
        let v = k_resilience_violation(&g, &defect, 2, 0.0).unwrap();
        assert_eq!(v.coalition, vec![0, 1]);
        assert!((v.margin - 2.0).abs() < 1e-6);
    }

    #[test]
    fn pd_cooperate_not_even_nash() {
        let (g, _) = pd();
        let coop = vec![Strategy::pure(1, 2, 0), Strategy::pure(1, 2, 0)];
        assert!(!is_k_resilient(&g, &coop, 1, 0.0));
    }

    #[test]
    fn eps_resilience_threshold() {
        let (g, defect) = pd();
        // The 2-coalition gain is exactly 2.0: so defect is ε-2-resilient
        // for ε > 2 but not for ε ≤ 2.
        assert!(is_k_resilient(&g, &defect, 2, 2.5));
        assert!(!is_k_resilient(&g, &defect, 2, 1.5));
    }

    #[test]
    fn strong_resilience_is_stricter() {
        // A game where a 2-coalition deviation helps one member and hurts the
        // other: not a violation of plain resilience, but of strong.
        let g = BayesianGame::complete_info("asym", vec![2, 2], |a| {
            match (a[0], a[1]) {
                (0, 0) => vec![1.0, 1.0],
                (1, 1) => vec![2.0, 0.0], // helps 0, hurts 1
                _ => vec![0.0, 0.0],
            }
        });
        let both0 = vec![Strategy::pure(1, 2, 0), Strategy::pure(1, 2, 0)];
        // Unilateral deviation to 1 yields 0 ⇒ Nash. Joint deviation to (1,1)
        // gives (2,0): member 1 does not gain ⇒ still 2-resilient.
        assert!(is_k_resilient(&g, &both0, 2, 0.0));
        // But member 0 gains ⇒ not strongly 2-resilient.
        assert!(!is_strongly_k_resilient(&g, &both0, 2, 0.0));
    }

    #[test]
    fn mixed_deviation_found_where_pure_fails() {
        // Coalition {0,1} vs. bystander 2. Actions {0,1} each. The coalition's
        // pure joint deviations each help only one member; the 50/50 mix
        // helps both (the lp::max_min_margin test case embedded in a game).
        let g = BayesianGame::complete_info("mix", vec![2, 2, 1], |a| match (a[0], a[1]) {
            (0, 0) => vec![0.5, 0.5, 0.0],
            (0, 1) => vec![2.0, 0.0, 0.0],
            (1, 0) => vec![0.0, 2.0, 0.0],
            (1, 1) => vec![0.5, 0.5, 0.0],
            _ => unreachable!(),
        });
        let base = vec![
            Strategy::pure(1, 2, 0),
            Strategy::pure(1, 2, 0),
            Strategy::pure(1, 1, 0),
        ];
        // (0,0) gives (0.5, 0.5). Mixing (0,1)/(1,0) 50/50 gives (1,1).
        let v = k_resilience_violation(&g, &base, 2, 0.0).expect("mixed deviation exists");
        assert!((v.margin - 0.5).abs() < 1e-6);
    }

    #[test]
    fn immunity_detects_harm() {
        // Player 1 can burn player 0's payoff.
        let g = BayesianGame::complete_info("burn", vec![1, 2], |a| {
            if a[1] == 0 {
                vec![1.0, 1.0]
            } else {
                vec![0.0, 1.0]
            }
        });
        let prof = vec![Strategy::pure(1, 1, 0), Strategy::pure(1, 2, 0)];
        assert!(!is_t_immune(&g, &prof, 1, 0.0));
        let v = t_immunity_violation(&g, &prof, 1, 0.0).unwrap();
        assert_eq!(v.adversaries, vec![1]);
        assert_eq!(v.coalition, vec![0]); // the victim
        assert!((v.margin - 1.0).abs() < 1e-9);
        // ε-immunity with ε > harm passes.
        assert!(is_t_immune(&g, &prof, 1, 1.5));
    }

    #[test]
    fn immunity_holds_in_dummy_game() {
        // Utilities independent of actions: nothing can harm anyone.
        let g = BayesianGame::complete_info("const", vec![2, 2, 2], |_| vec![1.0, 1.0, 1.0]);
        let prof = vec![Strategy::pure(1, 2, 0); 3];
        assert!(is_t_immune(&g, &prof, 2, 0.0));
        assert!(is_kt_robust(&g, &prof, 2, 1, 0.0, true));
    }

    #[test]
    fn robustness_catches_adversary_enabled_deviation() {
        // 3 players. If player 2 (adversary) plays 1, then player 0 can gain
        // by deviating; otherwise not. So the profile is 1-resilient and
        // 1-immune but not (1,1)-robust.
        let g = BayesianGame::complete_info("enable", vec![2, 1, 2], |a| {
            let u0 = match (a[0], a[2]) {
                (0, _) => 1.0,
                (1, 1) => 2.0, // deviation pays only if adversary enables it
                (1, 0) => 0.0,
                _ => unreachable!(),
            };
            vec![u0, 0.0, 0.0]
        });
        let prof = vec![
            Strategy::pure(1, 2, 0),
            Strategy::pure(1, 1, 0),
            Strategy::pure(1, 2, 0),
        ];
        assert!(is_k_resilient(&g, &prof, 1, 0.0));
        assert!(is_t_immune(&g, &prof, 1, 0.0));
        let v = kt_robustness_violation(&g, &prof, 1, 1, 0.0, false).unwrap();
        assert_eq!(v.adversaries, vec![2]);
        assert_eq!(v.coalition, vec![0]);
    }

    #[test]
    fn bayesian_conditioning_in_resilience() {
        // Player 0 knows a coin (type); deviating pays only on type 1. A
        // type-agnostic check would average the gain away; the per-type check
        // must catch it.
        let g = BayesianGame::new(
            "coin-dev",
            vec![2, 1],
            vec![2, 1],
            vec![(vec![0, 0], 0.5), (vec![1, 0], 0.5)],
            |t, a| {
                let u0 = if t[0] == 1 && a[0] == 1 {
                    5.0
                } else if a[0] == 0 {
                    1.0
                } else {
                    0.0
                };
                vec![u0, 0.0]
            },
        );
        let prof = vec![Strategy::pure(2, 2, 0), Strategy::pure(1, 1, 0)];
        let v = k_resilience_violation(&g, &prof, 1, 0.0).unwrap();
        assert!((v.margin - 4.0).abs() < 1e-6, "gain on type 1 is 5-1=4");
    }

    #[test]
    fn expected_utilities_basic() {
        let (g, defect) = pd();
        assert_eq!(expected_utilities(&g, &defect), vec![1.0, 1.0]);
    }

    #[test]
    fn pure_nash_of_prisoners_dilemma_is_mutual_defection() {
        let (g, _) = pd();
        assert_eq!(pure_nash_equilibria(&g), vec![vec![1, 1]]);
    }

    #[test]
    fn pure_nash_of_chicken_are_the_asymmetric_cells() {
        let g = BayesianGame::complete_info("chicken", vec![2, 2], |a| match (a[0], a[1]) {
            (0, 0) => vec![0.0, 0.0],
            (0, 1) => vec![7.0, 2.0],
            (1, 0) => vec![2.0, 7.0],
            (1, 1) => vec![6.0, 6.0],
            _ => unreachable!(),
        });
        let mut nash = pure_nash_equilibria(&g);
        nash.sort();
        assert_eq!(nash, vec![vec![0, 1], vec![1, 0]]);
    }

    #[test]
    fn coordination_has_every_unanimous_profile_as_nash() {
        let g = crate::library::coordination_game(3, 2);
        let nash = pure_nash_equilibria(&g);
        assert!(nash.contains(&vec![0, 0, 0]));
        assert!(nash.contains(&vec![1, 1, 1]));
    }

    #[test]
    fn best_coalition_gain_diagnostic() {
        let (g, defect) = pd();
        let gain = best_coalition_gain(&g, &defect, 2);
        assert!((gain - 2.0).abs() < 1e-6);
    }
}
