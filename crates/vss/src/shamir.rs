//! Plain Shamir secret sharing and share arithmetic.

use mediator_field::{Fp, Poly};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One Shamir share: the dealing polynomial evaluated at `x = index + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Share {
    /// The holder's player index (evaluation point is `index + 1`).
    pub index: usize,
    /// The value `poly(index + 1)`.
    pub value: Fp,
}

impl Share {
    /// The evaluation point of this share.
    pub fn x(&self) -> Fp {
        Fp::new(self.index as u64 + 1)
    }

    /// The `(x, y)` pair for interpolation.
    pub fn point(&self) -> (Fp, Fp) {
        (self.x(), self.value)
    }
}

/// Shares `secret` among `n` players with threshold degree `deg`
/// (any `deg + 1` shares reconstruct; any `deg` reveal nothing).
pub fn share_secret<R: Rng + ?Sized>(
    secret: Fp,
    deg: usize,
    n: usize,
    rng: &mut R,
) -> (Poly, Vec<Share>) {
    let poly = Poly::random_with_secret(secret, deg, rng);
    let shares = share_with_poly(&poly, n);
    (poly, shares)
}

/// Evaluates an existing dealing polynomial into share form.
pub fn share_with_poly(poly: &Poly, n: usize) -> Vec<Share> {
    (0..n)
        .map(|index| Share {
            index,
            value: poly.eval(Fp::new(index as u64 + 1)),
        })
        .collect()
}

/// The Lagrange coefficient λ_j for evaluating at `x = 0` from the points
/// `{index + 1 : index ∈ holders}` (reconstruction weights).
///
/// # Panics
///
/// Panics if `j` is not in `holders` or holders repeat.
pub fn lagrange_at_zero(holders: &[usize], j: usize) -> Fp {
    assert!(holders.contains(&j), "player {j} not among holders");
    let xj = Fp::new(j as u64 + 1);
    let mut num = Fp::ONE;
    let mut den = Fp::ONE;
    for &m in holders {
        if m == j {
            continue;
        }
        let xm = Fp::new(m as u64 + 1);
        assert_ne!(m, j, "duplicate holder {m}");
        num *= -xm; // (0 - x_m)
        den *= xj - xm;
    }
    num * den.inv().expect("distinct holders")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mediator_field::rs;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn share_and_reconstruct() {
        let mut rng = StdRng::seed_from_u64(1);
        let (_, shares) = share_secret(Fp::new(777), 2, 7, &mut rng);
        let pts: Vec<(Fp, Fp)> = shares.iter().map(Share::point).collect();
        let p = rs::interpolate_exact(&pts, 2).unwrap();
        assert_eq!(p.eval(Fp::ZERO), Fp::new(777));
    }

    #[test]
    fn deg_shares_reveal_nothing_statistically() {
        // Dealing polynomials for two different secrets produce identically
        // distributed share prefixes of length deg; spot-check that the same
        // RNG stream yields different share sets for different secrets (no
        // accidental determinism) while any deg shares are consistent with
        // *some* polynomial for either secret.
        let mut rng = StdRng::seed_from_u64(2);
        let (_, s1) = share_secret(Fp::new(1), 2, 5, &mut rng);
        let two = [s1[0].point(), s1[1].point()];
        // For any candidate secret, a degree-2 polynomial exists through
        // (0, secret) and the two observed shares.
        for cand in [0u64, 1, 99] {
            let mut pts = vec![(Fp::ZERO, Fp::new(cand))];
            pts.extend_from_slice(&two);
            let p = Poly::interpolate(&pts);
            assert_eq!(p.eval(Fp::ZERO), Fp::new(cand));
            assert!(p.degree().map_or(0, |d| d) <= 2);
        }
    }

    #[test]
    fn additive_homomorphism() {
        let mut rng = StdRng::seed_from_u64(3);
        let (_, a) = share_secret(Fp::new(10), 2, 6, &mut rng);
        let (_, b) = share_secret(Fp::new(32), 2, 6, &mut rng);
        let sum: Vec<Share> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| Share {
                index: x.index,
                value: x.value + y.value,
            })
            .collect();
        let pts: Vec<(Fp, Fp)> = sum.iter().map(Share::point).collect();
        let p = rs::interpolate_exact(&pts, 2).unwrap();
        assert_eq!(p.eval(Fp::ZERO), Fp::new(42));
    }

    #[test]
    fn lagrange_weights_reconstruct_constant_term() {
        let mut rng = StdRng::seed_from_u64(4);
        let (poly, shares) = share_secret(Fp::new(31415), 3, 9, &mut rng);
        let holders = [0usize, 2, 4, 6];
        let mut acc = Fp::ZERO;
        for &j in &holders {
            acc += lagrange_at_zero(&holders, j) * shares[j].value;
        }
        assert_eq!(acc, poly.eval(Fp::ZERO));
    }

    #[test]
    #[should_panic(expected = "not among holders")]
    fn lagrange_rejects_non_holder() {
        let _ = lagrange_at_zero(&[0, 1, 2], 5);
    }

    #[test]
    fn share_points_start_at_one() {
        let mut rng = StdRng::seed_from_u64(5);
        let (poly, shares) = share_secret(Fp::new(5), 1, 3, &mut rng);
        assert_eq!(shares[0].x(), Fp::new(1));
        assert_eq!(shares[2].x(), Fp::new(3));
        assert_eq!(shares[1].value, poly.eval(Fp::new(2)));
    }
}
