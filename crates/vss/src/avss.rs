//! Asynchronous verifiable secret sharing (`t < n/4`) from symmetric
//! bivariate polynomials, shipping vectors of secrets per instance.
//!
//! The dealer samples, per secret, a random symmetric bivariate polynomial
//! `S(x, y)` of degree `f` in each variable with `S(0,0) = secret`, and
//! sends player `i` its *row* `f_i(y) = S(x_i, y)`. Players cross-check by
//! echoing evaluation points (`f_i(x_j) = f_j(x_i)` by symmetry), confirm
//! their row once `2f+1` echoes agree with it, recover a missing or
//! corrupted row by online error correction over the echoes addressed to
//! them, and run Bracha-style READY amplification to terminate. The final
//! share is `f_i(0)`, a point on the degree-`f` polynomial `S(x, 0)`.
//!
//! Properties exercised by the tests (for `n > 4f`):
//!
//! * honest dealer → every honest player completes with consistent shares;
//! * a withheld row is recovered from echoes;
//! * a corrupted row is overridden by the echo consensus;
//! * a dealer that shares to too few players completes nowhere (so the ACS
//!   excludes it from the input core).

use crate::reconstruct::OecState;
use crate::shamir::Share;
use mediator_field::{Fp, Poly};
use mediator_sim::sansio::Payload;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// AVSS wire messages (vector-valued: one entry per shared secret).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AvssMsg {
    /// Dealer → player: the player's row polynomial coefficients, one
    /// coefficient vector per secret. [`Payload`]-shared so re-routing or
    /// buffering a dealing never deep-copies the coefficient matrix.
    Rows(Payload<Vec<Vec<Fp>>>),
    /// Player `i` → player `j`: the evaluations `f_i(x_j)`, one per secret.
    Echo(Vec<Fp>),
    /// Bracha-style completion vote.
    Ready,
}

/// Outgoing message with explicit destination (AVSS rows are per-recipient,
/// so the generic broadcast-only plumbing does not fit).
pub type AvssOut = (AvssDest, AvssMsg);

/// Destination selector for [`AvssOut`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AvssDest {
    /// To one player.
    One(usize),
    /// To all players (including self).
    All,
}

/// Dealer-side sharing: builds the per-player row messages.
///
/// Returns one `Rows` message per player.
#[allow(clippy::needless_range_loop)] // symmetric matrix fill writes m[a][b] and m[b][a]
pub fn deal<R: Rng + ?Sized>(secrets: &[Fp], n: usize, f: usize, rng: &mut R) -> Vec<AvssMsg> {
    // One symmetric bivariate polynomial per secret:
    // S(x,y) = Σ_{a≤b} c_{ab} (x^a y^b + x^b y^a excess handled below).
    // We store the full (f+1)×(f+1) symmetric coefficient matrix.
    let per_secret: Vec<Vec<Vec<Fp>>> = secrets
        .iter()
        .map(|&s| {
            let mut m = vec![vec![Fp::ZERO; f + 1]; f + 1];
            for a in 0..=f {
                for b in a..=f {
                    let c = if a == 0 && b == 0 { s } else { Fp::random(rng) };
                    m[a][b] = c;
                    m[b][a] = c;
                }
            }
            m
        })
        .collect();
    (0..n)
        .map(|i| {
            let xi = Fp::new(i as u64 + 1);
            let rows: Vec<Vec<Fp>> = per_secret
                .iter()
                .map(|m| {
                    // f_i(y) = Σ_b (Σ_a m[a][b] x_i^a) y^b
                    (0..=f)
                        .map(|b| {
                            let mut acc = Fp::ZERO;
                            let mut xp = Fp::ONE;
                            for row in m.iter().take(f + 1) {
                                acc += row[b] * xp;
                                xp *= xi;
                            }
                            acc
                        })
                        .collect()
                })
                .collect();
            AvssMsg::Rows(Payload::new(rows))
        })
        .collect()
}

/// One player's state in one AVSS instance.
#[derive(Debug, Clone)]
pub struct AvssState {
    n: usize,
    f: usize,
    me: usize,
    num_secrets: Option<usize>,
    own_rows: Option<Vec<Poly>>,
    confirmed_rows: Option<Vec<Poly>>,
    echoes: BTreeMap<usize, Vec<Fp>>,
    echo_sent: bool,
    ready_sent: bool,
    ready_recv: BTreeSet<usize>,
    completed: bool,
}

impl AvssState {
    /// Creates the receiving-side state for one instance.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 4f` (the AVSS threshold) and `me < n`.
    pub fn new(n: usize, f: usize, me: usize) -> Self {
        assert!(n > 4 * f, "AVSS requires n > 4f (n={n}, f={f})");
        assert!(me < n);
        AvssState {
            n,
            f,
            me,
            num_secrets: None,
            own_rows: None,
            confirmed_rows: None,
            echoes: BTreeMap::new(),
            echo_sent: false,
            ready_sent: false,
            ready_recv: BTreeSet::new(),
            completed: false,
        }
    }

    /// Whether the instance completed (shares available).
    pub fn is_completed(&self) -> bool {
        self.completed
    }

    /// The share vector `f_me(0)` once completed.
    pub fn shares(&self) -> Option<Vec<Share>> {
        if !self.completed {
            return None;
        }
        let rows = self.confirmed_rows.as_ref()?;
        Some(
            rows.iter()
                .map(|r| Share {
                    index: self.me,
                    value: r.eval(Fp::ZERO),
                })
                .collect(),
        )
    }

    /// Processes a message from `from` (the dealer for `Rows`, peers for the
    /// rest). Returns outgoing messages and `true` when the instance
    /// completes now.
    pub fn on_message(&mut self, from: usize, msg: AvssMsg) -> (Vec<AvssOut>, bool) {
        let mut out = Vec::new();
        if self.completed {
            return (out, false);
        }
        match msg {
            AvssMsg::Rows(rows) => {
                if self.own_rows.is_none() && self.valid_rows(&rows) {
                    self.num_secrets = Some(rows.len());
                    // Point-to-point dealing: this is normally the last
                    // reference, so taking ownership is copy-free.
                    self.own_rows = Some(
                        rows.into_inner()
                            .into_iter()
                            .map(Poly::from_coeffs)
                            .collect(),
                    );
                    self.send_echoes(&mut out);
                }
                let _ = from;
            }
            AvssMsg::Echo(vals) => {
                if let Some(k) = self.num_secrets {
                    if vals.len() != k {
                        return (out, false); // malformed echo: drop
                    }
                } else {
                    self.num_secrets = Some(vals.len());
                }
                self.echoes.entry(from).or_insert(vals);
            }
            AvssMsg::Ready => {
                self.ready_recv.insert(from);
            }
        }
        self.progress(&mut out);
        let done = self.completed;
        (out, done)
    }

    fn valid_rows(&self, rows: &[Vec<Fp>]) -> bool {
        !rows.is_empty() && rows.iter().all(|r| r.len() <= self.f + 1)
    }

    fn send_echoes(&mut self, out: &mut Vec<AvssOut>) {
        if self.echo_sent {
            return;
        }
        if let Some(rows) = &self.own_rows {
            self.echo_sent = true;
            for j in 0..self.n {
                let xj = Fp::new(j as u64 + 1);
                let vals: Vec<Fp> = rows.iter().map(|r| r.eval(xj)).collect();
                out.push((AvssDest::One(j), AvssMsg::Echo(vals)));
            }
        }
    }

    /// Attempts confirmation, READY, amplification, recovery, completion.
    fn progress(&mut self, out: &mut Vec<AvssOut>) {
        self.try_confirm();
        // Late recovery may enable our echoes (helping others finish).
        if self.own_rows.is_none() && self.confirmed_rows.is_some() {
            self.own_rows = self.confirmed_rows.clone();
            self.send_echoes(out);
        }
        if self.confirmed_rows.is_some() && !self.ready_sent {
            // Direct READY once confirmed, or amplified READY at f+1 votes.
            let amplify = self.ready_recv.len() > self.f;
            let direct = true; // confirmation alone suffices to vote
            if direct || amplify {
                self.ready_sent = true;
                out.push((AvssDest::All, AvssMsg::Ready));
            }
        }
        if self.confirmed_rows.is_some() && self.ready_recv.len() > 2 * self.f && !self.completed {
            self.completed = true;
        }
    }

    /// Confirms rows coordinate-wise: own row if ≥ 2f+1 echoes agree, else
    /// the OEC-recovered row from the echoes addressed to us.
    fn try_confirm(&mut self) {
        if self.confirmed_rows.is_some() {
            return;
        }
        let Some(k) = self.num_secrets else { return };
        let mut confirmed: Vec<Poly> = Vec::with_capacity(k);
        for c in 0..k {
            // Own-row confirmation.
            if let Some(rows) = &self.own_rows {
                let row = &rows[c];
                let agree = self
                    .echoes
                    .iter()
                    .filter(|(&j, vals)| {
                        vals.len() == k && vals[c] == row.eval(Fp::new(j as u64 + 1))
                    })
                    .count();
                if agree > 2 * self.f {
                    confirmed.push(row.clone());
                    continue;
                }
            }
            // Echo-consensus recovery: the echoes sent to me are points of
            // my row (symmetry), decode with ≤ f corruptions, accept at
            // 2f+1 agreement.
            let mut oec = OecState::new(self.f, self.f);
            let mut rec = None;
            for (&j, vals) in &self.echoes {
                if vals.len() != k {
                    continue;
                }
                if oec.add_share(j, vals[c]).is_some() {
                    rec = oec.polynomial().cloned();
                    break;
                }
            }
            match rec {
                Some(p) => confirmed.push(p),
                None => return, // coordinate not confirmable yet
            }
        }
        self.confirmed_rows = Some(confirmed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mediator_field::rs;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Minimal driver: routes AvssOut messages among `n` states; `drop_row`
    /// suppresses the dealer's Rows to those players; `corrupt_row` hands
    /// those players a garbage row instead.
    fn run(
        n: usize,
        f: usize,
        dealer: usize,
        secrets: &[Fp],
        drop_rows: &[usize],
        corrupt_rows: &[usize],
        seed: u64,
    ) -> Vec<AvssState> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut states: Vec<AvssState> = (0..n).map(|i| AvssState::new(n, f, i)).collect();
        let rows = deal(secrets, n, f, &mut rng);
        let mut queue: Vec<(usize, usize, AvssMsg)> = Vec::new();
        for (i, msg) in rows.into_iter().enumerate() {
            if drop_rows.contains(&i) {
                continue;
            }
            let msg = if corrupt_rows.contains(&i) {
                AvssMsg::Rows(Payload::new(
                    secrets
                        .iter()
                        .map(|_| vec![Fp::random(&mut rng); f + 1])
                        .collect(),
                ))
            } else {
                msg
            };
            queue.push((dealer, i, msg));
        }
        use rand::Rng;
        let mut guard = 0u64;
        while !queue.is_empty() {
            guard += 1;
            assert!(guard < 1_000_000, "AVSS test livelock");
            let i = rng.gen_range(0..queue.len());
            let (from, to, msg) = queue.swap_remove(i);
            let (out, _) = states[to].on_message(from, msg);
            for (dest, m) in out {
                match dest {
                    AvssDest::One(d) => queue.push((to, d, m)),
                    AvssDest::All => {
                        for d in 0..n {
                            queue.push((to, d, m.clone()));
                        }
                    }
                }
            }
        }
        states
    }

    fn check_consistent_shares(states: &[AvssState], f: usize, secrets: &[Fp]) {
        for (c, &secret) in secrets.iter().enumerate() {
            let pts: Vec<(Fp, Fp)> = states
                .iter()
                .filter(|s| s.is_completed())
                .map(|s| s.shares().unwrap()[c].point())
                .collect();
            assert!(pts.len() > f, "not enough completed players");
            let p = rs::interpolate_exact(&pts, f).expect("shares must be f-consistent");
            assert_eq!(p.eval(Fp::ZERO), secret, "coordinate {c}");
        }
    }

    #[test]
    fn honest_dealer_all_complete_consistently() {
        let secrets = [Fp::new(11), Fp::new(22), Fp::new(33)];
        for seed in 0..3 {
            let states = run(5, 1, 0, &secrets, &[], &[], seed);
            assert!(states.iter().all(|s| s.is_completed()), "seed {seed}");
            check_consistent_shares(&states, 1, &secrets);
        }
    }

    #[test]
    fn withheld_row_is_recovered_from_echoes() {
        let secrets = [Fp::new(5)];
        for seed in 0..3 {
            let states = run(5, 1, 0, &secrets, &[3], &[], seed);
            assert!(
                states[3].is_completed(),
                "player 3 must recover, seed {seed}"
            );
            check_consistent_shares(&states, 1, &secrets);
        }
    }

    #[test]
    fn corrupted_row_is_overridden_by_echo_consensus() {
        let secrets = [Fp::new(1234)];
        for seed in 0..3 {
            let states = run(5, 1, 0, &secrets, &[], &[2], seed);
            assert!(states[2].is_completed(), "seed {seed}");
            // Crucially the corrupted player's share lies on the same
            // polynomial as everyone else's.
            check_consistent_shares(&states, 1, &secrets);
        }
    }

    #[test]
    fn dealer_sharing_to_too_few_completes_nowhere() {
        let secrets = [Fp::new(9)];
        // Rows reach only 2 of 5 players: 2f+1 = 3 echo confirmations are
        // unreachable, so nobody confirms, nobody votes READY.
        let states = run(5, 1, 0, &secrets, &[2, 3, 4], &[], 0);
        assert!(states.iter().all(|s| !s.is_completed()));
    }

    #[test]
    fn larger_instance_with_two_faults() {
        let secrets = [Fp::new(7), Fp::new(8)];
        let states = run(9, 2, 4, &secrets, &[0], &[1], 11);
        assert!(states.iter().all(|s| s.is_completed()));
        check_consistent_shares(&states, 2, &secrets);
    }

    #[test]
    #[should_panic(expected = "n > 4f")]
    fn rejects_insufficient_n() {
        let _ = AvssState::new(8, 2, 0);
    }

    #[test]
    fn shares_unavailable_before_completion() {
        let s = AvssState::new(5, 1, 0);
        assert!(!s.is_completed());
        assert!(s.shares().is_none());
    }
}
