//! Cut-and-choose **detectable** sharing (`t < n/3`) — the ε-machinery.
//!
//! The robust AVSS needs `n > 4f`. Below that, Theorem 4.2 settles for
//! ε-implementation: cheating is *detected* (w.h.p.) rather than corrected.
//! The dealer Shamir-shares the secret vector `f_1..f_m` (degree `f`) and κ
//! random blinding polynomials `g_1..g_κ`; a public challenge derived from
//! the setup seed gives field coefficients `ρ_{k,c}`, and every player
//! publicly opens its point of `h_k = g_k + Σ_c ρ_{k,c}·f_c`. Each `h_k` is
//! uniformly random (the blinding), so nothing leaks; but if the dealt
//! shares are not degree-`f` consistent, a random combination stays
//! inconsistent except with probability `1/|F| ≈ 2^{−61}` per check.
//!
//! Verdicts are per-player:
//!
//! * [`Verdict::DealerBad`] — the opened `h_k` doesn't decode, or ≥ t+1
//!   players accuse: the dealer is disqualified (t liars cannot frame an
//!   honest dealer because decoding corrects t errors when `n > f + 3t`).
//! * [`Verdict::MyShareBad`] — `h_k` decoded but disagrees with *my* dealt
//!   share: a colluding dealer targeted me; I must not use this share.
//! * [`Verdict::Ok`] — consistent.
//!
//! BKR close the remaining liveness gap (a disqualified-late dealer, aborts
//! forced by byzantine openers) with heavier machinery; this implementation
//! routes those events to the default/punishment path, and experiment E2
//! measures how often they occur (the observed ε).

use crate::reconstruct::OecState;
use mediator_field::{Fp, Poly};
use mediator_sim::sansio::Payload;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Wire messages for one detectable-sharing instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectMsg {
    /// Dealer → player `i`: the dealt share vector and blinding shares.
    Deal {
        /// `f_c(x_i)` for each secret coordinate `c`.
        shares: Vec<Fp>,
        /// `g_k(x_i)` for each check `k`.
        blinds: Vec<Fp>,
    },
    /// Player broadcast: `h_k(x_i)` for every check (sent once, after Deal).
    /// The point vector is [`Payload`]-shared: the n-way broadcast fan-out
    /// bumps a refcount per recipient instead of copying the vector.
    Open {
        /// The opened points, one per check.
        points: Payload<Vec<Fp>>,
    },
    /// Accusation broadcast: my dealt share disagrees with the decoded `h`.
    Accuse,
}

/// Per-player verdict on the dealer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Sharing verified; shares usable.
    Ok,
    /// The dealer is provably or collectively bad; exclude it.
    DealerBad,
    /// The global check passed but my own share is wrong; I must treat my
    /// share as missing (and I have broadcast an accusation).
    MyShareBad,
}

/// The public challenge coefficient `ρ_{k,c}` for a dealer's instance.
pub fn challenge(seed: u64, dealer: usize, check: usize, coord: usize) -> Fp {
    // SplitMix-style mixing; public and identical at every player.
    let mut z = seed
        ^ (dealer as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (check as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ (coord as u64).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    Fp::new(z ^ (z >> 31))
}

/// Dealer-side: produce the `Deal` message for every player.
pub fn deal_detectable<R: Rng + ?Sized>(
    secrets: &[Fp],
    n: usize,
    f: usize,
    kappa: usize,
    rng: &mut R,
) -> Vec<DetectMsg> {
    let polys: Vec<Poly> = secrets
        .iter()
        .map(|&s| Poly::random_with_secret(s, f, rng))
        .collect();
    let blinds: Vec<Poly> = (0..kappa)
        .map(|_| Poly::random_with_secret(Fp::random(rng), f, rng))
        .collect();
    (0..n)
        .map(|i| {
            let xi = Fp::new(i as u64 + 1);
            DetectMsg::Deal {
                shares: polys.iter().map(|p| p.eval(xi)).collect(),
                blinds: blinds.iter().map(|g| g.eval(xi)).collect(),
            }
        })
        .collect()
}

/// One player's state for one dealer's detectable sharing.
#[derive(Debug, Clone)]
pub struct DetectState {
    n: usize,
    /// Sharing degree, kept for introspection/debugging.
    #[allow(dead_code)]
    f: usize,
    t: usize,
    me: usize,
    dealer: usize,
    kappa: usize,
    seed: u64,
    my_shares: Option<Vec<Fp>>,
    my_blinds: Option<Vec<Fp>>,
    opened: bool,
    oec: Vec<OecState>,
    decoded: Vec<Option<Poly>>,
    accusers: BTreeSet<usize>,
    open_points: BTreeMap<usize, Payload<Vec<Fp>>>,
    verdict: Option<Verdict>,
    accused_self: bool,
}

impl DetectState {
    /// Creates the state; `f` is the sharing degree (`k + t` in the paper),
    /// `t` the number of corrupted players to tolerate in decoding.
    ///
    /// # Panics
    ///
    /// Panics unless `n ≥ f + 2t + 1` (the decode-liveness requirement).
    pub fn new(
        n: usize,
        f: usize,
        t: usize,
        me: usize,
        dealer: usize,
        kappa: usize,
        seed: u64,
    ) -> Self {
        assert!(
            n > f + 2 * t,
            "detectable sharing needs n ≥ f+2t+1 (n={n}, f={f}, t={t})"
        );
        DetectState {
            n,
            f,
            t,
            me,
            dealer,
            kappa,
            seed,
            my_shares: None,
            my_blinds: None,
            opened: false,
            oec: (0..kappa).map(|_| OecState::new(f, t)).collect(),
            decoded: vec![None; kappa],
            accusers: BTreeSet::new(),
            open_points: BTreeMap::new(),
            verdict: None,
            accused_self: false,
        }
    }

    /// The verdict, once reached.
    pub fn verdict(&self) -> Option<Verdict> {
        self.verdict
    }

    /// The dealt shares — usable only with [`Verdict::Ok`].
    pub fn shares(&self) -> Option<&[Fp]> {
        self.my_shares.as_deref()
    }

    /// Handles a message; returns broadcasts to send and the verdict when
    /// first reached.
    pub fn on_message(&mut self, from: usize, msg: DetectMsg) -> (Vec<DetectMsg>, Option<Verdict>) {
        let mut out = Vec::new();
        let before = self.verdict;
        match msg {
            DetectMsg::Deal { shares, blinds } => {
                if from == self.dealer && self.my_shares.is_none() && blinds.len() == self.kappa {
                    self.my_shares = Some(shares);
                    self.my_blinds = Some(blinds);
                    if !self.opened {
                        self.opened = true;
                        out.push(DetectMsg::Open {
                            points: Payload::new(self.my_open_points()),
                        });
                    }
                }
            }
            DetectMsg::Open { points } => {
                if points.len() == self.kappa {
                    self.open_points
                        .entry(from)
                        .or_insert_with(|| points.clone());
                    for (k, &p) in points.iter().enumerate() {
                        if self.decoded[k].is_none() && self.oec[k].add_share(from, p).is_some() {
                            self.decoded[k] = self.oec[k].polynomial().cloned();
                        }
                    }
                    self.evaluate(&mut out);
                }
            }
            DetectMsg::Accuse => {
                self.accusers.insert(from);
                self.evaluate(&mut out);
            }
        }
        let newly = match (before, self.verdict) {
            (None, Some(v)) => Some(v),
            _ => None,
        };
        (out, newly)
    }

    fn my_open_points(&self) -> Vec<Fp> {
        let shares = self.my_shares.as_ref().expect("dealt");
        let blinds = self.my_blinds.as_ref().expect("dealt");
        (0..self.kappa)
            .map(|k| {
                let mut acc = blinds[k];
                for (c, &s) in shares.iter().enumerate() {
                    acc += challenge(self.seed, self.dealer, k, c) * s;
                }
                acc
            })
            .collect()
    }

    fn evaluate(&mut self, out: &mut Vec<DetectMsg>) {
        if self.verdict.is_some() {
            return;
        }
        // Dealer collectively bad: t+1 accusations (at least one honest).
        if self.accusers.len() > self.t {
            self.verdict = Some(Verdict::DealerBad);
            return;
        }
        // Check decode failures: if ≥ n−t players opened a check and OEC
        // still has no candidate after all points arrived, the openings are
        // not f-consistent — dealer bad. (Conservatively: all n opened.)
        if self.open_points.len() == self.n {
            for k in 0..self.kappa {
                if self.decoded[k].is_none() {
                    self.verdict = Some(Verdict::DealerBad);
                    return;
                }
            }
        }
        // All checks decoded: verify own consistency.
        if self.decoded.iter().all(|d| d.is_some()) && self.my_shares.is_some() {
            let mine = self.my_open_points();
            let xi = Fp::new(self.me as u64 + 1);
            let consistent = (0..self.kappa)
                .all(|k| self.decoded[k].as_ref().expect("checked").eval(xi) == mine[k]);
            if consistent {
                self.verdict = Some(Verdict::Ok);
            } else {
                self.verdict = Some(Verdict::MyShareBad);
                if !self.accused_self {
                    self.accused_self = true;
                    out.push(DetectMsg::Accuse);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SEED: u64 = 424242;

    /// Drives one instance: `deals[i]` is what player i receives (allows
    /// corrupted deals); `liars` broadcast random open points.
    #[allow(clippy::too_many_arguments)]
    fn run(
        n: usize,
        f: usize,
        t: usize,
        dealer: usize,
        deals: Vec<DetectMsg>,
        liars: &[usize],
        kappa: usize,
        seed: u64,
    ) -> Vec<DetectState> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut states: Vec<DetectState> = (0..n)
            .map(|i| DetectState::new(n, f, t, i, dealer, kappa, SEED))
            .collect();
        let mut queue: Vec<(usize, usize, DetectMsg)> = Vec::new();
        for (i, d) in deals.into_iter().enumerate() {
            queue.push((dealer, i, d));
        }
        use rand::Rng;
        let mut guard = 0;
        while !queue.is_empty() {
            guard += 1;
            assert!(guard < 1_000_000);
            let i = rng.gen_range(0..queue.len());
            let (from, to, msg) = queue.swap_remove(i);
            let (out, _) = states[to].on_message(from, msg);
            for m in out {
                // All DetectMsg replies are broadcasts.
                let m = if liars.contains(&to) {
                    match m {
                        DetectMsg::Open { points } => DetectMsg::Open {
                            points: Payload::new(
                                points.iter().map(|_| Fp::random(&mut rng)).collect(),
                            ),
                        },
                        other => other,
                    }
                } else {
                    m
                };
                for d in 0..n {
                    queue.push((to, d, m.clone()));
                }
            }
        }
        states
    }

    #[test]
    fn honest_dealer_everyone_ok() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 7;
        let (f, t) = (2, 2); // n ≥ f+2t+1 = 7 ✓
        let deals = deal_detectable(&[Fp::new(5), Fp::new(6)], n, f, 3, &mut rng);
        let states = run(n, f, t, 0, deals, &[], 3, 0);
        for s in &states {
            assert_eq!(s.verdict(), Some(Verdict::Ok));
        }
    }

    #[test]
    fn honest_dealer_survives_t_lying_openers() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 7;
        let (f, t) = (2, 2);
        let deals = deal_detectable(&[Fp::new(5)], n, f, 2, &mut rng);
        let states = run(n, f, t, 0, deals, &[5, 6], 2, 3);
        for (i, s) in states.iter().enumerate() {
            if ![5, 6].contains(&i) {
                assert_eq!(s.verdict(), Some(Verdict::Ok), "player {i}");
            }
        }
    }

    #[test]
    fn inconsistent_dealing_is_detected() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 7;
        let (f, t) = (2, 2);
        let mut deals = deal_detectable(&[Fp::new(5)], n, f, 2, &mut rng);
        // Corrupt three players' dealt shares: the share vector is no longer
        // degree-2 consistent.
        for d in deals.iter_mut().take(3) {
            if let DetectMsg::Deal { shares, .. } = d {
                shares[0] += Fp::new(1);
            }
        }
        let states = run(n, f, t, 0, deals, &[], 2, 7);
        // The combination h_k is inconsistent: decode either fails (DealerBad)
        // or decodes to a poly disagreeing with ≥ t+1 honest players, whose
        // accusations also yield DealerBad.
        let bad = states
            .iter()
            .filter(|s| s.verdict() == Some(Verdict::DealerBad))
            .count();
        assert!(bad >= n - 3, "dealer must be disqualified broadly: {bad}");
    }

    #[test]
    fn targeted_corruption_flags_my_share_bad() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 7;
        let (f, t) = (2, 2);
        let mut deals = deal_detectable(&[Fp::new(5)], n, f, 2, &mut rng);
        // Corrupt exactly one player's dealt share (≤ t targets: cannot be
        // pinned on the dealer by count alone).
        if let DetectMsg::Deal { shares, .. } = &mut deals[4] {
            shares[0] += Fp::new(99);
        }
        let states = run(n, f, t, 0, deals, &[], 2, 9);
        assert_eq!(states[4].verdict(), Some(Verdict::MyShareBad));
        // Others decode fine (the single bad opening is corrected by OEC) —
        // and see only 1 ≤ t accusations.
        for (i, s) in states.iter().enumerate() {
            if i != 4 {
                assert_eq!(s.verdict(), Some(Verdict::Ok), "player {i}");
            }
        }
    }

    #[test]
    fn challenge_is_public_and_stable() {
        assert_eq!(challenge(1, 2, 3, 4), challenge(1, 2, 3, 4));
        assert_ne!(challenge(1, 2, 3, 4), challenge(1, 2, 3, 5));
        assert_ne!(challenge(1, 2, 3, 4), challenge(2, 2, 3, 4));
    }

    #[test]
    #[should_panic(expected = "n ≥ f+2t+1")]
    fn rejects_undecodable_parameters() {
        let _ = DetectState::new(5, 2, 2, 0, 0, 1, SEED);
    }
}
