//! [`SansIo`] driver for the AVSS state machine.
//!
//! AVSS messages are per-recipient (each player gets its own row
//! polynomial), so the machine speaks its own [`AvssOut`] destination shape;
//! this driver translates to the shared [`Outgoing`] vocabulary and bundles
//! the dealer's secrets so the whole sharing — dealing included — runs
//! under the full `mediator-sim` `World` via
//! [`SansIoProcess`](mediator_sim::sansio::SansIoProcess) or
//! [`run_machines`](mediator_sim::sansio::run_machines).

use crate::avss::{self, AvssDest, AvssMsg, AvssOut, AvssState};
use crate::shamir::Share;
use mediator_field::Fp;
use mediator_sim::sansio::{Outgoing, SansIo};
use rand::rngs::StdRng;

/// Converts the AVSS-native destination to the shared one.
impl From<AvssDest> for mediator_sim::sansio::Dest {
    fn from(d: AvssDest) -> Self {
        match d {
            AvssDest::One(i) => mediator_sim::sansio::Dest::One(i),
            AvssDest::All => mediator_sim::sansio::Dest::All,
        }
    }
}

fn convert(batch: Vec<AvssOut>) -> Vec<Outgoing<AvssMsg>> {
    batch
        .into_iter()
        .map(|(dest, msg)| Outgoing {
            dest: dest.into(),
            msg,
        })
        .collect()
}

/// One player in one AVSS instance. The dealer carries the secrets to share
/// and emits the per-player `Rows` messages on start (randomness drawn from
/// the runtime's process-local generator, so dealing is reproducible under
/// every scheduler).
#[derive(Debug, Clone)]
pub struct AvssPeer {
    state: AvssState,
    n: usize,
    f: usize,
    secrets: Option<Vec<Fp>>,
}

impl AvssPeer {
    /// Creates the peer for `me`; `secrets` must be `Some` iff `me == dealer`.
    pub fn new(n: usize, f: usize, dealer: usize, me: usize, secrets: Option<Vec<Fp>>) -> Self {
        assert_eq!(
            secrets.is_some(),
            me == dealer,
            "exactly the dealer supplies secrets"
        );
        AvssPeer {
            state: AvssState::new(n, f, me),
            n,
            f,
            secrets,
        }
    }
}

impl SansIo for AvssPeer {
    type Msg = AvssMsg;
    type Output = Vec<Share>;

    fn on_start(&mut self, rng: &mut StdRng) -> Vec<Outgoing<AvssMsg>> {
        match self.secrets.take() {
            Some(secrets) => avss::deal(&secrets, self.n, self.f, rng)
                .into_iter()
                .enumerate()
                .map(|(i, rows)| Outgoing::to(i, rows))
                .collect(),
            None => Vec::new(),
        }
    }

    fn on_message(
        &mut self,
        from: usize,
        msg: AvssMsg,
        _rng: &mut StdRng,
    ) -> (Vec<Outgoing<AvssMsg>>, Option<Vec<Share>>) {
        let (batch, done) = self.state.on_message(from, msg);
        let shares = if done { self.state.shares() } else { None };
        (convert(batch), shares)
    }

    /// A completed AVSS player produces no further messages (its echoes and
    /// READY are already on the wire), so halting it is behaviourally
    /// equivalent to keeping it.
    fn is_done(&self) -> bool {
        self.state.is_completed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reconstruct::OecState;
    use mediator_sim::sansio::run_machines;
    use mediator_sim::{SchedulerKind, TerminationKind};

    fn peers(n: usize, f: usize, dealer: usize, secrets: &[u64]) -> Vec<AvssPeer> {
        let fps: Vec<Fp> = secrets.iter().map(|&s| Fp::new(s)).collect();
        (0..n)
            .map(|me| AvssPeer::new(n, f, dealer, me, (me == dealer).then(|| fps.clone())))
            .collect()
    }

    #[test]
    fn avss_under_world_completes_with_consistent_shares() {
        for kind in [
            SchedulerKind::Random,
            SchedulerKind::Fifo,
            SchedulerKind::Lifo,
            SchedulerKind::TargetedDelay(vec![1]),
        ] {
            for seed in 0..3 {
                let (n, f) = (5, 1);
                let (outcome, outputs) = run_machines(
                    peers(n, f, 0, &[17, 99]),
                    Vec::new(),
                    kind.build().as_mut(),
                    seed,
                    500_000,
                );
                assert_eq!(outcome.termination, TerminationKind::Quiescent, "{kind:?}");
                // Every player completed with one share per secret; the
                // shares reconstruct the dealt secrets.
                for (s, &expect) in [17u64, 99].iter().enumerate() {
                    let mut oec = OecState::new(f, f);
                    for o in outputs.iter() {
                        let sh = o.as_ref().expect("completed")[s];
                        if oec.secret().is_none() {
                            oec.add_share(sh.index, sh.value);
                        }
                    }
                    assert_eq!(
                        oec.secret(),
                        Some(Fp::new(expect)),
                        "secret {s} under {kind:?} seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn avss_tolerates_silent_byzantine_player() {
        let (n, f) = (5, 1);
        let silent: mediator_sim::Behavior<AvssMsg> = Box::new(|_, _, _| Vec::new());
        let (_, outputs) = run_machines(
            peers(n, f, 0, &[23]),
            vec![(3, silent.into())],
            SchedulerKind::Random.build().as_mut(),
            1,
            500_000,
        );
        for (i, o) in outputs.iter().enumerate() {
            if i != 3 {
                assert!(o.is_some(), "honest player {i} completes");
            }
        }
    }
}
