//! Online error correction (OEC): incremental robust reconstruction.
//!
//! In an asynchronous network a reconstructor cannot wait for all `n`
//! shares — `f` senders may be silent forever. BCG's online error
//! correction accepts as soon as some degree-`deg` polynomial agrees with
//! `deg + f + 1` of the points received so far: at most `f` of those are
//! corrupt, so at least `deg + 1` honest points agree, pinning the honest
//! polynomial. Liveness: once all `n − f` honest shares arrive, a decode
//! correcting up to `f` errors succeeds provided `n − f ≥ deg + f + 1`,
//! i.e. **`n ≥ deg + 2f + 1`** — with `deg = 2f` (product openings) this is
//! the `n ≥ 4f + 1` of Theorem 4.1.

use mediator_field::{rs, Fp, Poly};
use std::collections::BTreeMap;

/// Incremental robust reconstruction of one shared value.
#[derive(Debug, Clone)]
pub struct OecState {
    deg: usize,
    f: usize,
    points: BTreeMap<usize, Fp>,
    decoded: Option<(Poly, Fp)>,
}

impl OecState {
    /// Creates a reconstructor for a degree-`deg` sharing tolerating up to
    /// `f` corrupted shares.
    pub fn new(deg: usize, f: usize) -> Self {
        OecState {
            deg,
            f,
            points: BTreeMap::new(),
            decoded: None,
        }
    }

    /// The reconstructed secret, if accepted already.
    pub fn secret(&self) -> Option<Fp> {
        self.decoded.as_ref().map(|(_, s)| *s)
    }

    /// The full decoded polynomial, if accepted already.
    pub fn polynomial(&self) -> Option<&Poly> {
        self.decoded.as_ref().map(|(p, _)| p)
    }

    /// Number of distinct share points received.
    pub fn point_count(&self) -> usize {
        self.points.len()
    }

    /// Adds the share of player `index` (point `x = index+1`) and retries
    /// acceptance. Returns the secret when first accepted. Duplicate senders
    /// keep their first value (equivocation to the same reconstructor is
    /// pointless and ignored).
    pub fn add_share(&mut self, index: usize, value: Fp) -> Option<Fp> {
        if self.decoded.is_some() {
            return None;
        }
        self.points.entry(index).or_insert(value);
        self.try_accept()
    }

    fn try_accept(&mut self) -> Option<Fp> {
        let m = self.points.len();
        if m < self.deg + self.f + 1 {
            return None;
        }
        // The share points are grid indices: the exact path (e = 0) runs on
        // the cached-weight grid kernel; the error-correcting attempts
        // share one point vector, built lazily — the common clean-shares
        // case accepts at e = 0 without ever materialising it.
        let idxs: Vec<usize> = self.points.keys().copied().collect();
        let ys: Vec<Fp> = self.points.values().copied().collect();
        let mut pts: Vec<(Fp, Fp)> = Vec::new();
        // Try error counts small to large; accept iff the candidate agrees
        // with ≥ deg + f + 1 received points.
        let max_e = ((m.saturating_sub(self.deg + 1)) / 2).min(self.f);
        for e in 0..=max_e {
            let attempt = if e == 0 {
                rs::interpolate_exact_indices(&idxs, &ys, self.deg).map(|p| (p, Vec::new()))
            } else {
                if pts.is_empty() {
                    pts = idxs
                        .iter()
                        .zip(&ys)
                        .map(|(&i, &y)| (Fp::new(i as u64 + 1), y))
                        .collect();
                }
                rs::decode_robust(&pts, self.deg, e)
            };
            if let Ok((poly, bad)) = attempt {
                let agree = m - bad.len();
                if agree > self.deg + self.f {
                    let s = poly.eval(Fp::ZERO);
                    self.decoded = Some((poly, s));
                    return Some(s);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shamir::share_secret;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn accepts_with_exactly_deg_plus_f_plus_one_honest_points() {
        let mut rng = StdRng::seed_from_u64(1);
        let deg = 2;
        let f = 1;
        let (_, shares) = share_secret(Fp::new(55), deg, 7, &mut rng);
        let mut oec = OecState::new(deg, f);
        // deg + f + 1 = 4 points needed.
        assert!(oec.add_share(0, shares[0].value).is_none());
        assert!(oec.add_share(1, shares[1].value).is_none());
        assert!(oec.add_share(2, shares[2].value).is_none());
        assert_eq!(oec.add_share(3, shares[3].value), Some(Fp::new(55)));
        assert_eq!(oec.secret(), Some(Fp::new(55)));
    }

    #[test]
    fn corrects_f_lies_once_enough_points_arrive() {
        let mut rng = StdRng::seed_from_u64(2);
        let deg = 2;
        let f = 2;
        let n = deg + 2 * f + 1; // 7
        let (_, shares) = share_secret(Fp::new(99), deg, n, &mut rng);
        let mut oec = OecState::new(deg, f);
        // Two liars first.
        assert!(oec.add_share(0, Fp::new(123)).is_none());
        assert!(oec.add_share(1, Fp::new(456)).is_none());
        // Honest shares follow; must accept despite the lies, and must never
        // accept a wrong value on the way.
        let mut got = None;
        for s in shares.iter().skip(2) {
            if let Some(v) = oec.add_share(s.index, s.value) {
                got = Some(v);
            }
        }
        assert_eq!(got, Some(Fp::new(99)));
    }

    #[test]
    fn never_accepts_wrong_value_with_at_most_f_lies() {
        // Adversarial order: lies early, truth late, random corruption
        // patterns. Acceptance must always yield the true secret.
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..50 {
            let deg = 2;
            let f = 2;
            let n = 9;
            let secret = Fp::random(&mut rng);
            let (_, shares) = share_secret(secret, deg, n, &mut rng);
            let mut order: Vec<usize> = (0..n).collect();
            for i in 0..n {
                let j = rng.gen_range(i..n);
                order.swap(i, j);
            }
            let liars: Vec<usize> = order[..f].to_vec();
            let mut oec = OecState::new(deg, f);
            for &i in &order {
                let v = if liars.contains(&i) {
                    Fp::random(&mut rng)
                } else {
                    shares[i].value
                };
                if let Some(got) = oec.add_share(i, v) {
                    assert_eq!(got, secret, "trial {trial}");
                }
            }
            assert_eq!(oec.secret(), Some(secret), "trial {trial} must terminate");
        }
    }

    #[test]
    fn silent_f_does_not_block_liveness_at_threshold_n() {
        // n = deg + 2f + 1, f silent, f liars among the senders is impossible
        // (only n − f send) — check the pure-silence case.
        let mut rng = StdRng::seed_from_u64(4);
        let deg = 4; // 2f with f=2
        let f = 2;
        let n = deg + 2 * f + 1; // 9 = 4f+1
        let (_, shares) = share_secret(Fp::new(7), deg, n, &mut rng);
        let mut oec = OecState::new(deg, f);
        let mut got = None;
        for s in shares.iter().take(n - f) {
            if let Some(v) = oec.add_share(s.index, s.value) {
                got = Some(v);
            }
        }
        assert_eq!(got, Some(Fp::new(7)), "n−f honest points must suffice");
    }

    #[test]
    fn below_threshold_sharpness_deg2f_at_n_4f() {
        // With n = 4f (one below threshold), f silent + the rest honest gives
        // only deg + f points: OEC must (correctly) never accept. This is the
        // E1 below-threshold row.
        let mut rng = StdRng::seed_from_u64(5);
        let f = 1;
        let deg = 2 * f;
        let n = 4 * f; // 4
        let (_, shares) = share_secret(Fp::new(7), deg, n, &mut rng);
        let mut oec = OecState::new(deg, f);
        for s in shares.iter().take(n - f) {
            assert!(oec.add_share(s.index, s.value).is_none());
        }
        assert_eq!(oec.secret(), None);
    }

    #[test]
    fn duplicate_senders_do_not_help() {
        let mut rng = StdRng::seed_from_u64(6);
        let (_, shares) = share_secret(Fp::new(3), 1, 5, &mut rng);
        let mut oec = OecState::new(1, 1);
        assert!(oec.add_share(0, shares[0].value).is_none());
        assert!(oec.add_share(0, shares[0].value).is_none());
        assert!(
            oec.add_share(0, Fp::new(9)).is_none(),
            "second value ignored"
        );
        assert!(oec.add_share(1, shares[1].value).is_none());
        // deg + f + 1 = 3 distinct senders needed.
        assert_eq!(oec.add_share(2, shares[2].value), Some(Fp::new(3)));
    }

    #[test]
    fn zero_f_is_plain_interpolation() {
        let mut rng = StdRng::seed_from_u64(7);
        let (_, shares) = share_secret(Fp::new(11), 2, 3, &mut rng);
        let mut oec = OecState::new(2, 0);
        assert!(oec.add_share(0, shares[0].value).is_none());
        assert!(oec.add_share(1, shares[1].value).is_none());
        assert_eq!(oec.add_share(2, shares[2].value), Some(Fp::new(11)));
    }
}
