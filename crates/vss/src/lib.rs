//! Secret sharing for the asynchronous MPC substrate.
//!
//! Four layers, bottom-up:
//!
//! * [`shamir`] — plain Shamir sharing over `GF(2^61−1)` (share `i` is the
//!   dealing polynomial evaluated at `x = i+1`), plus share arithmetic.
//! * [`reconstruct`] — **online error correction** (OEC, from BCG '93):
//!   incremental robust reconstruction as shares dribble in over an
//!   asynchronous network. Accept once some candidate polynomial agrees
//!   with `deg + f + 1` of the received points; liveness needs
//!   `n ≥ deg + 2f + 1`, which for the degree-`2f` product openings is
//!   exactly the paper's `n > 4f` threshold (Theorem 4.1).
//! * [`avss`] — asynchronous verifiable secret sharing from a symmetric
//!   bivariate polynomial (`t < n/4`): dealer sends row polynomials, players
//!   cross-echo evaluation points, READY amplification à la Bracha, and
//!   players that never received a row recover it by robustly decoding the
//!   echoes addressed to them. Ships whole *vectors* of secrets in one
//!   instance (the MPC input phase shares a player's inputs and all its
//!   randomness contributions at once).
//! * [`detect`] — cut-and-choose *detectable* sharing (`t < n/3`, soundness
//!   `1 − 2^{−κ}`): the dealer also shares κ random blinding polynomials;
//!   public coin challenges open `g_k + c_k·f`, which is uniformly random
//!   (reveals nothing) yet exposes a non-polynomial dealing with probability
//!   ≥ 1/2 per check. This is the ε-machinery of Theorems 4.2/4.5.

pub mod avss;
pub mod detect;
pub mod driver;
pub mod reconstruct;
pub mod shamir;

pub use avss::{AvssMsg, AvssState};
pub use detect::{DetectMsg, DetectState, Verdict};
pub use driver::AvssPeer;
pub use reconstruct::OecState;
pub use shamir::{share_secret, share_with_poly, Share};
