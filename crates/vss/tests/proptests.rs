//! Property-based tests for the sharing layer: privacy-degree arithmetic,
//! online error correction soundness under arbitrary adversarial order and
//! lie patterns.

use mediator_field::{rs, Fp};
use mediator_vss::shamir::{lagrange_at_zero, share_secret, Share};
use mediator_vss::OecState;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn share_then_reconstruct(secret in any::<u64>(), deg in 0usize..4, extra in 1usize..4, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = deg + extra;
        let (_, shares) = share_secret(Fp::new(secret), deg, n, &mut rng);
        let pts: Vec<(Fp, Fp)> = shares.iter().map(Share::point).collect();
        let p = rs::interpolate_exact(&pts, deg).unwrap();
        prop_assert_eq!(p.eval(Fp::ZERO), Fp::new(secret));
    }

    #[test]
    fn linear_combinations_of_sharings_share_the_combination(
        s1 in any::<u64>(), s2 in any::<u64>(), c in any::<u64>(), seed in any::<u64>()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let deg = 2;
        let n = 6;
        let (_, a) = share_secret(Fp::new(s1), deg, n, &mut rng);
        let (_, b) = share_secret(Fp::new(s2), deg, n, &mut rng);
        let combo: Vec<Share> = a.iter().zip(&b).map(|(x, y)| Share {
            index: x.index,
            value: x.value + Fp::new(c) * y.value,
        }).collect();
        let pts: Vec<(Fp, Fp)> = combo.iter().map(Share::point).collect();
        let p = rs::interpolate_exact(&pts, deg).unwrap();
        prop_assert_eq!(p.eval(Fp::ZERO), Fp::new(s1) + Fp::new(c) * Fp::new(s2));
    }

    #[test]
    fn lagrange_weights_sum_reconstruction(secret in any::<u64>(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let deg = 2;
        let n = 7;
        let (_, shares) = share_secret(Fp::new(secret), deg, n, &mut rng);
        let holders = [1usize, 3, 4, 6];
        let mut acc = Fp::ZERO;
        for &j in &holders {
            acc += lagrange_at_zero(&holders, j) * shares[j].value;
        }
        prop_assert_eq!(acc, Fp::new(secret));
    }

    /// OEC soundness under arbitrary arrival order, arbitrary liar subset of
    /// size ≤ f and arbitrary lie values: any accepted value equals the true
    /// secret, and acceptance happens once all honest shares are in.
    #[test]
    fn oec_never_accepts_a_wrong_value(
        secret in any::<u64>(),
        order_seed in any::<u64>(),
        liar_mask in any::<u16>(),
        lie in 1u64..1_000_000,
        seed in any::<u64>(),
    ) {
        let deg = 2usize;
        let f = 2usize;
        let n = deg + 2 * f + 1; // 7
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, shares) = share_secret(Fp::new(secret), deg, n, &mut rng);
        // Choose up to f liars from the mask.
        let liars: Vec<usize> = (0..n).filter(|i| (liar_mask >> i) & 1 == 1).take(f).collect();
        // Arbitrary arrival order.
        let mut order: Vec<usize> = (0..n).collect();
        let mut orng = StdRng::seed_from_u64(order_seed);
        use rand::Rng;
        for i in 0..n {
            let j = orng.gen_range(i..n);
            order.swap(i, j);
        }
        let mut oec = OecState::new(deg, f);
        for &i in &order {
            let v = if liars.contains(&i) { shares[i].value + Fp::new(lie) } else { shares[i].value };
            if let Some(got) = oec.add_share(i, v) {
                prop_assert_eq!(got, Fp::new(secret));
            }
        }
        prop_assert_eq!(oec.secret(), Some(Fp::new(secret)), "must terminate with all shares in");
    }

    /// Privacy-shaped property: any deg shares are consistent with every
    /// candidate secret (perfect secrecy of Shamir sharing).
    #[test]
    fn deg_shares_are_consistent_with_any_secret(
        secret in any::<u64>(), candidate in any::<u64>(), seed in any::<u64>()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let deg = 3;
        let (_, shares) = share_secret(Fp::new(secret), deg, 8, &mut rng);
        // Take deg shares and a hypothetical secret: an interpolating
        // polynomial of degree ≤ deg always exists.
        let mut pts = vec![(Fp::ZERO, Fp::new(candidate))];
        pts.extend(shares.iter().take(deg).map(Share::point));
        let p = mediator_field::Poly::interpolate(&pts);
        prop_assert!(p.degree().map_or(0, |d| d) <= deg);
        prop_assert_eq!(p.eval(Fp::ZERO), Fp::new(candidate));
    }
}
