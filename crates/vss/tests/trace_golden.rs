//! Golden trace-equality suite for AVSS worlds: pins the `World` event
//! plane to the seed semantics (the sharing-layer companion of
//! `crates/broadcast/tests/trace_golden.rs` — see there for the rationale
//! and the regeneration workflow).

use mediator_field::Fp;
use mediator_sim::sansio::run_machines;
use mediator_sim::{Outcome, SchedulerKind};
use mediator_vss::AvssPeer;

/// The single-sourced run fingerprint (see [`Outcome::fingerprint`]).
fn outcome_hash(out: &Outcome) -> u64 {
    out.fingerprint()
}

const SEEDS: u64 = 32;

fn run_avss(kind: &SchedulerKind, seed: u64) -> Outcome {
    let secrets = vec![Fp::new(17), Fp::new(99)];
    let machines: Vec<AvssPeer> = (0..5)
        .map(|me| AvssPeer::new(5, 1, 0, me, (me == 0).then(|| secrets.clone())))
        .collect();
    run_machines(machines, Vec::new(), kind.build().as_mut(), seed, 500_000).0
}

fn battery_hash() -> Vec<(String, u64)> {
    SchedulerKind::battery(5)
        .iter()
        .map(|kind| {
            let mut h = 0u64;
            for seed in 0..SEEDS {
                h = h
                    .rotate_left(1)
                    .wrapping_add(outcome_hash(&run_avss(kind, seed)));
            }
            (format!("{kind:?}"), h)
        })
        .collect()
}

/// Golden values captured from the pre-event-plane-refactor seed (PR 1).
const GOLDEN_AVSS: &[(&str, u64)] = &[
    ("Random", 0x21c80abd94c695c3),
    ("Fifo", 0x61f43a251e0bc5db),
    ("Lifo", 0x148dd729c21d962d),
    ("TargetedDelay([0])", 0x8f73534fd856240a),
    ("TargetedDelay([1])", 0x67fa6a152b6eb5f4),
    ("TargetedDelay([2])", 0x9b2eb877bad60bae),
    (
        "Partition { group: [0, 1], heal_after: 200 }",
        0xbb0f534959856f1f,
    ),
];

#[test]
fn avss_traces_match_seed_event_plane() {
    let got = battery_hash();
    assert_eq!(GOLDEN_AVSS.len(), got.len(), "battery size changed");
    for ((gk, gh), (k, h)) in GOLDEN_AVSS.iter().zip(&got) {
        assert_eq!(gk, k, "scheduler battery order changed");
        assert_eq!(
            *gh, *h,
            "avss/{k}: message pattern diverged from the seed event plane"
        );
    }
}

/// Regeneration helper: prints the table to paste above.
#[test]
#[ignore = "golden-value regeneration helper"]
fn print_golden_table() {
    println!("const GOLDEN_AVSS: &[(&str, u64)] = &[");
    for (k, h) in battery_hash() {
        println!("    (\"{k}\", {h:#018x}),");
    }
    println!("];");
}
