//! Lease accounting for sharded sweeps: a pure state machine over
//! abstract time.
//!
//! The sharded conformance coordinator must guarantee that every grid
//! unit is **completed exactly once** even while workers vanish
//! mid-lease, stall past their deadline, or return results for units that
//! were already re-leased and finished elsewhere. That invariant is pure
//! bookkeeping — no transport, no threads, no wall clock — so it lives
//! here in `mediator-core` as [`LeaseLedger`], parameterized over `u64`
//! ticks, where proptests can drive it through arbitrary churn
//! histories. The network coordinator (`mediator-net`'s shard module)
//! wraps it with real connections and maps every [`Reclaim`] to a typed
//! failure owner.
//!
//! State machine per unit:
//!
//! ```text
//! Pending ──grant──▶ Leased(worker, due) ──complete──▶ Done
//!    ▲                    │
//!    └──expire / vanish───┘        (late duplicate → discarded += 1)
//! ```

use std::collections::BTreeMap;

/// Why a leased unit went back to the pending queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reclaim {
    /// The lease deadline lapsed with no result.
    Expired {
        /// The reclaimed unit.
        unit: u64,
        /// The worker that held the lease.
        worker: u64,
    },
    /// The holding worker's connection died.
    Vanished {
        /// The reclaimed unit.
        unit: u64,
        /// The worker that held the lease.
        worker: u64,
    },
}

impl Reclaim {
    /// The reclaimed unit id.
    pub fn unit(&self) -> u64 {
        match *self {
            Reclaim::Expired { unit, .. } | Reclaim::Vanished { unit, .. } => unit,
        }
    }
}

/// One unit's lease state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnitState {
    Pending,
    Leased { worker: u64, due: u64 },
    Done,
}

/// The coordinator's lease book: which units are pending, who holds a
/// lease until when, and which are done — with re-lease on expiry or
/// worker death and first-result-wins deduplication.
///
/// Time is an abstract monotone `u64` the caller advances; the ledger
/// never reads a clock, which keeps it deterministic under test.
#[derive(Debug, Default)]
pub struct LeaseLedger {
    units: BTreeMap<u64, UnitState>,
    /// FIFO of units awaiting a lease (re-leased units re-enter at the
    /// back, so a flapping unit cannot starve the rest of the grid).
    queue: Vec<u64>,
    /// Units handed back to the queue by expiry or worker death.
    pub releases: usize,
    /// Late results for already-completed units, refused.
    pub discarded: usize,
}

impl LeaseLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a unit to the pending queue.
    ///
    /// # Panics
    ///
    /// Panics if the unit id is already tracked — unit ids are unique by
    /// construction, so a duplicate is a coordinator bug.
    pub fn enqueue(&mut self, unit: u64) {
        let prev = self.units.insert(unit, UnitState::Pending);
        assert!(prev.is_none(), "unit {unit} enqueued twice");
        self.queue.push(unit);
    }

    /// Leases the next pending unit to `worker` with deadline
    /// `now + deadline` ticks; `None` when nothing is pending.
    pub fn grant(&mut self, worker: u64, now: u64, deadline: u64) -> Option<u64> {
        let unit = if self.queue.is_empty() {
            return None;
        } else {
            self.queue.remove(0)
        };
        self.units.insert(
            unit,
            UnitState::Leased {
                worker,
                due: now.saturating_add(deadline),
            },
        );
        Some(unit)
    }

    /// Records a result for `unit`. Returns `true` when this is the
    /// first completion (the result must be counted) and `false` for a
    /// late duplicate — a re-leased unit that already finished elsewhere
    /// — which the caller must discard to keep cells single-counted.
    pub fn complete(&mut self, unit: u64) -> bool {
        match self.units.get(&unit) {
            Some(UnitState::Done) => {
                self.discarded += 1;
                false
            }
            Some(_) => {
                // A result also settles a lease the ledger had already
                // reclaimed (the unit is back in `queue`): drop the stale
                // queue entry so the unit is not run a second time.
                self.queue.retain(|&u| u != unit);
                self.units.insert(unit, UnitState::Done);
                true
            }
            None => {
                // A unit the coordinator never issued: refuse it.
                self.discarded += 1;
                false
            }
        }
    }

    /// Reclaims every lease whose deadline is `≤ now`, returning the
    /// reclaimed units (now back in the pending queue).
    pub fn expire(&mut self, now: u64) -> Vec<Reclaim> {
        let lapsed: Vec<(u64, u64)> = self
            .units
            .iter()
            .filter_map(|(&unit, state)| match *state {
                UnitState::Leased { worker, due } if due <= now => Some((unit, worker)),
                _ => None,
            })
            .collect();
        lapsed
            .into_iter()
            .map(|(unit, worker)| {
                self.release(unit);
                Reclaim::Expired { unit, worker }
            })
            .collect()
    }

    /// Reclaims every lease held by `worker` (its connection died).
    pub fn vanish(&mut self, worker: u64) -> Vec<Reclaim> {
        let held: Vec<u64> = self
            .units
            .iter()
            .filter_map(|(&unit, state)| match *state {
                UnitState::Leased { worker: w, .. } if w == worker => Some(unit),
                _ => None,
            })
            .collect();
        held.into_iter()
            .map(|unit| {
                self.release(unit);
                Reclaim::Vanished { unit, worker }
            })
            .collect()
    }

    fn release(&mut self, unit: u64) {
        self.units.insert(unit, UnitState::Pending);
        self.queue.push(unit);
        self.releases += 1;
    }

    /// The earliest outstanding lease deadline — how long the
    /// coordinator may sleep before the next [`Self::expire`] sweep.
    pub fn next_due(&self) -> Option<u64> {
        self.units
            .values()
            .filter_map(|state| match *state {
                UnitState::Leased { due, .. } => Some(due),
                _ => None,
            })
            .min()
    }

    /// Units not yet done (pending or leased).
    pub fn outstanding(&self) -> usize {
        self.units
            .values()
            .filter(|s| !matches!(s, UnitState::Done))
            .count()
    }

    /// Units currently awaiting a lease.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total units ever enqueued.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// `true` when no unit was ever enqueued.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// `true` once every unit is done.
    pub fn all_done(&self) -> bool {
        self.units.values().all(|s| matches!(s, UnitState::Done))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_complete_lifecycle() {
        let mut l = LeaseLedger::new();
        l.enqueue(0);
        l.enqueue(1);
        assert_eq!(l.grant(7, 0, 10), Some(0));
        assert_eq!(l.grant(8, 0, 10), Some(1));
        assert_eq!(l.grant(9, 0, 10), None, "nothing left to lease");
        assert!(l.complete(0));
        assert!(!l.all_done());
        assert!(l.complete(1));
        assert!(l.all_done());
        assert_eq!((l.releases, l.discarded), (0, 0));
    }

    #[test]
    fn expiry_requeues_and_late_result_is_discarded() {
        let mut l = LeaseLedger::new();
        l.enqueue(0);
        assert_eq!(l.grant(7, 0, 10), Some(0));
        assert!(l.expire(9).is_empty(), "deadline not yet due");
        assert_eq!(l.expire(10), vec![Reclaim::Expired { unit: 0, worker: 7 }]);
        assert_eq!(l.releases, 1);
        // Re-leased to another worker, completed there first.
        assert_eq!(l.grant(8, 10, 10), Some(0));
        assert!(l.complete(0), "first completion counts");
        assert!(!l.complete(0), "the slow original is a duplicate");
        assert_eq!(l.discarded, 1);
        assert!(l.all_done());
    }

    #[test]
    fn vanish_reclaims_only_that_workers_leases() {
        let mut l = LeaseLedger::new();
        for u in 0..3 {
            l.enqueue(u);
        }
        assert_eq!(l.grant(1, 0, 100), Some(0));
        assert_eq!(l.grant(2, 0, 100), Some(1));
        assert_eq!(l.grant(1, 0, 100), Some(2));
        let mut got = l.vanish(1);
        got.sort_by_key(Reclaim::unit);
        assert_eq!(
            got,
            vec![
                Reclaim::Vanished { unit: 0, worker: 1 },
                Reclaim::Vanished { unit: 2, worker: 1 },
            ]
        );
        assert_eq!(l.pending(), 2);
        assert!(l.complete(1), "the survivor's lease is untouched");
    }

    #[test]
    fn late_result_settles_a_reclaimed_lease_without_rerun() {
        // Expiry put the unit back in the queue, then the original slow
        // worker's result arrives before anyone re-leased it: the result
        // counts and the stale queue entry disappears.
        let mut l = LeaseLedger::new();
        l.enqueue(0);
        l.grant(7, 0, 10);
        l.expire(10);
        assert_eq!(l.pending(), 1);
        assert!(l.complete(0));
        assert_eq!(l.pending(), 0);
        assert!(l.all_done());
        assert_eq!(l.grant(8, 11, 10), None, "nothing left to lease");
    }

    #[test]
    fn next_due_tracks_earliest_lease() {
        let mut l = LeaseLedger::new();
        assert_eq!(l.next_due(), None);
        l.enqueue(0);
        l.enqueue(1);
        l.grant(1, 0, 30);
        l.grant(2, 5, 10);
        assert_eq!(l.next_due(), Some(15));
        l.complete(1);
        assert_eq!(l.next_due(), Some(30));
    }

    #[test]
    fn unknown_unit_result_is_refused() {
        let mut l = LeaseLedger::new();
        l.enqueue(0);
        assert!(!l.complete(99), "never-issued unit id");
        assert_eq!(l.discarded, 1);
    }
}
