//! The deviation library and empirical robustness reports.
//!
//! Solution concepts over *extended* games quantify over all strategies —
//! an infinite space. The paper's lower-bound companion exhibits specific
//! attacks; experiments here do the analogous thing: a battery of
//! parameterized deviations applied to the honest machinery, measuring the
//! utility consequences for deviators (resilience) and bystanders
//! (immunity). [`Behavior`] deviations plug into
//! [`CheapTalkPlayer`](crate::cheap_talk::CheapTalkPlayer); the §6.4
//! colluders are mediator-game processes.

use crate::mediator::MedMsg;
use mediator_field::Fp;
use mediator_games::{library, BayesianGame};
use mediator_sim::{Action, Ctx, Process, ProcessId};

/// Parameterized deviations applied to the honest cheap-talk player.
#[derive(Debug, Clone, Default)]
pub struct Behavior {
    /// Never participate at all (crash at start).
    pub silent: bool,
    /// Crash (stop sending) after this many messages.
    pub crash_after_sends: Option<u64>,
    /// Substitute this input for the real one.
    pub input_override: Option<Vec<Fp>>,
    /// Corrupt every opening/output point sent.
    pub lie_in_opens: bool,
    /// Decode the action but never move (force wills/deadlock).
    pub refuse_to_move: bool,
    /// Write this will instead of the honest one.
    pub will_override: Option<Action>,
}

impl Behavior {
    /// The honest behaviour.
    pub fn honest() -> Self {
        Behavior::default()
    }

    /// Named battery of deviations for robustness reports.
    pub fn battery() -> Vec<(&'static str, Behavior)> {
        vec![
            (
                "silent",
                Behavior {
                    silent: true,
                    ..Default::default()
                },
            ),
            (
                "crash-mid",
                Behavior {
                    crash_after_sends: Some(60),
                    ..Default::default()
                },
            ),
            (
                "lie-input",
                Behavior {
                    input_override: Some(vec![Fp::ONE]),
                    ..Default::default()
                },
            ),
            (
                "lie-opens",
                Behavior {
                    lie_in_opens: true,
                    ..Default::default()
                },
            ),
            (
                "refuse-move",
                Behavior {
                    refuse_to_move: true,
                    ..Default::default()
                },
            ),
        ]
    }
}

/// A process that never does anything (generic silent deviator).
pub struct SilentProcess;

impl<M> Process<M> for SilentProcess {
    fn on_start(&mut self, ctx: &mut Ctx<M>) {
        ctx.halt();
    }
    fn on_message(&mut self, _src: ProcessId, _msg: M, _ctx: &mut Ctx<M>) {}
}

/// The §6.4 rational colluder (mediator game): paired players of opposite
/// parity who XOR their round-1 leaks to learn `b` early, then deadlock the
/// naive mediator when `b = 0` (preferring the 1.1 punishment payoff to the
/// 1.0 all-zeros payoff) and cooperate when `b = 1` (payoff 2).
pub struct CounterexampleColluder {
    n: usize,
    partner: ProcessId,
    my_leak: Option<u64>,
    partner_leak: Option<u64>,
    input: Vec<Fp>,
    acked: bool,
}

impl CounterexampleColluder {
    /// Creates a colluder whose gossip partner is `partner`.
    pub fn new(n: usize, partner: ProcessId) -> Self {
        CounterexampleColluder {
            n,
            partner,
            my_leak: None,
            partner_leak: None,
            input: Vec::new(),
            acked: false,
        }
    }

    fn mediator(&self) -> ProcessId {
        self.n
    }

    fn decide(&mut self, ctx: &mut Ctx<MedMsg>) {
        let (Some(a), Some(b)) = (self.my_leak, self.partner_leak) else {
            return;
        };
        if self.acked {
            return;
        }
        self.acked = true;
        let bit = a ^ b; // opposite parity: leak_i XOR leak_j = b
        if bit == 0 {
            // Deadlock the naive mediator: never ack. Play ⊥ via the will,
            // pocket the 1.1 punishment payoff.
            ctx.set_will(library::BOTTOM as Action);
            ctx.halt();
        } else {
            // Cooperate: ack round 1, then play the announced action.
            ctx.send(
                self.mediator(),
                MedMsg::Input {
                    round: 1,
                    value: self.input.clone(),
                },
            );
        }
    }
}

impl Process<MedMsg> for CounterexampleColluder {
    fn on_start(&mut self, ctx: &mut Ctx<MedMsg>) {
        ctx.set_will(library::BOTTOM as Action);
        ctx.send(
            self.mediator(),
            MedMsg::Input {
                round: 0,
                value: self.input.clone(),
            },
        );
    }

    fn on_message(&mut self, src: ProcessId, msg: MedMsg, ctx: &mut Ctx<MedMsg>) {
        match msg {
            MedMsg::Round { round: 1, payload } if src == self.mediator() => {
                let leak = payload.first().map(|v| v.as_u64()).unwrap_or(0);
                self.my_leak = Some(leak);
                ctx.send(
                    self.partner,
                    MedMsg::Gossip {
                        payload: vec![Fp::new(leak)],
                    },
                );
                self.decide(ctx);
            }
            MedMsg::Gossip { payload } if src == self.partner => {
                self.partner_leak = payload.first().map(|v| v.as_u64());
                self.decide(ctx);
            }
            MedMsg::Stop { action } if src == self.mediator() => {
                ctx.make_move(action);
                ctx.halt();
            }
            _ => {}
        }
    }
}

/// One row of a robustness report.
#[derive(Debug, Clone)]
pub struct DeviationRow {
    /// Deviation name.
    pub name: String,
    /// Who deviated.
    pub deviators: Vec<usize>,
    /// Mean deviator utility under the deviation.
    pub deviator_utility: f64,
    /// Mean deviator utility under honest play.
    pub deviator_baseline: f64,
    /// Worst honest player's utility under the deviation.
    pub honest_worst: f64,
    /// That player's utility under honest play.
    pub honest_baseline: f64,
    /// Samples used.
    pub samples: usize,
}

impl DeviationRow {
    /// The deviator's gain (positive = resilience violated by this attack).
    pub fn gain(&self) -> f64 {
        self.deviator_utility - self.deviator_baseline
    }

    /// The harm inflicted on honest players (positive = immunity violated).
    pub fn harm(&self) -> f64 {
        self.honest_baseline - self.honest_worst
    }
}

/// An empirical (ε-)(k,t)-robustness report over a deviation battery.
#[derive(Debug, Clone, Default)]
pub struct RobustnessReport {
    /// One row per deviation tried.
    pub rows: Vec<DeviationRow>,
}

impl RobustnessReport {
    /// The largest deviator gain across the battery.
    pub fn max_gain(&self) -> f64 {
        self.rows.iter().map(DeviationRow::gain).fold(0.0, f64::max)
    }

    /// The largest honest harm across the battery.
    pub fn max_harm(&self) -> f64 {
        self.rows.iter().map(DeviationRow::harm).fold(0.0, f64::max)
    }

    /// Whether the battery found no ε-violating attack.
    pub fn is_eps_robust(&self, eps: f64) -> bool {
        self.max_gain() < eps + 1e-9 && self.max_harm() < eps + 1e-9
    }
}

/// Builds an empirical robustness report for a cheap-talk spec: runs the
/// honest baseline and every battery deviation (applied to `deviator`),
/// converts outcomes to game utilities under the fixed `types` draw, and
/// tabulates gains and harms.
///
/// Moves are resolved with the AH semantics when the spec carries a
/// punishment (wills) and with the spec's default actions otherwise. Actions
/// outside the game's range are passed through to the utility function —
/// the library games treat them as "something else" (zero matches), which is
/// the natural reading of an off-menu move.
pub fn cheap_talk_robustness_report(
    spec: &crate::cheap_talk::CheapTalkSpec,
    game: &BayesianGame,
    types: &[usize],
    inputs: &[Vec<Fp>],
    deviator: usize,
    samples: usize,
) -> RobustnessReport {
    let n = spec.n;
    // One validated plan; the baseline and every battery deviation are
    // seed-sweep batches of it (fanned across worker threads by run_batch).
    let plan = crate::scenario::CheapTalkPlan::from_spec(spec.clone(), inputs.to_vec());
    let runs_for = |plan: crate::scenario::CheapTalkPlan| -> Vec<(Vec<usize>, Vec<usize>)> {
        let set = plan.seeds(0..samples as u64).run_batch();
        set.outcomes()
            .map(|out| (types.to_vec(), set.profile(out)))
            .collect()
    };
    let base_u = empirical_utilities(game, &runs_for(plan.clone()));

    let mut report = RobustnessReport::default();
    for (name, behavior) in Behavior::battery() {
        let dev_runs = runs_for(plan.clone().with_deviant(deviator, behavior));
        let dev_u = empirical_utilities(game, &dev_runs);
        let honest_worst = (0..n)
            .filter(|&p| p != deviator)
            .map(|p| dev_u[p])
            .fold(f64::INFINITY, f64::min);
        let honest_baseline = (0..n)
            .filter(|&p| p != deviator)
            .map(|p| base_u[p])
            .fold(f64::INFINITY, f64::min);
        report.rows.push(DeviationRow {
            name: name.to_string(),
            deviators: vec![deviator],
            deviator_utility: dev_u[deviator],
            deviator_baseline: base_u[deviator],
            honest_worst,
            honest_baseline,
            samples,
        });
    }
    report
}

/// Mean per-player utilities over `(types, actions)` samples.
pub fn empirical_utilities(game: &BayesianGame, runs: &[(Vec<usize>, Vec<usize>)]) -> Vec<f64> {
    assert!(!runs.is_empty());
    let mut acc = vec![0.0; game.n()];
    for (types, actions) in runs {
        let us = game.utilities(types, actions);
        for i in 0..game.n() {
            acc[i] += us[i];
        }
    }
    for a in &mut acc {
        *a /= runs.len() as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cheap_talk::CheapTalkSpec;
    use mediator_circuits::catalog;

    #[test]
    fn robustness_report_on_byzantine_agreement_game() {
        // n=5, k=1, t=0 robust cheap talk playing the BA game. The honest
        // profile pays 1 to everyone; the battery should show (a) bounded
        // gains for the deviator and (b) the harms each attack causes
        // (silent/crash deviations DO harm in the BA game: unanimity breaks
        // when the deviator does not move — that is a property of the game,
        // not a protocol failure; the protocol's job per Theorem 4.1 is to
        // match what the *mediator game* would yield under the same
        // deviation, which also breaks unanimity).
        let n = 5;
        let game = mediator_games::library::byzantine_agreement_game(n);
        let spec = CheapTalkSpec::theorem_4_1(
            n,
            1,
            0,
            catalog::majority_circuit(n),
            vec![vec![Fp::ZERO]; n],
            vec![0; n],
        );
        let types = vec![1usize; n];
        let inputs: Vec<Vec<Fp>> = vec![vec![Fp::ONE]; n];
        let report = cheap_talk_robustness_report(&spec, &game, &types, &inputs, 2, 4);
        assert_eq!(report.rows.len(), Behavior::battery().len());
        // The lie-opens attack must not profit: outputs are corrected.
        let lie = report.rows.iter().find(|r| r.name == "lie-opens").unwrap();
        assert!(lie.gain() <= 1e-9, "lying in openings gains {}", lie.gain());
        assert!(lie.harm() <= 1e-9, "lying in openings harms {}", lie.harm());
        // The lie-input attack flips the deviator's vote — with unanimous
        // honest inputs the majority is unchanged: no gain, no harm.
        let li = report.rows.iter().find(|r| r.name == "lie-input").unwrap();
        assert!(li.gain().abs() <= 1e-9 && li.harm() <= 1e-9);
    }

    #[test]
    fn battery_has_distinct_names() {
        let b = Behavior::battery();
        let names: std::collections::BTreeSet<&str> = b.iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), b.len());
    }

    #[test]
    fn row_gain_and_harm() {
        let row = DeviationRow {
            name: "x".into(),
            deviators: vec![0],
            deviator_utility: 1.55,
            deviator_baseline: 1.5,
            honest_worst: 1.1,
            honest_baseline: 1.5,
            samples: 100,
        };
        assert!((row.gain() - 0.05).abs() < 1e-12);
        assert!((row.harm() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empirical_utilities_average() {
        let (game, _) = mediator_games::library::prisoners_dilemma();
        let runs = vec![
            (vec![0, 0], vec![0, 0]), // (3,3)
            (vec![0, 0], vec![1, 1]), // (1,1)
        ];
        let us = empirical_utilities(&game, &runs);
        assert_eq!(us, vec![2.0, 2.0]);
    }

    #[test]
    fn report_robustness_threshold() {
        let mut rep = RobustnessReport::default();
        rep.rows.push(DeviationRow {
            name: "a".into(),
            deviators: vec![1],
            deviator_utility: 1.0,
            deviator_baseline: 1.0,
            honest_worst: 0.95,
            honest_baseline: 1.0,
            samples: 10,
        });
        assert!(rep.is_eps_robust(0.1));
        assert!(!rep.is_eps_robust(0.01));
    }
}
