//! The deviation library and empirical robustness reports.
//!
//! Solution concepts over *extended* games quantify over all strategies —
//! an infinite space. The paper's lower-bound companion exhibits specific
//! attacks; experiments here do the analogous thing: batteries of
//! parameterized deviations applied to the honest machinery, measuring the
//! utility consequences for deviators (resilience) and bystanders
//! (immunity). [`Behavior`] deviations plug into
//! [`CheapTalkPlayer`](crate::cheap_talk::CheapTalkPlayer); they are built
//! by the [`adversary`](crate::adversary) plane's combinator DSL
//! ([`Deviation`]), which also generates the
//! coalition-strategy batteries the conformance harness sweeps. The §6.4
//! colluders are mediator-game processes
//! ([`GossipColluder`] in general;
//! [`CounterexampleColluder`] is the paper's specific point in that space).

use crate::adversary::{CollusionRule, Deviation, GossipColluder, Scheduled};
use crate::mediator::MedMsg;
use mediator_field::Fp;
use mediator_games::{library, BayesianGame};
use mediator_sim::{Action, Ctx, Process, ProcessId};

/// Parameterized deviations applied to the honest cheap-talk player:
/// player-level switches plus the message-level tactic schedule compiled
/// from the [`adversary`](crate::adversary) DSL.
#[derive(Debug, Clone, Default)]
pub struct Behavior {
    /// Never participate at all (crash at start).
    pub silent: bool,
    /// Crash (stop sending) after this many messages.
    pub crash_after_sends: Option<u64>,
    /// Substitute this input for the real one.
    pub input_override: Option<Vec<Fp>>,
    /// Corrupt every opening/output point sent.
    pub lie_in_opens: bool,
    /// Decode the action but never move (force wills/deadlock).
    pub refuse_to_move: bool,
    /// Write this will instead of the honest one.
    pub will_override: Option<Action>,
    /// Message-level tactics (drop/delay/equivocate/silence/abort windows),
    /// applied in the player's send path.
    pub tactics: Vec<Scheduled>,
}

impl Behavior {
    /// The honest behaviour.
    pub fn honest() -> Self {
        Behavior::default()
    }

    /// The classic named battery of single-player deviations, built from
    /// the combinator DSL (the conformance harness sweeps the larger
    /// [`generated_battery`](crate::adversary::generated_battery), which
    /// extends this list with windowed message-level strategies).
    pub fn battery() -> Vec<(&'static str, Behavior)> {
        let named = [
            ("silent", Deviation::named("silent").silent()),
            ("crash-mid", Deviation::named("crash-mid").crash_after(60)),
            (
                "lie-input",
                Deviation::named("lie-input").lie_about_input(vec![Fp::ONE]),
            ),
            ("lie-opens", Deviation::named("lie-opens").lie_in_opens()),
            (
                "refuse-move",
                Deviation::named("refuse-move").refuse_to_move(),
            ),
        ];
        named
            .into_iter()
            .map(|(name, d)| (name, d.build().1))
            .collect()
    }
}

/// A process that never does anything (generic silent deviator).
pub struct SilentProcess;

impl<M> Process<M> for SilentProcess {
    fn on_start(&mut self, ctx: &mut Ctx<M>) {
        ctx.halt();
    }
    fn on_message(&mut self, _src: ProcessId, _msg: M, _ctx: &mut Ctx<M>) {}
}

/// The §6.4 rational colluder (mediator game): paired players of opposite
/// parity who XOR their round-1 leaks to learn `b` early, then deadlock the
/// naive mediator when `b = 0` (preferring the 1.1 punishment payoff to the
/// 1.0 all-zeros payoff) and cooperate when `b = 1` (payoff 2).
///
/// One specific point of the generalized coalition space: a
/// [`GossipColluder`] pair under
/// `CollusionRule::DeadlockOnBit { trigger: 0, will: ⊥ }`. The conformance
/// harness *generates* this strategy (among others) rather than requiring
/// it to be hand-built.
pub struct CounterexampleColluder {
    inner: GossipColluder,
}

impl CounterexampleColluder {
    /// Creates a colluder whose gossip partner is `partner`.
    pub fn new(n: usize, partner: ProcessId) -> Self {
        let bottom = library::BOTTOM as Action;
        CounterexampleColluder {
            inner: GossipColluder::new(
                n,
                [partner],
                CollusionRule::DeadlockOnBit {
                    trigger: 0,
                    will: bottom,
                },
                bottom,
            ),
        }
    }
}

impl Process<MedMsg> for CounterexampleColluder {
    fn on_start(&mut self, ctx: &mut Ctx<MedMsg>) {
        self.inner.on_start(ctx);
    }

    fn on_message(&mut self, src: ProcessId, msg: MedMsg, ctx: &mut Ctx<MedMsg>) {
        self.inner.on_message(src, msg, ctx);
    }
}

/// One row of a robustness report.
#[derive(Debug, Clone)]
pub struct DeviationRow {
    /// Deviation name.
    pub name: String,
    /// Who deviated.
    pub deviators: Vec<usize>,
    /// Mean deviator utility under the deviation.
    pub deviator_utility: f64,
    /// Mean deviator utility under honest play.
    pub deviator_baseline: f64,
    /// Worst honest player's utility under the deviation.
    pub honest_worst: f64,
    /// That player's utility under honest play.
    pub honest_baseline: f64,
    /// Samples used.
    pub samples: usize,
}

impl DeviationRow {
    /// The deviator's gain (positive = resilience violated by this attack).
    pub fn gain(&self) -> f64 {
        self.deviator_utility - self.deviator_baseline
    }

    /// The harm inflicted on honest players (positive = immunity violated).
    pub fn harm(&self) -> f64 {
        self.honest_baseline - self.honest_worst
    }
}

/// An empirical (ε-)(k,t)-robustness report over a deviation battery.
#[derive(Debug, Clone, Default)]
pub struct RobustnessReport {
    /// One row per deviation tried.
    pub rows: Vec<DeviationRow>,
}

impl RobustnessReport {
    /// The largest deviator gain across the battery.
    pub fn max_gain(&self) -> f64 {
        self.rows.iter().map(DeviationRow::gain).fold(0.0, f64::max)
    }

    /// The largest honest harm across the battery.
    pub fn max_harm(&self) -> f64 {
        self.rows.iter().map(DeviationRow::harm).fold(0.0, f64::max)
    }

    /// Whether the battery found no ε-violating attack.
    pub fn is_eps_robust(&self, eps: f64) -> bool {
        self.max_gain() < eps + 1e-9 && self.max_harm() < eps + 1e-9
    }
}

/// Builds an empirical robustness report for a cheap-talk spec: runs the
/// honest baseline and every battery deviation (applied to `deviator`),
/// converts outcomes to game utilities under the fixed `types` draw, and
/// tabulates gains and harms.
///
/// Moves are resolved with the AH semantics when the spec carries a
/// punishment (wills) and with the spec's default actions otherwise. Actions
/// outside the game's range are passed through to the utility function —
/// the library games treat them as "something else" (zero matches), which is
/// the natural reading of an off-menu move.
pub fn cheap_talk_robustness_report(
    spec: &crate::cheap_talk::CheapTalkSpec,
    game: &BayesianGame,
    types: &[usize],
    inputs: &[Vec<Fp>],
    deviator: usize,
    samples: usize,
) -> RobustnessReport {
    let n = spec.n;
    // One validated plan; the baseline and every battery deviation are
    // seed-sweep batches of it (fanned across worker threads by run_batch).
    let plan = crate::scenario::CheapTalkPlan::from_spec(spec.clone(), inputs.to_vec());
    let runs_for = |plan: crate::scenario::CheapTalkPlan| -> Vec<(Vec<usize>, Vec<usize>)> {
        let set = plan.seeds(0..samples as u64).run_batch();
        set.outcomes()
            .map(|out| (types.to_vec(), set.profile(out)))
            .collect()
    };
    let base_u = empirical_utilities(game, &runs_for(plan.clone()));

    let mut report = RobustnessReport::default();
    for (name, behavior) in Behavior::battery() {
        let dev_runs = runs_for(plan.clone().with_deviant(deviator, behavior));
        let dev_u = empirical_utilities(game, &dev_runs);
        let honest_worst = (0..n)
            .filter(|&p| p != deviator)
            .map(|p| dev_u[p])
            .fold(f64::INFINITY, f64::min);
        let honest_baseline = (0..n)
            .filter(|&p| p != deviator)
            .map(|p| base_u[p])
            .fold(f64::INFINITY, f64::min);
        report.rows.push(DeviationRow {
            name: name.to_string(),
            deviators: vec![deviator],
            deviator_utility: dev_u[deviator],
            deviator_baseline: base_u[deviator],
            honest_worst,
            honest_baseline,
            samples,
        });
    }
    report
}

/// Per-player expected utilities of a batch [`RunSet`](crate::scenario::RunSet)
/// under `game` with the fixed `types` draw, as confidence intervals at
/// critical value `z` — the interval-carrying replacement for feeding
/// [`empirical_utilities`] point estimates into ε comparisons.
pub fn run_set_utilities_ci(
    set: &crate::scenario::RunSet,
    game: &BayesianGame,
    types: &[usize],
    z: f64,
) -> Vec<mediator_games::ConfidenceInterval> {
    mediator_games::stats::utilities_ci(game, &run_set_samples(set, types), z)
}

/// Materializes a [`RunSet`](crate::scenario::RunSet) into the
/// `(types, actions)` sample pairs the `mediator-games` statistics layer
/// consumes, in grid (kind-major, seed-minor) order — the one
/// RunSet→samples bridge both the conformance harness and
/// [`run_set_utilities_ci`] go through.
pub fn run_set_samples(
    set: &crate::scenario::RunSet,
    types: &[usize],
) -> Vec<(Vec<usize>, Vec<usize>)> {
    set.outcomes()
        .map(|out| (types.to_vec(), set.profile(out)))
        .collect()
}

/// Mean per-player utilities over `(types, actions)` samples.
pub fn empirical_utilities(game: &BayesianGame, runs: &[(Vec<usize>, Vec<usize>)]) -> Vec<f64> {
    assert!(!runs.is_empty());
    let mut acc = vec![0.0; game.n()];
    for (types, actions) in runs {
        let us = game.utilities(types, actions);
        for i in 0..game.n() {
            acc[i] += us[i];
        }
    }
    for a in &mut acc {
        *a /= runs.len() as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cheap_talk::CheapTalkSpec;
    use mediator_circuits::catalog;

    #[test]
    fn robustness_report_on_byzantine_agreement_game() {
        // n=5, k=1, t=0 robust cheap talk playing the BA game. The honest
        // profile pays 1 to everyone; the battery should show (a) bounded
        // gains for the deviator and (b) the harms each attack causes
        // (silent/crash deviations DO harm in the BA game: unanimity breaks
        // when the deviator does not move — that is a property of the game,
        // not a protocol failure; the protocol's job per Theorem 4.1 is to
        // match what the *mediator game* would yield under the same
        // deviation, which also breaks unanimity).
        let n = 5;
        let game = mediator_games::library::byzantine_agreement_game(n);
        let spec = CheapTalkSpec::theorem_4_1(
            n,
            1,
            0,
            catalog::majority_circuit(n),
            vec![vec![Fp::ZERO]; n],
            vec![0; n],
        );
        let types = vec![1usize; n];
        let inputs: Vec<Vec<Fp>> = vec![vec![Fp::ONE]; n];
        let report = cheap_talk_robustness_report(&spec, &game, &types, &inputs, 2, 4);
        assert_eq!(report.rows.len(), Behavior::battery().len());
        // The lie-opens attack must not profit: outputs are corrected.
        let lie = report.rows.iter().find(|r| r.name == "lie-opens").unwrap();
        assert!(lie.gain() <= 1e-9, "lying in openings gains {}", lie.gain());
        assert!(lie.harm() <= 1e-9, "lying in openings harms {}", lie.harm());
        // The lie-input attack flips the deviator's vote — with unanimous
        // honest inputs the majority is unchanged: no gain, no harm.
        let li = report.rows.iter().find(|r| r.name == "lie-input").unwrap();
        assert!(li.gain().abs() <= 1e-9 && li.harm() <= 1e-9);
    }

    #[test]
    fn run_set_utilities_carry_intervals() {
        // A mediator-game batch with unanimous votes: every run pays 1 to
        // everyone in the BA game, so the intervals are exact points.
        let n = 4;
        let game = mediator_games::library::byzantine_agreement_game(n);
        let set = crate::scenario::Scenario::mediator(catalog::majority_circuit(n))
            .players(n)
            .tolerance(1, 0)
            .inputs(vec![vec![Fp::ONE]; n])
            .build()
            .expect("n − k − t ≥ 1")
            .seeds(0..3)
            .run_batch();
        let cis = run_set_utilities_ci(&set, &game, &vec![1; n], 1.96);
        assert_eq!(cis.len(), n);
        for ci in &cis {
            assert!((ci.mean - 1.0).abs() < 1e-12);
            assert_eq!(ci.samples, 3);
            assert!(ci.hi - ci.lo < 1e-12);
        }
        assert_eq!(run_set_samples(&set, &vec![1; n]).len(), set.len());
    }

    #[test]
    fn battery_has_distinct_names() {
        let b = Behavior::battery();
        let names: std::collections::BTreeSet<&str> = b.iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), b.len());
    }

    #[test]
    fn row_gain_and_harm() {
        let row = DeviationRow {
            name: "x".into(),
            deviators: vec![0],
            deviator_utility: 1.55,
            deviator_baseline: 1.5,
            honest_worst: 1.1,
            honest_baseline: 1.5,
            samples: 100,
        };
        assert!((row.gain() - 0.05).abs() < 1e-12);
        assert!((row.harm() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empirical_utilities_average() {
        let (game, _) = mediator_games::library::prisoners_dilemma();
        let runs = vec![
            (vec![0, 0], vec![0, 0]), // (3,3)
            (vec![0, 0], vec![1, 1]), // (1,1)
        ];
        let us = empirical_utilities(&game, &runs);
        assert_eq!(us, vec![2.0, 2.0]);
    }

    #[test]
    fn report_robustness_threshold() {
        let mut rep = RobustnessReport::default();
        rep.rows.push(DeviationRow {
            name: "a".into(),
            deviators: vec![1],
            deviator_utility: 1.0,
            deviator_baseline: 1.0,
            honest_worst: 0.95,
            honest_baseline: 1.0,
            samples: 10,
        });
        assert!(rep.is_eps_robust(0.1));
        assert!(!rep.is_eps_robust(0.01));
    }
}
