//! Mediator games: the underlying game extended with a trusted mediator.
//!
//! The mediator is an extra simulated process (id `n`) whose strategy is an
//! arithmetic circuit, speaking the **canonical form** of §2: player `i`
//! sends `(i, 0, x_i)`; the mediator answers each round `r` with a message
//! that the player acks with `(i, r, x_i)`; the final message carries
//! `STOP` plus the action to play. The mediator waits for `n − k − t`
//! complete input sets before computing (a player that never shows up must
//! not block the game — the same rule the cheap-talk core agreement
//! enforces).
//!
//! Two mediator shapes matter for the experiments:
//!
//! * the **standard** one-round mediator (inputs → STOP(action));
//! * the §6.4 **naive** two-round mediator: round 1 privately sends the
//!   leak `a + b·i (mod 2)` and waits for *all* `n` acks — the design flaw
//!   the counterexample exploits — and only then STOPs with the action.
//!
//! `extra_rounds` inserts content-free rounds for the Lemma 6.8
//! message-count experiments.

use mediator_circuits::Circuit;
use mediator_field::Fp;
use mediator_sim::{Action, Ctx, Outcome, Process, ProcessId, SchedulerKind, World};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Wire messages of a mediator game.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MedMsg {
    /// Player → mediator: `(i, round, x_i)` of the canonical form.
    Input {
        /// The round being acked (0 = initial).
        round: u64,
        /// The player's (re-sent) input.
        value: Vec<Fp>,
    },
    /// Mediator → player: a non-STOP round, possibly carrying a payload
    /// (the §6.4 leak rides here).
    Round {
        /// Round number (1-based).
        round: u64,
        /// Private payload for the recipient.
        payload: Vec<Fp>,
    },
    /// Mediator → player: STOP with the action to play.
    Stop {
        /// The recommended/computed action.
        action: Action,
    },
    /// Deviator-to-deviator gossip (honest players never send this; the
    /// model explicitly allows bad players to talk to each other).
    Gossip {
        /// Arbitrary payload.
        payload: Vec<Fp>,
    },
}

/// Specification of a mediator game execution.
#[derive(Debug, Clone)]
pub struct MediatorGameSpec {
    /// Number of players (the mediator is process `n`).
    pub n: usize,
    /// Rational-coalition bound.
    pub k: usize,
    /// Malicious bound.
    pub t: usize,
    /// The mediator's circuit (one output wire per player = its action;
    /// for the naive §6.4 mediator the output packs `2·leak + action`).
    pub circuit: Arc<Circuit>,
    /// Default inputs for players whose input never arrives.
    pub defaults: Vec<Vec<Fp>>,
    /// §6.4 naive shape: split the output into a round-1 leak (high bits)
    /// and a STOP action (low bit), and wait for *all* n acks in between.
    pub naive_split: bool,
    /// Content-free extra rounds before STOP (Lemma 6.8 experiments).
    pub extra_rounds: u64,
    /// Wills (Aumann–Hart): action each honest player leaves in its will.
    pub wills: Option<Vec<Action>>,
}

impl MediatorGameSpec {
    /// A standard one-round mediator game.
    pub fn standard(
        n: usize,
        k: usize,
        t: usize,
        circuit: Circuit,
        defaults: Vec<Vec<Fp>>,
    ) -> Self {
        MediatorGameSpec {
            n,
            k,
            t,
            circuit: Arc::new(circuit),
            defaults,
            naive_split: false,
            extra_rounds: 0,
            wills: None,
        }
    }

    /// How many complete inputs the mediator waits for.
    pub fn wait_for(&self) -> usize {
        if self.naive_split {
            self.n // the naive design flaw: waits for everyone
        } else {
            self.n - self.k - self.t
        }
    }
}

/// The trusted mediator process (id `n`).
pub struct CircuitMediator {
    spec: MediatorGameSpec,
    inputs: BTreeMap<usize, Vec<Fp>>,
    computed: Option<Vec<Action>>, // per-player actions
    leaks: Option<Vec<Fp>>,
    round: u64,
    round_sent: u64,
    acks: BTreeMap<u64, usize>,
    stopped: bool,
}

impl CircuitMediator {
    /// Creates the mediator for `spec`.
    pub fn new(spec: MediatorGameSpec) -> Self {
        CircuitMediator {
            spec,
            inputs: BTreeMap::new(),
            computed: None,
            leaks: None,
            round: 0,
            round_sent: 0,
            acks: BTreeMap::new(),
            stopped: false,
        }
    }

    fn n(&self) -> usize {
        self.spec.n
    }

    fn try_advance(&mut self, ctx: &mut Ctx<MedMsg>) {
        if self.stopped {
            return;
        }
        // Phase 1: gather inputs.
        if self.computed.is_none() {
            if self.inputs.len() < self.spec.wait_for() {
                return;
            }
            let inputs: Vec<Vec<Fp>> = (0..self.n())
                .map(|p| {
                    self.inputs
                        .get(&p)
                        .cloned()
                        .unwrap_or_else(|| self.spec.defaults[p].clone())
                })
                .collect();
            let eval = self.spec.circuit.eval(&inputs, ctx.rng());
            let (actions, leaks) = if self.spec.naive_split {
                let mut acts = Vec::with_capacity(self.n());
                let mut lks = Vec::with_capacity(self.n());
                for p in 0..self.n() {
                    let packed = eval.outputs[p][0].as_u64();
                    acts.push(packed & 1);
                    lks.push(Fp::new(packed >> 1));
                }
                (acts, Some(lks))
            } else {
                (
                    (0..self.n()).map(|p| eval.outputs[p][0].as_u64()).collect(),
                    None,
                )
            };
            self.computed = Some(actions);
            self.leaks = leaks;
        }
        // Phase 2: intermediate rounds, each gated on a quorum of acks.
        let total_rounds = self.spec.extra_rounds + u64::from(self.spec.naive_split);
        loop {
            if self.round < total_rounds {
                let r = self.round + 1;
                if self.round_sent < r {
                    for p in 0..self.n() {
                        let payload = if self.spec.naive_split && r == 1 {
                            vec![self.leaks.as_ref().expect("leaks computed")[p]]
                        } else {
                            Vec::new()
                        };
                        ctx.send(p, MedMsg::Round { round: r, payload });
                    }
                    self.round_sent = r;
                }
                if self.acks.get(&r).copied().unwrap_or(0) >= self.round_quorum() {
                    self.round += 1;
                    continue;
                }
                return; // waiting for acks
            }
            // STOP.
            self.stopped = true;
            let actions = self.computed.as_ref().expect("computed");
            for (p, &action) in actions.iter().enumerate() {
                ctx.send(p, MedMsg::Stop { action });
            }
            ctx.halt();
            return;
        }
    }

    fn round_quorum(&self) -> usize {
        self.spec.wait_for()
    }
}

/// Honest canonical-form player in the mediator game.
pub struct HonestMedPlayer {
    /// The player's private input.
    pub input: Vec<Fp>,
    /// Will to leave at start (Aumann–Hart), if any.
    pub will: Option<Action>,
    mediator: ProcessId,
}

impl HonestMedPlayer {
    /// Creates a canonical honest player for a game with `n` players.
    pub fn new(n: usize, input: Vec<Fp>, will: Option<Action>) -> Self {
        HonestMedPlayer {
            input,
            will,
            mediator: n,
        }
    }
}

impl Process<MedMsg> for HonestMedPlayer {
    fn on_start(&mut self, ctx: &mut Ctx<MedMsg>) {
        if let Some(w) = self.will {
            ctx.set_will(w);
        }
        ctx.send(
            self.mediator,
            MedMsg::Input {
                round: 0,
                value: self.input.clone(),
            },
        );
    }

    fn on_message(&mut self, src: ProcessId, msg: MedMsg, ctx: &mut Ctx<MedMsg>) {
        if src != self.mediator {
            return; // honest players ignore non-mediator chatter
        }
        match msg {
            MedMsg::Round { round, .. } => {
                ctx.send(
                    self.mediator,
                    MedMsg::Input {
                        round,
                        value: self.input.clone(),
                    },
                );
            }
            MedMsg::Stop { action } => {
                ctx.make_move(action);
                ctx.halt();
            }
            MedMsg::Input { .. } | MedMsg::Gossip { .. } => {}
        }
    }
}

impl Process<MedMsg> for CircuitMediator {
    fn on_start(&mut self, ctx: &mut Ctx<MedMsg>) {
        self.try_advance(ctx);
    }

    fn on_message(&mut self, src: ProcessId, msg: MedMsg, ctx: &mut Ctx<MedMsg>) {
        if let MedMsg::Input { round, value } = msg {
            if src < self.n() {
                if round == 0 {
                    if value.len() == self.spec.defaults[src].len() {
                        self.inputs.entry(src).or_insert(value);
                    }
                } else {
                    *self.acks.entry(round).or_insert(0) += 1;
                }
            }
        }
        self.try_advance(ctx);
    }
}

/// Runs one mediator game. `deviants` replaces the given players' processes;
/// everyone else plays the honest canonical strategy with `inputs[p]`.
/// Returns the sim outcome (resolve moves with the spec's wills or the
/// game's default moves at the caller).
///
/// Thin, source-compatible wrapper over the builder surface
/// ([`Scenario::mediator`](crate::scenario::Scenario::mediator)), running
/// with the default starvation bound
/// ([`DEFAULT_MEDIATOR_STARVATION_BOUND`](crate::scenario::DEFAULT_MEDIATOR_STARVATION_BOUND)
/// — see that constant for why mediator games default looser than cheap
/// talk); builder callers can override it with `.starvation_bound(…)`.
/// The parity suite pins this wrapper byte-for-byte against the builder.
pub fn run_mediator_game(
    spec: &MediatorGameSpec,
    inputs: &[Vec<Fp>],
    deviants: BTreeMap<usize, Box<dyn Process<MedMsg>>>,
    kind: &SchedulerKind,
    seed: u64,
    max_steps: u64,
) -> Outcome {
    crate::scenario::MediatorPlan::from_spec(spec.clone(), inputs.to_vec())
        .max_steps(max_steps)
        .run_with_deviants(deviants, kind, seed)
}

/// Runs one mediator game under a **relaxed scheduler** (§5): messages from
/// the mediator are dropped (whole batches at a time — the all-or-none rule
/// of Lemma 6.10) after `drop_after` deliveries. This is the deadlock
/// machinery of Propositions 6.9/6.11: with the mediator's STOP batch
/// withheld, no honest player can move, and the wills (punishments) fire.
///
/// Thin wrapper over
/// [`MediatorPlan::run_relaxed`](crate::scenario::MediatorPlan::run_relaxed).
pub fn run_mediator_game_relaxed(
    spec: &MediatorGameSpec,
    inputs: &[Vec<Fp>],
    deviants: BTreeMap<usize, Box<dyn Process<MedMsg>>>,
    drop_after: u64,
    seed: u64,
    max_steps: u64,
) -> Outcome {
    crate::scenario::MediatorPlan::from_spec(spec.clone(), inputs.to_vec())
        .max_steps(max_steps)
        .run_relaxed_with_deviants(deviants, drop_after, seed)
}

pub(crate) fn build_world(
    spec: &MediatorGameSpec,
    inputs: &[Vec<Fp>],
    mut deviants: BTreeMap<usize, Box<dyn Process<MedMsg>>>,
    seed: u64,
) -> World<MedMsg> {
    let n = spec.n;
    assert_eq!(inputs.len(), n);
    let mut procs: Vec<Box<dyn Process<MedMsg>>> = Vec::with_capacity(n + 1);
    for p in 0..n {
        if let Some(d) = deviants.remove(&p) {
            procs.push(d);
        } else {
            let will = spec.wills.as_ref().map(|w| w[p]);
            procs.push(Box::new(HonestMedPlayer::new(n, inputs[p].clone(), will)));
        }
    }
    procs.push(Box::new(CircuitMediator::new(spec.clone())));
    World::new(procs, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mediator_circuits::catalog;

    fn majority_spec(n: usize) -> MediatorGameSpec {
        MediatorGameSpec::standard(
            n,
            1,
            0,
            catalog::majority_circuit(n),
            vec![vec![Fp::ZERO]; n],
        )
    }

    #[test]
    fn honest_majority_game_everyone_plays_majority() {
        let n = 5;
        let spec = majority_spec(n);
        // The mediator waits for n−k−t = 4 inputs and defaults the last to
        // 0, and *which* input arrives late depends on the scheduler (that
        // is the point of the asynchronous model). These inputs give
        // majority 1 for every 4-subset, so the outcome is scheduler-proof.
        let inputs: Vec<Vec<Fp>> = [1u64, 1, 1, 1, 0]
            .iter()
            .map(|&b| vec![Fp::new(b)])
            .collect();
        for kind in SchedulerKind::battery(n) {
            let out = run_mediator_game(&spec, &inputs, BTreeMap::new(), &kind, 7, 100_000);
            // The world has n+1 processes (the mediator never moves).
            let moves = out.resolve_default(&vec![9; n + 1]);
            assert_eq!(moves[..n], vec![1; n][..], "{kind:?}");
        }
    }

    #[test]
    fn mediator_does_not_wait_for_missing_players() {
        // One player silent: mediator waits for n−k−t = 4 inputs, fills the
        // default, and everyone else still moves.
        let n = 5;
        let spec = majority_spec(n);
        let inputs: Vec<Vec<Fp>> = vec![vec![Fp::ONE]; n];
        let mut deviants: BTreeMap<usize, Box<dyn Process<MedMsg>>> = BTreeMap::new();
        deviants.insert(2, Box::new(crate::deviations::SilentProcess));
        let out = run_mediator_game(
            &spec,
            &inputs,
            deviants,
            &SchedulerKind::Random,
            11,
            100_000,
        );
        for (p, m) in out.moves.iter().enumerate() {
            if p != 2 && p < n {
                assert_eq!(*m, Some(1), "player {p}");
            }
        }
        assert_eq!(out.moves[2], None);
    }

    #[test]
    fn naive_split_mediator_sends_leak_then_stop() {
        let n = 4;
        let mut spec =
            MediatorGameSpec::standard(n, 1, 0, catalog::counterexample_naive(n), vec![vec![]; n]);
        spec.naive_split = true;
        let inputs = vec![vec![]; n];
        let out = run_mediator_game(
            &spec,
            &inputs,
            BTreeMap::new(),
            &SchedulerKind::Random,
            3,
            100_000,
        );
        // All honest: everyone eventually moves the same bit b.
        let moves = out.moves[..n].to_vec();
        let b = moves[0].expect("moved");
        assert!(b == 0 || b == 1);
        for m in &moves {
            assert_eq!(*m, Some(b));
        }
        // And a leak round happened before STOP: 2 mediator messages per
        // player (Round + Stop).
        assert!(out.trace.sent_by(n) >= 2 * n as u64);
    }

    #[test]
    fn relaxed_scheduler_drops_stop_batch_and_wills_fire() {
        // Lemma 6.10: a relaxed scheduler deadlocks a canonical mediator
        // game exactly by withholding an entire mediator batch; the
        // all-or-none rule means no honest player moves, and the AH wills
        // (punishments) apply uniformly — the hypothesis Proposition 6.9
        // uses to price deadlocks at the punishment payoff.
        let n = 4;
        let mut spec = majority_spec(n);
        spec.wills = Some(vec![7; n]);
        let inputs: Vec<Vec<Fp>> = vec![vec![Fp::ONE]; n];
        // Let the players' inputs through, then drop everything the
        // mediator sends (its STOP batch).
        let out =
            run_mediator_game_relaxed(&spec, &inputs, BTreeMap::new(), n as u64 + 1, 3, 100_000);
        assert!(
            out.trace.dropped_count() > 0,
            "mediator batch must be dropped"
        );
        // Nobody moved; everyone's will fires — all-or-none, never a mix.
        for p in 0..n {
            assert_eq!(out.moves[p], None, "player {p} cannot move without STOP");
        }
        let resolved = out.resolve_ah(&vec![0; n + 1]);
        assert_eq!(&resolved[..n], &[7, 7, 7, 7]);
    }

    #[test]
    fn relaxed_scheduler_with_late_drop_changes_nothing() {
        // If the blackout starts after the STOP batch was delivered, the
        // run is indistinguishable from a non-relaxed one (the paper's
        // "deadlock iff no STOP delivered" characterization).
        let n = 4;
        let spec = majority_spec(n);
        let inputs: Vec<Vec<Fp>> = vec![vec![Fp::ONE]; n];
        let out = run_mediator_game_relaxed(&spec, &inputs, BTreeMap::new(), 10_000, 3, 100_000);
        for p in 0..n {
            assert_eq!(out.moves[p], Some(1));
        }
    }

    #[test]
    fn wills_are_left_when_configured() {
        let n = 4;
        let mut spec = majority_spec(n);
        spec.wills = Some(vec![7; n]);
        // Mediator never gets enough inputs: 3 players silent (wait_for=3
        // with k=1,t=0... n−k−t = 3, so make all 4 silent except one).
        let mut deviants: BTreeMap<usize, Box<dyn Process<MedMsg>>> = BTreeMap::new();
        for p in 1..n {
            deviants.insert(p, Box::new(crate::deviations::SilentProcess));
        }
        let out = run_mediator_game(
            &spec,
            &vec![vec![Fp::ONE]; n],
            deviants,
            &SchedulerKind::Random,
            5,
            100_000,
        );
        // Player 0 deadlocks; AH resolution plays its will.
        assert_eq!(out.moves[0], None);
        let resolved = out.resolve_ah(&vec![0; n + 1]);
        assert_eq!(resolved[0], 7);
    }
}
