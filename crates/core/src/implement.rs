//! Empirical implementation checking (§2's definitions, measured).
//!
//! `~σ'` implements `~σ''` when the *sets* of scheduler-induced outcome
//! distributions coincide; ε-implementation allows each side's
//! distributions to be ε-matched on the other side; weak implementation
//! drops one direction. The scheduler space is uncountable, so experiments
//! quantify over a **battery** of qualitatively distinct scheduler families
//! ([`SchedulerKind::battery`]) and estimate each family's outcome
//! distribution from seeded samples. The distances reported are therefore
//! statistical estimates — EXPERIMENTS.md records sample counts alongside.

use crate::scenario::RunSet;
use mediator_games::dist::{set_distance, weak_set_distance, OutcomeDist};
use mediator_sim::SchedulerKind;

/// Estimates one outcome distribution per scheduler kind.
///
/// `run` maps `(kind, seed)` to an action profile (already resolved for
/// infinite play). Each kind is sampled `samples` times with distinct seeds.
pub fn outcome_distributions<F>(
    kinds: &[SchedulerKind],
    samples: usize,
    mut run: F,
) -> Vec<OutcomeDist>
where
    F: FnMut(&SchedulerKind, u64) -> Vec<usize>,
{
    kinds
        .iter()
        .map(|kind| OutcomeDist::from_samples((0..samples as u64).map(|seed| run(kind, seed))))
        .collect()
}

/// The result of comparing two games' outcome-distribution sets.
#[derive(Debug, Clone)]
pub struct ImplementationReport {
    /// Symmetric set distance (implementation direction, both ways).
    pub distance: f64,
    /// One-sided distance (weak implementation: cheap-talk ⊆ mediator).
    pub weak_distance: f64,
    /// Scheduler kinds compared.
    pub kinds: usize,
    /// Samples per kind per side.
    pub samples: usize,
}

impl ImplementationReport {
    /// Whether the measured distance certifies ε-implementation (up to the
    /// battery/sampling approximation).
    pub fn eps_implements(&self, eps: f64) -> bool {
        self.distance <= eps
    }

    /// Whether the measured one-sided distance certifies weak
    /// ε-implementation.
    pub fn weakly_eps_implements(&self, eps: f64) -> bool {
        self.weak_distance <= eps
    }
}

/// Compares two batch [`RunSet`]s — typically a cheap-talk game against
/// its mediator game over the same scheduler battery, as produced by the
/// [`Scenario`](crate::scenario::Scenario) builders' `run_batch`. The
/// per-kind [`OutcomeDist`]s come built-in with the sets, so this is pure
/// distance arithmetic.
///
/// # Panics
///
/// Panics if the two sets were not run over the same battery, or with
/// different sample counts per kind (the reported `samples` — and the
/// sampling-noise floor readers derive from it — would be wrong for one
/// side).
pub fn compare_run_sets(ct: &RunSet, md: &RunSet) -> ImplementationReport {
    assert_eq!(
        ct.kinds(),
        md.kinds(),
        "run sets must share the scheduler battery"
    );
    assert_eq!(
        ct.seeds_per_kind(),
        md.seeds_per_kind(),
        "run sets must sample the same number of seeds per kind"
    );
    let c = ct.distributions();
    let m = md.distributions();
    ImplementationReport {
        distance: set_distance(&c, &m),
        weak_distance: weak_set_distance(&c, &m),
        kinds: ct.kinds().len(),
        samples: ct.seeds_per_kind(),
    }
}

/// Compares a cheap-talk game against its mediator game over a battery.
pub fn compare_implementations<F, G>(
    kinds: &[SchedulerKind],
    samples: usize,
    run_cheap_talk: F,
    run_mediator: G,
) -> ImplementationReport
where
    F: FnMut(&SchedulerKind, u64) -> Vec<usize>,
    G: FnMut(&SchedulerKind, u64) -> Vec<usize>,
{
    let ct = outcome_distributions(kinds, samples, run_cheap_talk);
    let md = outcome_distributions(kinds, samples, run_mediator);
    ImplementationReport {
        distance: set_distance(&ct, &md),
        weak_distance: weak_set_distance(&ct, &md),
        kinds: kinds.len(),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_runners_have_zero_distance() {
        let kinds = vec![SchedulerKind::Random, SchedulerKind::Fifo];
        let runner = |_k: &SchedulerKind, seed: u64| vec![(seed % 2) as usize];
        let rep = compare_implementations(&kinds, 50, runner, runner);
        assert_eq!(rep.distance, 0.0);
        assert_eq!(rep.weak_distance, 0.0);
        assert!(rep.eps_implements(0.0));
    }

    #[test]
    fn diverging_runners_are_detected() {
        let kinds = vec![SchedulerKind::Random];
        let a = |_: &SchedulerKind, _: u64| vec![0usize];
        let b = |_: &SchedulerKind, _: u64| vec![1usize];
        let rep = compare_implementations(&kinds, 20, a, b);
        assert!((rep.distance - 2.0).abs() < 1e-12);
        assert!(!rep.eps_implements(0.5));
    }

    #[test]
    fn weak_direction_is_one_sided() {
        // Cheap talk always plays 0; the mediator plays 0 or 1 depending on
        // the scheduler kind: weak implementation (⊆) holds, full does not.
        let kinds = vec![SchedulerKind::Random, SchedulerKind::Fifo];
        let ct = |_: &SchedulerKind, _: u64| vec![0usize];
        let md = |k: &SchedulerKind, _: u64| match k {
            SchedulerKind::Fifo => vec![1usize],
            _ => vec![0usize],
        };
        let rep = compare_implementations(&kinds, 20, ct, md);
        assert_eq!(rep.weak_distance, 0.0, "every CT distribution is matched");
        assert!(
            rep.distance > 1.0,
            "the mediator's Fifo distribution is unmatched"
        );
    }

    #[test]
    fn run_set_comparison_of_identical_batches_is_zero() {
        use crate::scenario::Scenario;
        use mediator_circuits::catalog;
        use mediator_field::Fp;
        let n = 5;
        let kinds = vec![SchedulerKind::Random, SchedulerKind::Fifo];
        let plan = Scenario::cheap_talk(catalog::majority_circuit(n))
            .players(n)
            .tolerance(1, 0)
            .inputs(vec![vec![Fp::ONE]; n])
            .build()
            .expect("5 > 4");
        let a = plan.battery(kinds.clone()).seeds(0..2).run_batch();
        let b = plan.battery(kinds).seeds(0..2).run_batch();
        let rep = compare_run_sets(&a, &b);
        assert_eq!(rep.distance, 0.0);
        assert_eq!(rep.weak_distance, 0.0);
        assert_eq!(rep.kinds, 2);
        assert_eq!(rep.samples, 2);
    }

    #[test]
    fn sampling_noise_stays_small_for_identical_random_sources() {
        // Two independent samplings of the same coin: distance is O(1/√N).
        let kinds = vec![SchedulerKind::Random];
        let mk = |salt: u64| {
            move |_: &SchedulerKind, seed: u64| {
                // SplitMix-ish hash → fair coin.
                let mut z = seed.wrapping_add(salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z ^= z >> 31;
                vec![(z & 1) as usize]
            }
        };
        let rep = compare_implementations(&kinds, 2000, mk(1), mk(2));
        assert!(rep.distance < 0.1, "distance {}", rep.distance);
    }
}
