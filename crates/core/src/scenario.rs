//! The Scenario API: the builder-first experiment surface of the crate.
//!
//! The paper's claims are statements about *distributions of outcomes over
//! scheduler batteries and seeds*, yet the historical entry points were
//! positional free functions — every caller hand-rolled its own seed loop,
//! scheduler loop, and aggregation. This module is the one validated,
//! batch-native surface they all go through now (the free functions
//! [`run_cheap_talk`](crate::cheap_talk::run_cheap_talk) and
//! [`run_mediator_game`](crate::mediator::run_mediator_game) survive as
//! thin wrappers, pinned by parity tests):
//!
//! * **[`Scenario`] builders** — `Scenario::cheap_talk(circuit)` /
//!   `Scenario::mediator(circuit)` with fluent `.players(n)`,
//!   `.tolerance(k, t)`, `.input(i, …)`, `.deviant(i, …)`, `.wills(…)`,
//!   `.starvation_bound(…)`, `.scheduler(…)` steps. `build()` selects the
//!   theorem regime from the configured machinery and **validates the
//!   threshold** (`n > 4k+4t` for Theorem 4.1, …), returning a typed
//!   [`ScenarioError`] instead of a downstream panic.
//! * **Batch execution plans** — `.battery(SchedulerKind::battery(n))
//!   .seeds(0..4000).run_batch()` fans the `(scheduler, seed)` grid across
//!   `std::thread` workers and returns a [`RunSet`] with built-in
//!   [`OutcomeDist`] aggregation per scheduler kind.
//! * **Steppable sessions** — `.session()` opens the identical run as a
//!   [`Session`]: `step()` one event at a time, inspect `pending()`,
//!   `inject(…)` external messages, `finish()` into the ordinary
//!   [`Outcome`]. This is the seam a future async/network backend attaches
//!   to.
//!
//! # Example
//!
//! ```
//! use mediator_core::scenario::Scenario;
//! use mediator_circuits::catalog;
//! use mediator_field::Fp;
//! use mediator_sim::SchedulerKind;
//!
//! let n = 5;
//! // Unanimous votes: the majority is scheduler-proof, so every battery
//! // member's outcome distribution is the same point mass.
//! let plan = Scenario::cheap_talk(catalog::majority_circuit(n))
//!     .players(n)
//!     .tolerance(1, 0) // Theorem 4.1: n = 5 > 4k+4t = 4 ✓
//!     .inputs(vec![vec![Fp::ONE]; n])
//!     .build()
//!     .expect("threshold satisfied");
//! let set = plan
//!     .battery(SchedulerKind::battery(n))
//!     .seeds(0..4)
//!     .run_batch();
//! for dist in set.distributions() {
//!     assert!((dist.prob(&[1; 5]) - 1.0).abs() < 1e-12);
//! }
//! ```

use crate::cheap_talk::{CheapTalkPlayer, CheapTalkSpec, CtMsg, CtVariant};
use crate::deviations::Behavior;
use crate::mediator::{build_world as build_mediator_world, MedMsg, MediatorGameSpec};
use mediator_circuits::Circuit;
use mediator_field::Fp;
use mediator_games::dist::OutcomeDist;
use mediator_sim::{Action, Outcome, Process, RelaxedScheduler, SchedulerKind, Session, World};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Default starvation bound for cheap-talk executions (inherited from the
/// shared sans-IO runner): adversarial schedulers — LIFO in particular —
/// can starve a prerequisite message behind a torrent of fresh protocol
/// traffic (a cheap-talk run moves thousands of messages), and
/// force-delivering after this many steps converts that livelock into
/// near-linear runs while leaving plenty of room for genuinely adversarial
/// reordering.
pub const DEFAULT_CHEAP_TALK_STARVATION_BOUND: u64 = mediator_sim::sansio::DEFAULT_STARVATION_BOUND;

/// Default starvation bound for mediator games. Deliberately **five times
/// looser** than the cheap-talk bound: a canonical mediator game moves only
/// O(n) messages, so there is no livelock to pace away — the backstop
/// exists purely as the model's eventual-delivery guarantee. Keeping it
/// loose lets the adversarial battery members (targeted delay, partitions)
/// withhold traffic for as long as their design intends instead of having
/// the watchdog neuter them after 2 000 steps.
pub const DEFAULT_MEDIATOR_STARVATION_BOUND: u64 = 10_000;

fn default_batch_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Tunes a world for deterministic replay when `kind` is
/// [`SchedulerKind::Replay`]: the starvation watchdog is disabled (every
/// forced delivery of the original run is already an ordinary `Delivered`
/// entry in the script, so re-deriving the watchdog would double-fire), and
/// drops are allowed exactly when the recording contains them (a relaxed
/// recording replays its blackout; an ordinary recording must not gain the
/// ability to drop).
fn tune_world_for_replay<M>(world: &mut World<M>, kind: &SchedulerKind) {
    if let SchedulerKind::Replay(script) = kind {
        world.set_starvation_bound(u64::MAX);
        if script.has_drops() {
            world.allow_drops();
        }
    }
}

/// The four cheap-talk theorem regimes and their resilience thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Theorem {
    /// Theorem 4.1 — fully robust cheap talk: `n > 4k + 4t`.
    Robust41,
    /// Theorem 4.2 — ε cheap talk (detect-and-abort): `n > 3k + 3t`.
    Epsilon42,
    /// Theorem 4.4 — punishment wills + cotermination barrier:
    /// `n > 3k + 4t`.
    Punishment44,
    /// Theorem 4.5 — ε + punishment: `n > 2k + 3t`.
    EpsilonPunishment45,
}

impl Theorem {
    /// The strict lower bound `B(k, t)`: the regime requires `n > B`.
    pub fn lower_bound(self, k: usize, t: usize) -> usize {
        match self {
            Theorem::Robust41 => 4 * k + 4 * t,
            Theorem::Epsilon42 => 3 * k + 3 * t,
            Theorem::Punishment44 => 3 * k + 4 * t,
            Theorem::EpsilonPunishment45 => 2 * k + 3 * t,
        }
    }

    /// Whether `(n, k, t)` satisfies the theorem's threshold.
    pub fn admits(self, n: usize, k: usize, t: usize) -> bool {
        n > self.lower_bound(k, t)
    }

    /// The threshold inequality, as the paper writes it.
    pub fn bound(self) -> &'static str {
        match self {
            Theorem::Robust41 => "n > 4k + 4t",
            Theorem::Epsilon42 => "n > 3k + 3t",
            Theorem::Punishment44 => "n > 3k + 4t",
            Theorem::EpsilonPunishment45 => "n > 2k + 3t",
        }
    }

    /// The theorem's number in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Theorem::Robust41 => "4.1",
            Theorem::Epsilon42 => "4.2",
            Theorem::Punishment44 => "4.4",
            Theorem::EpsilonPunishment45 => "4.5",
        }
    }
}

impl fmt::Display for Theorem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Theorem {} ({})", self.name(), self.bound())
    }
}

/// A rejected scenario: the typed build-time diagnosis that replaces the
/// downstream panics of the positional API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// `(n, k, t)` violates the selected theorem's resilience threshold.
    Threshold {
        /// The theorem regime the builder selected.
        theorem: Theorem,
        /// Configured player count.
        n: usize,
        /// Configured rational-coalition bound.
        k: usize,
        /// Configured malicious bound.
        t: usize,
    },
    /// `.players(…)` was never called (or was zero).
    NoPlayers,
    /// The mediator must be able to proceed from `n − k − t ≥ 1` inputs.
    ToleranceTooLarge {
        /// Configured player count.
        n: usize,
        /// Configured rational-coalition bound.
        k: usize,
        /// Configured malicious bound.
        t: usize,
    },
    /// A per-player argument referenced a player id `≥ n`.
    PlayerOutOfRange {
        /// Which builder step misfired.
        what: &'static str,
        /// The offending player id.
        player: usize,
        /// Configured player count.
        n: usize,
    },
    /// A vector argument had the wrong length.
    ArityMismatch {
        /// Which builder step misfired.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
}

impl ScenarioError {
    /// For [`ScenarioError::Threshold`]: the least `n` the regime admits.
    pub fn required_n(&self) -> Option<usize> {
        match self {
            ScenarioError::Threshold { theorem, k, t, .. } => Some(theorem.lower_bound(*k, *t) + 1),
            _ => None,
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Threshold { theorem, n, k, t } => write!(
                f,
                "{theorem} rejects n = {n} with k = {k}, t = {t}: need n ≥ {}",
                theorem.lower_bound(*k, *t) + 1
            ),
            ScenarioError::NoPlayers => write!(f, "scenario has no players: call .players(n)"),
            ScenarioError::ToleranceTooLarge { n, k, t } => write!(
                f,
                "mediator game needs n − k − t ≥ 1 inputs to proceed: n = {n}, k = {k}, t = {t}"
            ),
            ScenarioError::PlayerOutOfRange { what, player, n } => {
                write!(f, "{what}: player {player} out of range (n = {n})")
            }
            ScenarioError::ArityMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what}: expected length {expected}, got {got}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Entry point of the builder surface.
pub struct Scenario;

impl Scenario {
    /// Starts a cheap-talk scenario over `circuit` (the mediator being
    /// simulated). Configure with the fluent steps, then [`CheapTalk::build`].
    pub fn cheap_talk(circuit: Circuit) -> CheapTalk {
        CheapTalk {
            circuit,
            n: None,
            k: 0,
            t: 0,
            kappa: None,
            punishment: None,
            inputs_all: None,
            inputs_one: Vec::new(),
            behaviors: Vec::new(),
            defaults: None,
            default_actions: None,
            coin_seed: 0x5EED,
            starvation_bound: DEFAULT_CHEAP_TALK_STARVATION_BOUND,
            scheduler: SchedulerKind::Random,
            seed: 0,
            max_steps: 8_000_000,
            allow_sub_threshold: false,
        }
    }

    /// Starts a mediator-game scenario over `circuit` (the trusted
    /// mediator's strategy). Configure, then [`MediatorGame::build`].
    pub fn mediator(circuit: Circuit) -> MediatorGame {
        MediatorGame {
            circuit,
            n: None,
            k: 0,
            t: 0,
            naive_split: false,
            extra_rounds: 0,
            wills: None,
            inputs_all: None,
            inputs_one: Vec::new(),
            deviants: Vec::new(),
            defaults: None,
            resolve_defaults: None,
            starvation_bound: DEFAULT_MEDIATOR_STARVATION_BOUND,
            scheduler: SchedulerKind::Random,
            seed: 0,
            max_steps: 200_000,
        }
    }
}

// ---------------------------------------------------------------------------
// Cheap talk
// ---------------------------------------------------------------------------

/// Builder for a cheap-talk scenario (Theorems 4.1/4.2/4.4/4.5).
///
/// The theorem regime is selected by the machinery you configure — the same
/// four combinations the paper proves:
///
/// | ε ([`CheapTalk::epsilon`]) | wills ([`CheapTalk::wills`]) | regime |
/// |---|---|---|
/// | no  | no  | [`Theorem::Robust41`] |
/// | yes | no  | [`Theorem::Epsilon42`] |
/// | no  | yes | [`Theorem::Punishment44`] (cotermination barrier on) |
/// | yes | yes | [`Theorem::EpsilonPunishment45`] |
#[derive(Clone)]
pub struct CheapTalk {
    circuit: Circuit,
    n: Option<usize>,
    k: usize,
    t: usize,
    kappa: Option<usize>,
    punishment: Option<Vec<Action>>,
    inputs_all: Option<Vec<Vec<Fp>>>,
    inputs_one: Vec<(usize, Vec<Fp>)>,
    behaviors: Vec<(usize, Behavior)>,
    defaults: Option<Vec<Vec<Fp>>>,
    default_actions: Option<Vec<Action>>,
    coin_seed: u64,
    starvation_bound: u64,
    scheduler: SchedulerKind,
    seed: u64,
    max_steps: u64,
    allow_sub_threshold: bool,
}

impl CheapTalk {
    /// Sets the number of players.
    pub fn players(mut self, n: usize) -> Self {
        self.n = Some(n);
        self
    }

    /// Sets the tolerance pair: `k` rational deviators, `t` malicious
    /// players. The theorem threshold over `(n, k, t)` is validated by
    /// [`CheapTalk::build`].
    pub fn tolerance(mut self, k: usize, t: usize) -> Self {
        self.k = k;
        self.t = t;
        self
    }

    /// Selects the fully robust engine (the default): Theorem 4.1, or 4.4
    /// once wills are configured.
    pub fn robust(mut self) -> Self {
        self.kappa = None;
        self
    }

    /// Selects the ε engine with `kappa` cut-and-choose checks per dealer:
    /// Theorem 4.2, or 4.5 once wills are configured.
    pub fn epsilon(mut self, kappa: usize) -> Self {
        self.kappa = Some(kappa);
        self
    }

    /// Configures punishment wills (one action per player) and the
    /// cotermination barrier: Theorem 4.4, or 4.5 under the ε engine.
    pub fn wills(mut self, punishment: Vec<Action>) -> Self {
        self.punishment = Some(punishment);
        self
    }

    /// Sets player `i`'s private input (players not set fall back to the
    /// default inputs).
    pub fn input(mut self, i: usize, input: Vec<Fp>) -> Self {
        self.inputs_one.push((i, input));
        self
    }

    /// Sets every player's private input at once.
    pub fn inputs(mut self, inputs: Vec<Vec<Fp>>) -> Self {
        self.inputs_all = Some(inputs);
        self
    }

    /// Makes player `i` play the given parameterized deviation instead of
    /// the honest strategy.
    pub fn deviant(mut self, i: usize, behavior: Behavior) -> Self {
        self.behaviors.push((i, behavior));
        self
    }

    /// Overrides the default circuit inputs used for excluded players
    /// (zeroes of the circuit's per-player arity if not set).
    pub fn default_inputs(mut self, defaults: Vec<Vec<Fp>>) -> Self {
        self.defaults = Some(defaults);
        self
    }

    /// Overrides the default moves `M_i` played on abort without wills
    /// (all-zero if not set).
    pub fn default_actions(mut self, actions: Vec<Action>) -> Self {
        self.default_actions = Some(actions);
        self
    }

    /// Overrides the shared setup seed (ABA coins, detection challenges).
    pub fn coin_seed(mut self, seed: u64) -> Self {
        self.coin_seed = seed;
        self
    }

    /// Overrides the starvation bound
    /// ([`DEFAULT_CHEAP_TALK_STARVATION_BOUND`] if not set).
    pub fn starvation_bound(mut self, bound: u64) -> Self {
        self.starvation_bound = bound;
        self
    }

    /// Sets the scheduler used by single runs and sessions (batches carry
    /// their own battery). Defaults to [`SchedulerKind::Random`].
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Sets the seed used by single runs and sessions. Defaults to 0.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the step budget (livelock guard). Defaults to 8 000 000.
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Disables the build-time theorem-threshold rejection, letting the
    /// plan be constructed at a sub-threshold `(n, k, t)` point — the
    /// typed escape hatch the frontier atlas
    /// ([`crate::frontier`]) uses to deliberately build cells *below*
    /// each theorem's boundary.
    ///
    /// The default stays strict: without this call, [`CheapTalk::build`]
    /// returns [`ScenarioError::Threshold`] for any `(n, k, t)` the
    /// selected theorem does not admit. With it, the threshold check is
    /// skipped — but the plan's guarantee is void below the boundary (the
    /// lower-bound papers prove *no* protocol can restore it), and the
    /// basic sanity check `k + t < n` is still enforced via
    /// [`ScenarioError::ToleranceTooLarge`]: below that, the machinery
    /// itself (sharing degree `k + t` among `n` points) is meaningless,
    /// not merely unprotected.
    pub fn allow_sub_threshold(mut self) -> Self {
        self.allow_sub_threshold = true;
        self
    }

    /// The theorem regime the configured machinery selects.
    pub fn selected_theorem(&self) -> Theorem {
        match (self.kappa.is_some(), self.punishment.is_some()) {
            (false, false) => Theorem::Robust41,
            (true, false) => Theorem::Epsilon42,
            (false, true) => Theorem::Punishment44,
            (true, true) => Theorem::EpsilonPunishment45,
        }
    }

    /// Validates the scenario — the theorem threshold first — and produces
    /// the executable [`CheapTalkPlan`].
    pub fn build(self) -> Result<CheapTalkPlan, ScenarioError> {
        let n = self.n.filter(|&n| n > 0).ok_or(ScenarioError::NoPlayers)?;
        if self.circuit.num_players() != n {
            return Err(ScenarioError::ArityMismatch {
                what: "circuit players",
                expected: n,
                got: self.circuit.num_players(),
            });
        }
        let theorem = self.selected_theorem();
        if !theorem.admits(n, self.k, self.t) {
            if !self.allow_sub_threshold {
                return Err(ScenarioError::Threshold {
                    theorem,
                    n,
                    k: self.k,
                    t: self.t,
                });
            }
            // The hatch waives the theorem guarantee, not basic sense:
            // a sharing degree of k + t needs strictly more points.
            if self.k + self.t >= n {
                return Err(ScenarioError::ToleranceTooLarge {
                    n,
                    k: self.k,
                    t: self.t,
                });
            }
        }
        let arity = self.circuit.inputs_per_player().to_vec();
        let defaults = match self.defaults {
            Some(d) => {
                if d.len() != n {
                    return Err(ScenarioError::ArityMismatch {
                        what: "default inputs",
                        expected: n,
                        got: d.len(),
                    });
                }
                d
            }
            None => arity.iter().map(|&a| vec![Fp::ZERO; a]).collect(),
        };
        let default_actions = match self.default_actions {
            Some(a) if a.len() != n => {
                return Err(ScenarioError::ArityMismatch {
                    what: "default actions",
                    expected: n,
                    got: a.len(),
                });
            }
            Some(a) => a,
            None => vec![0; n],
        };
        if let Some(p) = &self.punishment {
            if p.len() != n {
                return Err(ScenarioError::ArityMismatch {
                    what: "wills",
                    expected: n,
                    got: p.len(),
                });
            }
        }
        let mut inputs = match self.inputs_all {
            Some(i) => {
                if i.len() != n {
                    return Err(ScenarioError::ArityMismatch {
                        what: "inputs",
                        expected: n,
                        got: i.len(),
                    });
                }
                i
            }
            None => defaults.clone(),
        };
        for (p, input) in self.inputs_one {
            if p >= n {
                return Err(ScenarioError::PlayerOutOfRange {
                    what: "input",
                    player: p,
                    n,
                });
            }
            inputs[p] = input;
        }
        for (p, input) in inputs.iter().enumerate() {
            if input.len() != arity[p] {
                return Err(ScenarioError::ArityMismatch {
                    what: "player input arity",
                    expected: arity[p],
                    got: input.len(),
                });
            }
        }
        let mut behaviors = BTreeMap::new();
        for (p, b) in self.behaviors {
            if p >= n {
                return Err(ScenarioError::PlayerOutOfRange {
                    what: "deviant",
                    player: p,
                    n,
                });
            }
            behaviors.insert(p, b);
        }
        let barrier = self.punishment.is_some();
        let spec = CheapTalkSpec {
            n,
            k: self.k,
            t: self.t,
            variant: match self.kappa {
                None => CtVariant::Robust,
                Some(kappa) => CtVariant::Epsilon { kappa },
            },
            circuit: Arc::new(self.circuit),
            coin_seed: self.coin_seed,
            defaults,
            punishment: self.punishment,
            default_actions,
            barrier,
        };
        Ok(CheapTalkPlan {
            spec,
            inputs,
            behaviors,
            scheduler: self.scheduler,
            seed: self.seed,
            max_steps: self.max_steps,
            starvation_bound: self.starvation_bound,
        })
    }
}

/// A validated, executable cheap-talk scenario.
///
/// Cloneable and `Sync`: one plan fans out across however many runs,
/// sessions, and worker threads the experiment needs.
#[derive(Debug, Clone)]
pub struct CheapTalkPlan {
    spec: CheapTalkSpec,
    inputs: Vec<Vec<Fp>>,
    behaviors: BTreeMap<usize, Behavior>,
    scheduler: SchedulerKind,
    seed: u64,
    max_steps: u64,
    starvation_bound: u64,
}

impl CheapTalkPlan {
    /// Adopts a pre-validated [`CheapTalkSpec`] (the escape hatch the
    /// source-compatible free-function wrappers go through — **no theorem
    /// threshold check happens here**; use [`Scenario::cheap_talk`] for the
    /// validated path).
    pub fn from_spec(spec: CheapTalkSpec, inputs: Vec<Vec<Fp>>) -> Self {
        assert_eq!(inputs.len(), spec.n);
        CheapTalkPlan {
            spec,
            inputs,
            behaviors: BTreeMap::new(),
            scheduler: SchedulerKind::Random,
            seed: 0,
            max_steps: 8_000_000,
            starvation_bound: DEFAULT_CHEAP_TALK_STARVATION_BOUND,
        }
    }

    /// The validated spec.
    pub fn spec(&self) -> &CheapTalkSpec {
        &self.spec
    }

    /// The resolved per-player inputs.
    pub fn inputs(&self) -> &[Vec<Fp>] {
        &self.inputs
    }

    /// Replaces the whole deviation map.
    pub fn with_behaviors(mut self, behaviors: BTreeMap<usize, Behavior>) -> Self {
        self.behaviors = behaviors;
        self
    }

    /// Adds (or replaces) one player's deviation.
    pub fn with_deviant(mut self, p: usize, behavior: Behavior) -> Self {
        assert!(p < self.spec.n, "deviant {p} out of range");
        self.behaviors.insert(p, behavior);
        self
    }

    /// Overrides the single-run scheduler.
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Overrides the single-run seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the step budget.
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Overrides the starvation bound.
    pub fn starvation_bound(mut self, bound: u64) -> Self {
        self.starvation_bound = bound;
        self
    }

    fn build_world(&self, seed: u64) -> World<CtMsg> {
        let n = self.spec.n;
        let procs: Vec<Box<dyn Process<CtMsg>>> = (0..n)
            .map(|p| {
                let b = self.behaviors.get(&p).cloned().unwrap_or_default();
                Box::new(CheapTalkPlayer::with_behavior(
                    self.spec.clone(),
                    p,
                    self.inputs[p].clone(),
                    b,
                )) as Box<dyn Process<CtMsg>>
            })
            .collect();
        let mut world = World::new(procs, seed);
        world.set_starvation_bound(self.starvation_bound);
        world
    }

    /// Runs once with the configured scheduler and seed.
    pub fn run(&self) -> Outcome {
        self.run_with(&self.scheduler, self.seed)
    }

    /// Runs once with an explicit scheduler kind and seed. A
    /// [`SchedulerKind::Replay`] kind re-enacts a recorded run: the
    /// watchdog is disabled and drops are enabled iff the script has them.
    pub fn run_with(&self, kind: &SchedulerKind, seed: u64) -> Outcome {
        let mut world = self.build_world(seed);
        tune_world_for_replay(&mut world, kind);
        let mut sched = kind.build();
        world.run(sched.as_mut(), self.max_steps)
    }

    /// Opens the configured run as a steppable [`Session`].
    pub fn session(&self) -> Session<CtMsg> {
        self.session_with(&self.scheduler, self.seed)
    }

    /// Opens a steppable [`Session`] with an explicit scheduler and seed.
    pub fn session_with(&self, kind: &SchedulerKind, seed: u64) -> Session<CtMsg> {
        let mut world = self.build_world(seed);
        tune_world_for_replay(&mut world, kind);
        Session::new(world, kind.build(), self.max_steps)
    }

    /// Starts a batch over the given scheduler battery (seeds default to
    /// the plan's single seed until [`Batch::seeds`] widens them).
    pub fn battery(&self, kinds: Vec<SchedulerKind>) -> Batch<CheapTalkPlan> {
        Batch::new(self.clone()).battery(kinds)
    }

    /// Starts a batch over the given seeds (scheduler battery defaults to
    /// the plan's single scheduler until [`Batch::battery`] widens it).
    pub fn seeds(&self, seeds: impl IntoIterator<Item = u64>) -> Batch<CheapTalkPlan> {
        Batch::new(self.clone()).seeds(seeds)
    }

    /// Runs the equilibrium conformance harness over this plan: every
    /// coalition of size ≤ `cfg.k` plays every generated adversary-plane
    /// strategy across the scheduler battery × seed grid, utilities are
    /// accounted with confidence intervals against the honest baseline
    /// under `game`/`types`, and the report's verdict states whether the
    /// plan is ε-k-resilient within the statistical bound — or exhibits a
    /// concrete witnessing deviation. See
    /// [`adversary`](crate::adversary) for the strategy grammar.
    pub fn conformance(
        &self,
        game: &mediator_games::BayesianGame,
        types: &[usize],
        cfg: &crate::adversary::Conformance,
    ) -> crate::adversary::ConformanceReport {
        crate::adversary::cheap_talk_conformance(self, game, types, cfg)
    }
}

impl BatchRun for CheapTalkPlan {
    fn run_one(&self, kind: &SchedulerKind, seed: u64) -> Outcome {
        self.run_with(kind, seed)
    }

    fn players(&self) -> usize {
        self.spec.n
    }

    fn default_scheduler(&self) -> SchedulerKind {
        self.scheduler.clone()
    }

    fn default_seed(&self) -> u64 {
        self.seed
    }

    fn resolve_mode(&self) -> Resolve {
        // The paper's two infinite-play semantics: wills (Aumann–Hart)
        // when the spec carries a punishment, default moves otherwise.
        if self.spec.punishment.is_some() {
            Resolve::Ah(self.spec.default_actions.clone())
        } else {
            Resolve::Default(self.spec.default_actions.clone())
        }
    }
}

// ---------------------------------------------------------------------------
// Mediator games
// ---------------------------------------------------------------------------

/// A deviant-process factory: batches need a fresh process per run, so
/// deviants are registered as closures rather than boxed instances.
pub type DeviantFactory = Arc<dyn Fn() -> Box<dyn Process<MedMsg>> + Send + Sync>;

/// Builder for a mediator-game scenario (the canonical form of §2,
/// including the §6.4 naive two-round shape).
#[derive(Clone)]
pub struct MediatorGame {
    circuit: Circuit,
    n: Option<usize>,
    k: usize,
    t: usize,
    naive_split: bool,
    extra_rounds: u64,
    wills: Option<Vec<Action>>,
    inputs_all: Option<Vec<Vec<Fp>>>,
    inputs_one: Vec<(usize, Vec<Fp>)>,
    deviants: Vec<(usize, DeviantFactory)>,
    defaults: Option<Vec<Vec<Fp>>>,
    resolve_defaults: Option<Vec<Action>>,
    starvation_bound: u64,
    scheduler: SchedulerKind,
    seed: u64,
    max_steps: u64,
}

impl MediatorGame {
    /// Sets the number of players (the mediator is process `n` on top).
    pub fn players(mut self, n: usize) -> Self {
        self.n = Some(n);
        self
    }

    /// Sets the tolerance pair `(k, t)`; the mediator waits for
    /// `n − k − t` complete inputs before computing.
    pub fn tolerance(mut self, k: usize, t: usize) -> Self {
        self.k = k;
        self.t = t;
        self
    }

    /// Selects the §6.4 naive two-round shape: a private leak round that
    /// waits for *all* `n` acks before the STOP.
    pub fn naive_split(mut self) -> Self {
        self.naive_split = true;
        self
    }

    /// Inserts content-free rounds before STOP (Lemma 6.8 experiments).
    pub fn extra_rounds(mut self, rounds: u64) -> Self {
        self.extra_rounds = rounds;
        self
    }

    /// Configures the Aumann–Hart wills each honest player leaves at start.
    pub fn wills(mut self, wills: Vec<Action>) -> Self {
        self.wills = Some(wills);
        self
    }

    /// Sets player `i`'s private input.
    pub fn input(mut self, i: usize, input: Vec<Fp>) -> Self {
        self.inputs_one.push((i, input));
        self
    }

    /// Sets every player's private input at once.
    pub fn inputs(mut self, inputs: Vec<Vec<Fp>>) -> Self {
        self.inputs_all = Some(inputs);
        self
    }

    /// Replaces player `i` with a deviant process. The factory is invoked
    /// once per run, so batches get a fresh process each time.
    pub fn deviant(
        mut self,
        i: usize,
        factory: impl Fn() -> Box<dyn Process<MedMsg>> + Send + Sync + 'static,
    ) -> Self {
        self.deviants.push((i, Arc::new(factory)));
        self
    }

    /// Overrides the default inputs for players whose input never arrives
    /// (zeroes of the circuit's per-player arity if not set).
    pub fn default_inputs(mut self, defaults: Vec<Vec<Fp>>) -> Self {
        self.defaults = Some(defaults);
        self
    }

    /// Sets the fallback actions (one per player) used when a [`RunSet`]
    /// resolves outcomes of players that never moved and left no will.
    /// Defaults to all-zero.
    pub fn resolve_defaults(mut self, actions: Vec<Action>) -> Self {
        self.resolve_defaults = Some(actions);
        self
    }

    /// Overrides the starvation bound
    /// ([`DEFAULT_MEDIATOR_STARVATION_BOUND`] if not set; see that constant
    /// for why mediator games default looser than cheap talk).
    pub fn starvation_bound(mut self, bound: u64) -> Self {
        self.starvation_bound = bound;
        self
    }

    /// Sets the scheduler used by single runs and sessions.
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Sets the seed used by single runs and sessions.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the step budget. Defaults to 200 000 (mediator games are
    /// O(n)-message affairs).
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Validates the scenario and produces the executable [`MediatorPlan`].
    pub fn build(self) -> Result<MediatorPlan, ScenarioError> {
        let n = self.n.filter(|&n| n > 0).ok_or(ScenarioError::NoPlayers)?;
        if self.circuit.num_players() != n {
            return Err(ScenarioError::ArityMismatch {
                what: "circuit players",
                expected: n,
                got: self.circuit.num_players(),
            });
        }
        if self.k + self.t >= n {
            return Err(ScenarioError::ToleranceTooLarge {
                n,
                k: self.k,
                t: self.t,
            });
        }
        let arity = self.circuit.inputs_per_player().to_vec();
        let defaults = match self.defaults {
            Some(d) => {
                if d.len() != n {
                    return Err(ScenarioError::ArityMismatch {
                        what: "default inputs",
                        expected: n,
                        got: d.len(),
                    });
                }
                d
            }
            None => arity.iter().map(|&a| vec![Fp::ZERO; a]).collect(),
        };
        if let Some(w) = &self.wills {
            if w.len() != n {
                return Err(ScenarioError::ArityMismatch {
                    what: "wills",
                    expected: n,
                    got: w.len(),
                });
            }
        }
        let resolve_defaults = match self.resolve_defaults {
            Some(a) if a.len() != n => {
                return Err(ScenarioError::ArityMismatch {
                    what: "resolve defaults",
                    expected: n,
                    got: a.len(),
                });
            }
            Some(a) => a,
            None => vec![0; n],
        };
        let mut inputs = match self.inputs_all {
            Some(i) => {
                if i.len() != n {
                    return Err(ScenarioError::ArityMismatch {
                        what: "inputs",
                        expected: n,
                        got: i.len(),
                    });
                }
                i
            }
            None => defaults.clone(),
        };
        for (p, input) in self.inputs_one {
            if p >= n {
                return Err(ScenarioError::PlayerOutOfRange {
                    what: "input",
                    player: p,
                    n,
                });
            }
            inputs[p] = input;
        }
        // The mediator accepts an input iff its arity matches the player's
        // default (mediator.rs `on_message`): reject the mismatch here
        // instead of letting the input be silently ignored downstream.
        for (p, input) in inputs.iter().enumerate() {
            if input.len() != defaults[p].len() {
                return Err(ScenarioError::ArityMismatch {
                    what: "player input arity",
                    expected: defaults[p].len(),
                    got: input.len(),
                });
            }
        }
        for (p, f) in &self.deviants {
            let _ = f;
            if *p >= n {
                return Err(ScenarioError::PlayerOutOfRange {
                    what: "deviant",
                    player: *p,
                    n,
                });
            }
        }
        let spec = MediatorGameSpec {
            n,
            k: self.k,
            t: self.t,
            circuit: Arc::new(self.circuit),
            defaults,
            naive_split: self.naive_split,
            extra_rounds: self.extra_rounds,
            wills: self.wills,
        };
        Ok(MediatorPlan {
            spec,
            inputs,
            deviants: self.deviants,
            resolve_defaults,
            starvation_bound: self.starvation_bound,
            scheduler: self.scheduler,
            seed: self.seed,
            max_steps: self.max_steps,
        })
    }
}

/// A validated, executable mediator-game scenario.
#[derive(Clone)]
pub struct MediatorPlan {
    spec: MediatorGameSpec,
    inputs: Vec<Vec<Fp>>,
    deviants: Vec<(usize, DeviantFactory)>,
    resolve_defaults: Vec<Action>,
    starvation_bound: u64,
    scheduler: SchedulerKind,
    seed: u64,
    max_steps: u64,
}

impl fmt::Debug for MediatorPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MediatorPlan")
            .field("spec", &self.spec)
            .field("inputs", &self.inputs)
            .field(
                "deviants",
                &self.deviants.iter().map(|(p, _)| p).collect::<Vec<_>>(),
            )
            .field("resolve_defaults", &self.resolve_defaults)
            .field("starvation_bound", &self.starvation_bound)
            .field("scheduler", &self.scheduler)
            .field("seed", &self.seed)
            .field("max_steps", &self.max_steps)
            .finish()
    }
}

impl MediatorPlan {
    /// Adopts a pre-validated [`MediatorGameSpec`] (the escape hatch the
    /// source-compatible free-function wrappers go through; no validation).
    pub fn from_spec(spec: MediatorGameSpec, inputs: Vec<Vec<Fp>>) -> Self {
        assert_eq!(inputs.len(), spec.n);
        let resolve_defaults = vec![0; spec.n];
        MediatorPlan {
            spec,
            inputs,
            deviants: Vec::new(),
            resolve_defaults,
            starvation_bound: DEFAULT_MEDIATOR_STARVATION_BOUND,
            scheduler: SchedulerKind::Random,
            seed: 0,
            max_steps: 200_000,
        }
    }

    /// The validated spec.
    pub fn spec(&self) -> &MediatorGameSpec {
        &self.spec
    }

    /// The resolved per-player inputs.
    pub fn inputs(&self) -> &[Vec<Fp>] {
        &self.inputs
    }

    /// Adds a deviant factory (see [`MediatorGame::deviant`]).
    pub fn with_deviant(
        mut self,
        i: usize,
        factory: impl Fn() -> Box<dyn Process<MedMsg>> + Send + Sync + 'static,
    ) -> Self {
        assert!(i < self.spec.n, "deviant {i} out of range");
        self.deviants.push((i, Arc::new(factory)));
        self
    }

    /// Overrides the step budget.
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Overrides the starvation bound.
    pub fn starvation_bound(mut self, bound: u64) -> Self {
        self.starvation_bound = bound;
        self
    }

    /// Overrides the single-run scheduler.
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Overrides the single-run seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn make_deviants(&self) -> BTreeMap<usize, Box<dyn Process<MedMsg>>> {
        self.deviants.iter().map(|(p, f)| (*p, f())).collect()
    }

    /// Runs once with the configured scheduler and seed.
    pub fn run(&self) -> Outcome {
        self.run_with(&self.scheduler, self.seed)
    }

    /// Runs once with an explicit scheduler kind and seed.
    pub fn run_with(&self, kind: &SchedulerKind, seed: u64) -> Outcome {
        self.run_with_deviants(self.make_deviants(), kind, seed)
    }

    /// Runs once with explicit (non-factory) deviant processes — the path
    /// the by-value [`run_mediator_game`](crate::mediator::run_mediator_game)
    /// wrapper takes.
    pub fn run_with_deviants(
        &self,
        deviants: BTreeMap<usize, Box<dyn Process<MedMsg>>>,
        kind: &SchedulerKind,
        seed: u64,
    ) -> Outcome {
        let mut world = build_mediator_world(&self.spec, &self.inputs, deviants, seed);
        world.set_starvation_bound(self.starvation_bound);
        tune_world_for_replay(&mut world, kind);
        let mut sched = kind.build();
        world.run(sched.as_mut(), self.max_steps)
    }

    /// Runs once under a **relaxed scheduler** (§5): the mediator's
    /// messages are dropped — whole batches at a time, the all-or-none rule
    /// of Lemma 6.10 — after `drop_after` deliveries. No starvation bound
    /// applies: force-delivering withheld messages would contradict the
    /// blackout a relaxed environment is allowed to impose.
    pub fn run_relaxed(&self, drop_after: u64, seed: u64) -> Outcome {
        self.run_relaxed_with_deviants(self.make_deviants(), drop_after, seed)
    }

    /// The explicit-deviants variant of [`MediatorPlan::run_relaxed`].
    pub fn run_relaxed_with_deviants(
        &self,
        deviants: BTreeMap<usize, Box<dyn Process<MedMsg>>>,
        drop_after: u64,
        seed: u64,
    ) -> Outcome {
        let mediator = self.spec.n;
        let mut world = build_mediator_world(&self.spec, &self.inputs, deviants, seed);
        world.allow_drops();
        let mut sched = RelaxedScheduler::new(vec![mediator], drop_after);
        world.run(&mut sched, self.max_steps)
    }

    /// Opens the configured run as a steppable [`Session`].
    pub fn session(&self) -> Session<MedMsg> {
        self.session_with(&self.scheduler, self.seed)
    }

    /// Opens a steppable [`Session`] with an explicit scheduler and seed.
    pub fn session_with(&self, kind: &SchedulerKind, seed: u64) -> Session<MedMsg> {
        let mut world = build_mediator_world(&self.spec, &self.inputs, self.make_deviants(), seed);
        world.set_starvation_bound(self.starvation_bound);
        tune_world_for_replay(&mut world, kind);
        Session::new(world, kind.build(), self.max_steps)
    }

    /// Starts a batch over the given scheduler battery.
    pub fn battery(&self, kinds: Vec<SchedulerKind>) -> Batch<MediatorPlan> {
        Batch::new(self.clone()).battery(kinds)
    }

    /// Starts a batch over the given seeds.
    pub fn seeds(&self, seeds: impl IntoIterator<Item = u64>) -> Batch<MediatorPlan> {
        Batch::new(self.clone()).seeds(seeds)
    }

    /// Runs the equilibrium conformance harness over this mediator game:
    /// every coalition of size ≤ `cfg.k` is wired as a gossip clique under
    /// every generated collusion rule (plus message-level tamper
    /// strategies), and the report's verdict states ε-k-resilience within
    /// the statistical bound or a concrete witnessing deviation — the
    /// generated form of the §6.4 counterexample. See
    /// [`adversary`](crate::adversary).
    pub fn conformance(
        &self,
        game: &mediator_games::BayesianGame,
        types: &[usize],
        cfg: &crate::adversary::Conformance,
    ) -> crate::adversary::ConformanceReport {
        crate::adversary::mediator_conformance(self, game, types, cfg)
    }
}

impl BatchRun for MediatorPlan {
    fn run_one(&self, kind: &SchedulerKind, seed: u64) -> Outcome {
        self.run_with(kind, seed)
    }

    fn players(&self) -> usize {
        self.spec.n
    }

    fn default_scheduler(&self) -> SchedulerKind {
        self.scheduler.clone()
    }

    fn default_seed(&self) -> u64 {
        self.seed
    }

    fn resolve_mode(&self) -> Resolve {
        // The world has n+1 processes (the mediator never moves): pad the
        // per-player fallbacks with a zero for it.
        let mut fallback = self.resolve_defaults.clone();
        fallback.push(0);
        if self.spec.wills.is_some() {
            Resolve::Ah(fallback)
        } else {
            Resolve::Default(fallback)
        }
    }
}

// ---------------------------------------------------------------------------
// Batches and run sets
// ---------------------------------------------------------------------------

/// A plan that can open any `(scheduler, seed)` cell as a steppable
/// [`Session`] — the seam the transport plane attaches to. Implemented by
/// [`CheapTalkPlan`] and [`MediatorPlan`].
///
/// The `mediator-net` service runtime is generic over this trait: it calls
/// [`SessionPlan::open_session`] once per hosted game (inside the pump's
/// worker thread, because [`Process`]es need not be `Send` — the same rule
/// the batch runner follows) and uses [`SessionPlan::processes`] as the
/// number of `(session-id, player-id)` routes a networked run must attach
/// before pumping begins.
pub trait SessionPlan: Clone + Send + Sync + 'static {
    /// The message type the plan's processes exchange.
    type Msg: Send + 'static;

    /// Opens the `(kind, seed)` cell as a steppable [`Session`].
    fn open_session(&self, kind: &SchedulerKind, seed: u64) -> Session<Self::Msg>;

    /// Number of processes in the opened world — the game players plus,
    /// for mediator games, the mediator itself.
    fn processes(&self) -> usize;
}

impl SessionPlan for CheapTalkPlan {
    type Msg = CtMsg;

    fn open_session(&self, kind: &SchedulerKind, seed: u64) -> Session<CtMsg> {
        self.session_with(kind, seed)
    }

    fn processes(&self) -> usize {
        self.spec.n
    }
}

impl SessionPlan for MediatorPlan {
    type Msg = MedMsg;

    fn open_session(&self, kind: &SchedulerKind, seed: u64) -> Session<MedMsg> {
        self.session_with(kind, seed)
    }

    fn processes(&self) -> usize {
        // The mediator is process `n` on top of the n players.
        self.spec.n + 1
    }
}

/// A plan that can execute one `(scheduler, seed)` cell of a batch grid.
/// Implemented by [`CheapTalkPlan`] and [`MediatorPlan`].
pub trait BatchRun: Clone + Sync {
    /// Runs one cell.
    fn run_one(&self, kind: &SchedulerKind, seed: u64) -> Outcome;
    /// Number of game players (mediator excluded).
    fn players(&self) -> usize;
    /// The plan's configured single-run scheduler.
    fn default_scheduler(&self) -> SchedulerKind;
    /// The plan's configured single-run seed.
    fn default_seed(&self) -> u64;
    /// How the resulting [`RunSet`] resolves infinite play.
    fn resolve_mode(&self) -> Resolve;

    /// Starts a batch over this plan (the generic entry the conformance
    /// harness uses; the concrete plans also expose `.battery(…)` /
    /// `.seeds(…)` shortcuts).
    fn batch(&self) -> Batch<Self>
    where
        Self: Sized,
    {
        Batch::new(self.clone())
    }
}

/// A batch execution plan: a scheduler battery × a seed range, fanned
/// across worker threads by [`Batch::run_batch`].
pub struct Batch<P> {
    plan: P,
    kinds: Option<Vec<SchedulerKind>>,
    seeds: Option<Vec<u64>>,
    threads: Option<usize>,
}

impl<P: BatchRun> Batch<P> {
    fn new(plan: P) -> Self {
        Batch {
            plan,
            kinds: None,
            seeds: None,
            threads: None,
        }
    }

    /// Sets the scheduler battery (defaults to the plan's single
    /// scheduler).
    pub fn battery(mut self, kinds: Vec<SchedulerKind>) -> Self {
        self.kinds = Some(kinds);
        self
    }

    /// Sets the seeds (defaults to the plan's single seed).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = Some(seeds.into_iter().collect());
        self
    }

    /// Caps the worker threads (defaults to the machine's available
    /// parallelism; `1` forces a fully sequential batch).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Runs the whole grid and aggregates into a [`RunSet`].
    ///
    /// Each cell is an independent deterministic world, so the set is
    /// byte-identical whatever the thread count — the parity suite pins
    /// `threads(1)` against the default.
    ///
    /// # Panics
    ///
    /// Panics on an explicitly empty battery or seed list: a zero-cell
    /// grid would silently aggregate nothing (every distribution missing),
    /// which always indicates a mis-computed experiment range.
    pub fn run_batch(self) -> RunSet {
        let kinds = self
            .kinds
            .unwrap_or_else(|| vec![self.plan.default_scheduler()]);
        let seeds = self.seeds.unwrap_or_else(|| vec![self.plan.default_seed()]);
        assert!(!kinds.is_empty(), "run_batch: empty scheduler battery");
        assert!(!seeds.is_empty(), "run_batch: empty seed list");
        let threads = self.threads.unwrap_or_else(default_batch_threads);
        let jobs: Vec<(SchedulerKind, u64)> = kinds
            .iter()
            .flat_map(|k| seeds.iter().map(move |&s| (k.clone(), s)))
            .collect();
        let outcomes = run_grid(&jobs, threads, |kind, seed| self.plan.run_one(kind, seed));
        let runs = jobs
            .into_iter()
            .zip(outcomes)
            .map(|((kind, seed), outcome)| RunRecord {
                kind,
                seed,
                outcome,
            })
            .collect();
        RunSet {
            runs,
            kinds,
            seeds_per_kind: seeds.len(),
            players: self.plan.players(),
            resolve: self.plan.resolve_mode(),
        }
    }
}

/// Executes every job, in job order, across `threads` workers.
fn run_grid<F>(jobs: &[(SchedulerKind, u64)], threads: usize, run: F) -> Vec<Outcome>
where
    F: Fn(&SchedulerKind, u64) -> Outcome + Sync,
{
    let threads = threads.clamp(1, jobs.len().max(1));
    if threads == 1 {
        return jobs.iter().map(|(k, s)| run(k, *s)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Outcome>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let (kind, seed) = &jobs[i];
                let outcome = run(kind, *seed);
                *slots[i].lock().expect("batch slot poisoned") = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("batch slot poisoned")
                .expect("every job ran")
        })
        .collect()
}

/// How a [`RunSet`] resolves players that never moved (the paper's two
/// infinite-play semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolve {
    /// Default-move approach: `M_i` fires.
    Default(Vec<Action>),
    /// Aumann–Hart approach: the will fires, then the fallback.
    Ah(Vec<Action>),
}

impl Resolve {
    /// Resolves one outcome into the first `players` action indices.
    pub fn profile(&self, outcome: &Outcome, players: usize) -> Vec<usize> {
        let resolved = match self {
            Resolve::Default(d) => outcome.resolve_default(d),
            Resolve::Ah(f) => outcome.resolve_ah(f),
        };
        resolved[..players].iter().map(|&a| a as usize).collect()
    }
}

/// One cell of a batch grid: which scheduler, which seed, what happened.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Scheduler family of this run.
    pub kind: SchedulerKind,
    /// Master seed of this run.
    pub seed: u64,
    /// The run's outcome.
    pub outcome: Outcome,
}

/// The aggregated result of [`Batch::run_batch`]: every outcome of the
/// `(scheduler, seed)` grid, in kind-major, seed-minor order, with
/// built-in [`OutcomeDist`] estimation per scheduler kind.
#[derive(Debug, Clone)]
pub struct RunSet {
    runs: Vec<RunRecord>,
    kinds: Vec<SchedulerKind>,
    seeds_per_kind: usize,
    players: usize,
    resolve: Resolve,
}

impl RunSet {
    /// All runs, kind-major then seed order.
    pub fn runs(&self) -> &[RunRecord] {
        &self.runs
    }

    /// Total number of runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// `true` when no runs were executed.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The scheduler battery, in distribution order.
    pub fn kinds(&self) -> &[SchedulerKind] {
        &self.kinds
    }

    /// Seeds sampled per scheduler kind.
    pub fn seeds_per_kind(&self) -> usize {
        self.seeds_per_kind
    }

    /// Number of game players in each resolved profile.
    pub fn players(&self) -> usize {
        self.players
    }

    /// Resolves one outcome with the set's infinite-play semantics.
    pub fn profile(&self, outcome: &Outcome) -> Vec<usize> {
        self.resolve.profile(outcome, self.players)
    }

    /// Iterates `(kind, runs-of-that-kind)` groups.
    pub fn by_kind(&self) -> impl Iterator<Item = (&SchedulerKind, &[RunRecord])> {
        self.kinds
            .iter()
            .zip(self.runs.chunks(self.seeds_per_kind.max(1)))
    }

    /// The estimated outcome distribution of each scheduler kind, in
    /// [`RunSet::kinds`] order — the objects §2's implementation
    /// definitions quantify over.
    pub fn distributions(&self) -> Vec<OutcomeDist> {
        self.by_kind()
            .map(|(_, chunk)| {
                OutcomeDist::from_samples(chunk.iter().map(|r| self.profile(&r.outcome)))
            })
            .collect()
    }

    /// The pooled distribution over every run of the set.
    pub fn pooled(&self) -> OutcomeDist {
        OutcomeDist::from_samples(self.runs.iter().map(|r| self.profile(&r.outcome)))
    }

    /// Iterates every outcome.
    pub fn outcomes(&self) -> impl Iterator<Item = &Outcome> {
        self.runs.iter().map(|r| &r.outcome)
    }

    /// Mean messages sent per run.
    pub fn mean_messages(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs
            .iter()
            .map(|r| r.outcome.messages_sent as f64)
            .sum::<f64>()
            / self.runs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mediator_circuits::catalog;
    use mediator_sim::TerminationKind;

    fn majority_plan(n: usize) -> CheapTalkPlan {
        Scenario::cheap_talk(catalog::majority_circuit(n))
            .players(n)
            .tolerance(1, 0)
            .inputs(vec![vec![Fp::ONE]; n])
            .build()
            .expect("n = 5 > 4")
    }

    #[test]
    fn threshold_validation_is_typed() {
        let err = Scenario::cheap_talk(catalog::majority_circuit(4))
            .players(4)
            .tolerance(1, 0)
            .build()
            .expect_err("n = 4 = 4k+4t violates Theorem 4.1");
        assert_eq!(
            err,
            ScenarioError::Threshold {
                theorem: Theorem::Robust41,
                n: 4,
                k: 1,
                t: 0
            }
        );
        assert_eq!(err.required_n(), Some(5));
        // The same (n, k, t) is fine under the ε regime (n > 3).
        assert!(Scenario::cheap_talk(catalog::majority_circuit(4))
            .players(4)
            .tolerance(1, 0)
            .epsilon(2)
            .build()
            .is_ok());
    }

    #[test]
    fn theorem_selection_follows_machinery() {
        let b = Scenario::cheap_talk(catalog::majority_circuit(6)).players(6);
        assert_eq!(b.clone().selected_theorem(), Theorem::Robust41);
        assert_eq!(b.clone().epsilon(2).selected_theorem(), Theorem::Epsilon42);
        assert_eq!(
            b.clone().wills(vec![5; 6]).selected_theorem(),
            Theorem::Punishment44
        );
        assert_eq!(
            b.epsilon(2).wills(vec![5; 6]).selected_theorem(),
            Theorem::EpsilonPunishment45
        );
    }

    #[test]
    fn default_inputs_derive_from_circuit_arity() {
        let plan = majority_plan(5);
        assert_eq!(plan.inputs().len(), 5);
        let no_input = Scenario::cheap_talk(catalog::counterexample_minfo(5))
            .players(5)
            .tolerance(1, 0)
            .build()
            .expect("threshold fine");
        assert!(no_input.inputs().iter().all(Vec::is_empty));
    }

    #[test]
    fn arity_errors_are_reported() {
        let err = Scenario::cheap_talk(catalog::majority_circuit(5))
            .players(5)
            .tolerance(1, 0)
            .input(0, vec![Fp::ONE, Fp::ONE])
            .build()
            .expect_err("two inputs for a one-input player");
        assert!(matches!(
            err,
            ScenarioError::ArityMismatch {
                what: "player input arity",
                expected: 1,
                got: 2
            }
        ));
        let err = Scenario::cheap_talk(catalog::majority_circuit(5))
            .players(5)
            .tolerance(1, 0)
            .deviant(7, Behavior::default())
            .build()
            .expect_err("deviant out of range");
        assert!(matches!(
            err,
            ScenarioError::PlayerOutOfRange {
                what: "deviant",
                player: 7,
                n: 5
            }
        ));
    }

    #[test]
    fn batch_is_thread_count_invariant() {
        let plan = majority_plan(5);
        let sequential = plan.seeds(0..4).threads(1).run_batch();
        let parallel = plan.seeds(0..4).threads(4).run_batch();
        assert_eq!(sequential.len(), parallel.len());
        for (a, b) in sequential.runs().iter().zip(parallel.runs()) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.outcome.fingerprint(), b.outcome.fingerprint());
        }
    }

    #[test]
    fn run_set_aggregates_distributions() {
        let plan = majority_plan(5);
        let set = plan
            .battery(vec![SchedulerKind::Random, SchedulerKind::Fifo])
            .seeds(0..3)
            .run_batch();
        assert_eq!(set.len(), 6);
        assert_eq!(set.seeds_per_kind(), 3);
        let dists = set.distributions();
        assert_eq!(dists.len(), 2);
        for d in &dists {
            assert!((d.prob(&[1; 5]) - 1.0).abs() < 1e-12, "unanimous majority");
        }
        assert!((set.pooled().prob(&[1; 5]) - 1.0).abs() < 1e-12);
        assert!(set.mean_messages() > 0.0);
    }

    #[test]
    fn session_is_steppable_and_matches_run() {
        let plan = majority_plan(5);
        let closed = plan.run_with(&SchedulerKind::Fifo, 3);
        let mut session = plan.session_with(&SchedulerKind::Fifo, 3);
        assert_eq!(session.pending().len(), 5, "five start signals");
        let mut stepped = 0u64;
        while !session.step().is_done() {
            stepped += 1;
        }
        assert_eq!(stepped, closed.steps);
        let open = session.finish();
        assert_eq!(open.fingerprint(), closed.fingerprint());
    }

    #[test]
    fn mediator_plan_runs_and_resolves() {
        let n = 5;
        let plan = Scenario::mediator(catalog::majority_circuit(n))
            .players(n)
            .tolerance(1, 0)
            .inputs(vec![vec![Fp::ONE]; n])
            .build()
            .expect("tolerance fine");
        let out = plan.run_with(&SchedulerKind::Random, 7);
        assert_eq!(out.termination, TerminationKind::Quiescent);
        let set = plan.seeds(0..3).threads(2).run_batch();
        assert!((set.pooled().prob(&[1; 5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mediator_from_spec_batches_resolve_without_panicking() {
        // The from_spec escape hatch must leave a usable resolver: the
        // mediator world has n+1 processes and the mediator never moves.
        let n = 4;
        let spec = MediatorGameSpec::standard(
            n,
            1,
            0,
            catalog::majority_circuit(n),
            vec![vec![Fp::ZERO]; n],
        );
        let plan = MediatorPlan::from_spec(spec, vec![vec![Fp::ONE]; n]);
        let set = plan.seeds(0..2).threads(1).run_batch();
        assert!((set.pooled().prob(&[1; 4]) - 1.0).abs() < 1e-12);
        assert_eq!(set.distributions().len(), 1);
    }

    #[test]
    fn mediator_input_arity_is_validated() {
        let err = Scenario::mediator(catalog::majority_circuit(5))
            .players(5)
            .tolerance(1, 0)
            .input(0, vec![Fp::ONE, Fp::ONE])
            .build()
            .expect_err("two inputs for a one-input player");
        assert!(matches!(
            err,
            ScenarioError::ArityMismatch {
                what: "player input arity",
                expected: 1,
                got: 2
            }
        ));
    }

    #[test]
    fn mediator_tolerance_is_validated() {
        let err = Scenario::mediator(catalog::majority_circuit(4))
            .players(4)
            .tolerance(2, 2)
            .build()
            .expect_err("k + t = n leaves no quorum");
        assert_eq!(err, ScenarioError::ToleranceTooLarge { n: 4, k: 2, t: 2 });
    }
}
