//! Lemma 6.8: the minimally-informative mediator transform and its
//! scheduler-class counting.
//!
//! The transform `f(σ + σ_d)` makes the mediator reveal *only* the action
//! (plus round numbers): the repaired §6.4 circuit is
//! [`mediator_circuits::catalog::counterexample_minfo`], and the mediator
//! game shape (R content-free rounds then STOP) is what
//! [`MediatorGameSpec::extra_rounds`](crate::mediator::MediatorGameSpec)
//! provides. This module computes the paper's combinatorial quantities:
//!
//! * message patterns of length ≤ 4rn: at most `(4rn)·(4rn)!/(r!)^{2n}`;
//! * scheduler equivalence classes: at most `(2rn)·(4rn)·(4rn)!/(r!)^{2n}`;
//! * the least `R` with `(Rn)! ≥ classes` (the paper shows
//!   `R = (4rn)^{4rn}` always suffices);
//! * message costs: `2Rn` for exact implementation (the `2^{O(N log N)}`
//!   of Lemma 6.8) versus `n` for weak implementation.
//!
//! Exact values use [`BigUint`]; `log₂` variants use Stirling so tables can
//! extend beyond exact-arithmetic comfort.

use mediator_field::BigUint;
use mediator_sim::{Trace, TraceEvent};
use std::collections::BTreeSet;

/// The `∼`-equivalence data of a run (proof of Lemma 6.8): the ordered
/// message pattern plus the set of messages left undelivered. Two
/// deterministic schedulers are equivalent iff they induce the same
/// pattern class against the fixed honest strategies.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatternClass {
    /// Ordered environment-visible events, paper notation.
    pub events: Vec<String>,
    /// Messages sent but never delivered `(src, dst, k)`.
    pub undelivered: BTreeSet<(usize, usize, u64)>,
}

/// Extracts the pattern class of a recorded trace.
pub fn pattern_class(trace: &Trace) -> PatternClass {
    let mut sent = BTreeSet::new();
    let mut events = Vec::new();
    for e in trace.events() {
        events.push(e.to_string());
        match *e {
            TraceEvent::Sent { src, dst, k } => {
                sent.insert((src, dst, k));
            }
            TraceEvent::Delivered { src, dst, k } | TraceEvent::Dropped { src, dst, k } => {
                sent.remove(&(src, dst, k));
            }
            TraceEvent::Started { .. } => {}
        }
    }
    PatternClass {
        events,
        undelivered: sent,
    }
}

/// Counts the distinct pattern classes among a set of traces — the
/// empirical companion to [`scheduler_classes`].
pub fn distinct_classes<'a>(traces: impl IntoIterator<Item = &'a Trace>) -> usize {
    traces
        .into_iter()
        .map(pattern_class)
        .collect::<BTreeSet<_>>()
        .len()
}

/// ln Γ(x) by the Lanczos approximation (g=7, n=9), accurate to ~1e-13 —
/// enough for table-grade `log₂ n!`.
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.9999999999998099,
        676.5203681218851,
        -1259.1392167224028,
        771.3234287776531,
        -176.6150291621406,
        12.507343278686905,
        -0.13857109526572012,
        9.984369578019572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `log₂(m!)`.
pub fn log2_factorial(m: u64) -> f64 {
    ln_gamma(m as f64 + 1.0) / std::f64::consts::LN_2
}

/// `log₂` of the message-pattern count bound `(4rn)·(4rn)!/(r!)^{2n}`
/// (proof of Lemma 6.8).
pub fn log2_message_patterns(r: u64, n: u64) -> f64 {
    let m = 4 * r * n;
    (m as f64).log2() + log2_factorial(m) - 2.0 * n as f64 * log2_factorial(r)
}

/// `log₂` of the scheduler-equivalence-class bound
/// `(2rn)·(4rn)·(4rn)!/(r!)^{2n}`.
pub fn log2_scheduler_classes(r: u64, n: u64) -> f64 {
    (2.0 * r as f64 * n as f64).log2() + log2_message_patterns(r, n)
}

/// Exact scheduler-equivalence-class bound (small parameters only).
pub fn scheduler_classes(r: u64, n: u64) -> BigUint {
    let m = 4 * r * n;
    let num = BigUint::factorial(m).mul_u64(m).mul_u64(2 * r * n);
    let den = BigUint::factorial(r).pow(2 * n);
    num.div(&den)
}

/// The least `R` with `(R·n)! ≥ classes(r, n)`, found by scanning with the
/// Stirling estimate and confirming exactly when feasible.
pub fn min_rounds(r: u64, n: u64) -> u64 {
    let target = log2_scheduler_classes(r, n);
    let mut lo = 1u64;
    let mut hi = 2u64;
    while log2_factorial(hi * n) < target {
        hi *= 2;
        if hi > 1 << 40 {
            break;
        }
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if log2_factorial(mid * n) >= target {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Messages of the exact implementation: `2Rn` (Lemma 6.8's
/// `2^{O(N log N)}` with `N = rn`).
pub fn full_implementation_messages(r: u64, n: u64) -> u64 {
    2 * min_rounds(r, n) * n
}

/// Messages of the weak implementation: `n` (each player sends one input).
pub fn weak_implementation_messages(n: u64) -> u64 {
    n
}

/// The paper's closed-form sufficient round count `R = (4rn)^{4rn}`, in
/// `log₂` (it overflows everything else immediately).
pub fn paper_sufficient_rounds_log2(r: u64, n: u64) -> f64 {
    let m = 4 * r * n;
    m as f64 * (m as f64).log2()
}

/// One row of the Lemma 6.8 table (experiment E8).
#[derive(Debug, Clone)]
pub struct MinInfoRow {
    /// Mediator rounds `r` of the original game.
    pub r: u64,
    /// Players.
    pub n: u64,
    /// `log₂` of the scheduler-class bound.
    pub classes_log2: f64,
    /// The least sufficient `R`.
    pub min_r: u64,
    /// Exact-implementation message count `2Rn`.
    pub full_messages: u64,
    /// Weak-implementation message count `n`.
    pub weak_messages: u64,
}

/// Builds the E8 table over a parameter grid.
pub fn min_info_table(grid: &[(u64, u64)]) -> Vec<MinInfoRow> {
    grid.iter()
        .map(|&(r, n)| MinInfoRow {
            r,
            n,
            classes_log2: log2_scheduler_classes(r, n),
            min_r: min_rounds(r, n),
            full_messages: full_implementation_messages(r, n),
            weak_messages: weak_implementation_messages(n),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_factorial_matches_exact() {
        for m in [1u64, 2, 5, 10, 20, 50, 100] {
            let exact = BigUint::factorial(m).log2();
            let approx = log2_factorial(m);
            assert!(
                (exact - approx).abs() < 1e-6 * exact.max(1.0),
                "m={m}: {exact} vs {approx}"
            );
        }
    }

    #[test]
    fn exact_and_stirling_class_counts_agree() {
        for (r, n) in [(1u64, 2u64), (1, 3), (2, 2), (2, 3)] {
            let exact = scheduler_classes(r, n).log2();
            let approx = log2_scheduler_classes(r, n);
            assert!(
                (exact - approx).abs() < 1e-3 * exact.max(1.0),
                "r={r} n={n}: {exact} vs {approx}"
            );
        }
    }

    #[test]
    fn min_rounds_is_minimal() {
        for (r, n) in [(1u64, 2u64), (1, 4), (2, 3)] {
            let big_r = min_rounds(r, n);
            let target = log2_scheduler_classes(r, n);
            assert!(log2_factorial(big_r * n) >= target);
            if big_r > 1 {
                assert!(log2_factorial((big_r - 1) * n) < target, "r={r} n={n}");
            }
        }
    }

    #[test]
    fn paper_bound_dominates_min_rounds() {
        for (r, n) in [(1u64, 2u64), (2, 3), (3, 4)] {
            let ours = (min_rounds(r, n) as f64).log2();
            let paper = paper_sufficient_rounds_log2(r, n);
            assert!(paper >= ours, "paper's R must be sufficient");
        }
    }

    #[test]
    fn full_vs_weak_gap_grows() {
        // Lemma 6.8's headline contrast: the exact implementation needs
        // enough rounds to cover every scheduler class (2Rn messages, with
        // the paper's crude sufficient R giving the 2^{O(N log N)} bound),
        // while the weak implementation sends n messages, full stop.
        let rows = min_info_table(&[(1, 4), (2, 4), (4, 4), (8, 4)]);
        for w in rows.windows(2) {
            assert!(w[1].full_messages > w[0].full_messages);
            assert_eq!(w[1].weak_messages, 4);
        }
        let last = rows.last().unwrap();
        assert!(last.full_messages > 10 * last.weak_messages);
        // The paper's closed-form R is astronomically above the minimal R:
        // log2((4rn)^{4rn}) vs log2(min R).
        let paper = paper_sufficient_rounds_log2(8, 4);
        let ours = (last.min_r as f64).log2();
        assert!(paper > 100.0 * ours, "paper {paper} vs minimal {ours}");
    }

    #[test]
    fn pattern_classes_distinguish_schedulers_and_respect_determinism() {
        use crate::mediator::{run_mediator_game, MediatorGameSpec};
        use mediator_circuits::catalog;
        use mediator_field::Fp;
        use mediator_sim::SchedulerKind;
        use std::collections::BTreeMap;

        let n = 4;
        let spec = MediatorGameSpec::standard(
            n,
            1,
            0,
            catalog::majority_circuit(n),
            vec![vec![Fp::ZERO]; n],
        );
        let inputs = vec![vec![Fp::ONE]; n];
        let run = |kind: &SchedulerKind, seed| {
            run_mediator_game(&spec, &inputs, BTreeMap::new(), kind, seed, 100_000).trace
        };
        // Determinism: same kind + seed → same class.
        let a = run(&SchedulerKind::Fifo, 7);
        let b = run(&SchedulerKind::Fifo, 7);
        assert_eq!(pattern_class(&a), pattern_class(&b));
        // FIFO and LIFO schedule the same protocol differently.
        let c = run(&SchedulerKind::Lifo, 7);
        assert_ne!(pattern_class(&a), pattern_class(&c));
        // Distinct classes over the battery are counted empirically.
        let traces: Vec<_> = SchedulerKind::battery(n)
            .iter()
            .map(|k| run(k, 7))
            .collect();
        let distinct = distinct_classes(traces.iter());
        assert!(distinct >= 2, "battery must exhibit multiple classes");
        // Undelivered messages in a quiescent run can only be ones addressed
        // to a process that had already halted (the world discards those —
        // here, late player inputs to the stopped mediator).
        for t in &traces {
            for &(_, dst, _) in &pattern_class(t).undelivered {
                assert_eq!(dst, n, "only the halted mediator may strand messages");
            }
        }
    }

    #[test]
    fn pattern_class_records_undelivered_messages() {
        use mediator_sim::{Trace, TraceEvent};
        let mut t = Trace::new();
        t.push_event(TraceEvent::Sent {
            src: 0,
            dst: 1,
            k: 1,
        });
        t.push_event(TraceEvent::Sent {
            src: 0,
            dst: 1,
            k: 2,
        });
        t.push_event(TraceEvent::Delivered {
            src: 0,
            dst: 1,
            k: 1,
        });
        let class = pattern_class(&t);
        assert_eq!(class.undelivered.len(), 1);
        assert!(class.undelivered.contains(&(0, 1, 2)));
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(5) = 24.
        assert!((ln_gamma(5.0) - (24.0f64).ln()).abs() < 1e-10);
        // Γ(0.5) = √π.
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }
}
