//! Plain-text tables for the experiment harness.

use std::fmt;

/// A printable experiment table (rendered as GitHub-flavoured markdown).
#[derive(Debug, Clone)]
pub struct Table {
    /// Title line.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity doesn't match the headers.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "\n## {}\n", self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let render = |cells: &[String], f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "|")?;
            for (c, w) in cells.iter().zip(&widths) {
                write!(f, " {c:w$} |")?;
            }
            writeln!(f)
        };
        render(&self.headers, f)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<1$}|", "", w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            render(row, f)?;
        }
        Ok(())
    }
}

/// Formats a float with 4 significant decimals.
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a boolean as a check/cross.
pub fn check(b: bool) -> String {
    if b {
        "✓".into()
    } else {
        "✗".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("Demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| a | bb |"));
        assert!(s.contains("| 1 | 2  |"));
        assert!(s.contains("|---|"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn helpers() {
        assert_eq!(f4(1.0 / 3.0), "0.3333");
        assert_eq!(check(true), "✓");
        assert_eq!(check(false), "✗");
    }
}
