//! The lower-bound frontier atlas: a machine-checked map of where each
//! cheap-talk theorem holds and where it breaks.
//!
//! The paper's four theorems come with sharp thresholds — 4.1 `n > 4k+4t`,
//! 4.2 `n > 3k+3t`, 4.4 `n > 3k+4t`, 4.5 `n > 2k+3t` — and the companion
//! lower-bound papers (Abraham–Dolev–Halpern 2008; Geffner–Halpern 2021)
//! prove them tight. This module turns the conformance harness into a
//! cartographer of that fact: it enumerates an `(n, k, t)` grid straddling
//! each theorem's boundary and classifies every cell by *experiment*, not
//! by assertion.
//!
//! A cell's experiment depends on which side of the line it sits, mirroring
//! how tightness is actually proved:
//!
//! * **Above the boundary** (the theorem admits `(n, k, t)`) the cell runs
//!   the theorem's own construction — the cheap-talk plan in that regime
//!   over the Byzantine-agreement game — through the generated
//!   coalition-strategy battery. The upper bound is certified by the
//!   harness finding no deviation gaining more than ε:
//!   [`CellClass::Resilient`].
//! * **Below the boundary** the guarantee is void and the lower bound is
//!   certified the way lower bounds are: by exhibiting a concrete game and
//!   mediator where a coalition profits. The cell records that the strict
//!   [`Scenario`] builder *rejects* the point
//!   ([`ScenarioError::Threshold`]), that the typed
//!   [`CheapTalk::allow_sub_threshold`](crate::scenario::CheapTalk::allow_sub_threshold)
//!   escape hatch deliberately constructs it anyway, and then runs the
//!   §6.4 companion — the naive two-round mediator over the
//!   counterexample game, which generalizes to every `n ≥ 4` — until the
//!   harness rediscovers the paper's deadlock collusion:
//!   [`CellClass::Violated`], with a concrete replayable
//!   [`DeviationWitness`].
//!
//! The result renders as a deterministic `FRONTIER.json` artifact
//! ([`FrontierAtlas::to_json`]: hand-rolled, stable key order, every float
//! carried both as `{:.6}` and as its exact `f64::to_bits` hex), and
//! [`FrontierAtlas::check`] machine-checks that the empirical boundary
//! coincides with the theorem predicate cell for cell.
//!
//! Budgeting: each cell samples `seeds × battery` runs, so a verdict can
//! come back [`CellClass::Inconclusive`] when an interval straddles ε —
//! more seeds shrink the interval at linear cost. A spec carries an
//! explicit [`FrontierSpec::inconclusive_budget`]; the shipped grids spend
//! enough seeds per cell (and pair all comparisons with common random
//! numbers) that the budget is zero.

use mediator_circuits::catalog;
use mediator_field::Fp;
use mediator_games::library;
use mediator_games::BayesianGame;
use mediator_sim::SchedulerKind;

use crate::adversary::{Conformance, ConformanceReport, ConformanceVerdict, DeviationWitness};
use crate::scenario::{CheapTalkPlan, MediatorPlan, Scenario, ScenarioError, Theorem};

/// The ⊥ action of the §6.4 counterexample game, as the mediator's action
/// alphabet encodes it.
pub const BOT: u64 = library::BOTTOM as u64;

/// All four theorem regimes, in paper order — the canonical band order of
/// the shipped grids.
pub const ALL_THEOREMS: [Theorem; 4] = [
    Theorem::Robust41,
    Theorem::Epsilon42,
    Theorem::Punishment44,
    Theorem::EpsilonPunishment45,
];

/// Resolves a theorem from its paper number (`"4.1"`, `"4.2"`, `"4.4"`,
/// `"4.5"`) — the inverse of [`Theorem::name`], used by the trace-store
/// witness recipes to rebuild a cell from persisted metadata.
pub fn theorem_by_name(name: &str) -> Option<Theorem> {
    ALL_THEOREMS.iter().copied().find(|t| t.name() == name)
}

// ---------------------------------------------------------------------------
// Grid grammar
// ---------------------------------------------------------------------------

/// One theorem's slice of the grid: inclusive `k` and `t` ranges, and an
/// inclusive range of *offsets* from the theorem's bound. A `(k, t, off)`
/// combination denotes the cell `n = B(k, t) + off`, so `off ≤ 0` is below
/// the boundary (the theorem requires `n > B`) and `off ≥ 1` above —
/// "straddling" is spelled directly in the grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TheoremBand {
    /// The theorem regime this band maps.
    pub theorem: Theorem,
    /// Inclusive rational-coalition range.
    pub k: (usize, usize),
    /// Inclusive malicious range.
    pub t: (usize, usize),
    /// Inclusive offset range around the bound (`n = B(k, t) + offset`).
    pub offsets: (i64, i64),
}

impl TheoremBand {
    /// A band over the given inclusive ranges.
    ///
    /// # Panics
    ///
    /// Panics if any range is inverted.
    pub fn new(
        theorem: Theorem,
        k: (usize, usize),
        t: (usize, usize),
        offsets: (i64, i64),
    ) -> Self {
        assert!(k.0 <= k.1, "inverted k range {k:?}");
        assert!(t.0 <= t.1, "inverted t range {t:?}");
        assert!(offsets.0 <= offsets.1, "inverted offset range {offsets:?}");
        TheoremBand {
            theorem,
            k,
            t,
            offsets,
        }
    }

    /// Enumerates the band's cells in deterministic lexicographic
    /// `(k, t, offset)` order. A combination whose `B(k, t) + offset`
    /// falls below 1 player denotes no cell and is skipped; everything
    /// else appears exactly once.
    pub fn cells(&self) -> Vec<FrontierCell> {
        let mut out = Vec::new();
        for k in self.k.0..=self.k.1 {
            for t in self.t.0..=self.t.1 {
                for off in self.offsets.0..=self.offsets.1 {
                    let n = self.theorem.lower_bound(k, t) as i64 + off;
                    if n < 1 {
                        continue;
                    }
                    out.push(FrontierCell {
                        theorem: self.theorem,
                        n: n as usize,
                        k,
                        t,
                    });
                }
            }
        }
        out
    }
}

/// One grid cell: a theorem regime at a concrete `(n, k, t)` point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrontierCell {
    /// The theorem whose boundary this cell probes.
    pub theorem: Theorem,
    /// Player count.
    pub n: usize,
    /// Rational-coalition bound.
    pub k: usize,
    /// Malicious bound.
    pub t: usize,
}

impl FrontierCell {
    /// The theorem's strict bound `B(k, t)` at this cell's tolerances.
    pub fn bound(&self) -> usize {
        self.theorem.lower_bound(self.k, self.t)
    }

    /// The theorem predicate: whether the regime admits this `(n, k, t)`.
    pub fn admits(&self) -> bool {
        self.theorem.admits(self.n, self.k, self.t)
    }

    /// Stable identifier (`thm4.1-n7-k2-t0`) — the atlas JSON key and the
    /// witness store's per-cell session label.
    pub fn key(&self) -> String {
        format!(
            "thm{}-n{}-k{}-t{}",
            self.theorem.name(),
            self.n,
            self.k,
            self.t
        )
    }
}

/// A full grid specification: the bands plus the per-cell sampling budget.
///
/// The two seed knobs trade wall clock against `Inconclusive` risk: every
/// conformance interval shrinks as `1/√seeds`, and a cell is undecidable
/// exactly when some interval straddles ε. The binding case on admitted
/// cells is a timing-sensitive deviation (`abort-at-round` under the
/// random scheduler) that loses on some seeds and breaks even on others:
/// with exactly one losing seed out of `N`, the gain samples are one `−1`
/// among zeros and the interval's upper bound is `(z − 1)/N ≈ 0.96/N` —
/// so certifying `ε = 0.05` needs `N ≥ 20` cheap-talk seeds even though
/// the true gain is never positive. The shipped grids use 24. Companion
/// cells need `≥ 16` for the opposite reason: the §6.4 gain averages a
/// fair coin, so its interval needs the samples to clear `ε` from above.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierSpec {
    /// Grid name, echoed in the artifact (`fast`, `full`, `tiny`).
    pub name: String,
    /// The per-theorem bands, in render order.
    pub bands: Vec<TheoremBand>,
    /// Seeds per scheduler kind on admitted (cheap-talk) cells.
    pub ct_seeds: u64,
    /// Seeds per scheduler kind on sub-threshold (companion) cells.
    pub med_seeds: u64,
    /// The ε bar certified on admitted cells.
    pub eps_upper: f64,
    /// The ε bar the companion attack must clear on sub-threshold cells.
    pub eps_lower: f64,
    /// Cut-and-choose checks per dealer for the ε-engine regimes.
    pub kappa: usize,
    /// How many `Inconclusive` cells [`FrontierAtlas::check`] tolerates.
    pub inconclusive_budget: usize,
}

impl FrontierSpec {
    /// The CI fast grid: every theorem at `k = 2, t = 0`, one to two cells
    /// on each side of its boundary (Theorem 4.5's band starts at its
    /// bound because the counterexample game needs `n ≥ 4`). 11 cells;
    /// regenerates in seconds in release mode and byte-matches the
    /// checked-in golden.
    pub fn fast() -> Self {
        FrontierSpec {
            name: "fast".to_string(),
            bands: vec![
                TheoremBand::new(Theorem::Robust41, (2, 2), (0, 0), (-1, 1)),
                TheoremBand::new(Theorem::Epsilon42, (2, 2), (0, 0), (-1, 1)),
                TheoremBand::new(Theorem::Punishment44, (2, 2), (0, 0), (-1, 1)),
                TheoremBand::new(Theorem::EpsilonPunishment45, (2, 2), (0, 0), (0, 1)),
            ],
            ct_seeds: 24,
            med_seeds: 16,
            eps_upper: 0.05,
            eps_lower: 0.01,
            kappa: 2,
            inconclusive_budget: 0,
        }
    }

    /// The wide grid (`--frontier` without `--fast`): `k ∈ {2, 3}` and a
    /// deeper sub-threshold shelf. Meant for the sharded plane.
    pub fn full() -> Self {
        FrontierSpec {
            name: "full".to_string(),
            bands: vec![
                TheoremBand::new(Theorem::Robust41, (2, 3), (0, 0), (-2, 1)),
                TheoremBand::new(Theorem::Epsilon42, (2, 3), (0, 0), (-2, 1)),
                TheoremBand::new(Theorem::Punishment44, (2, 3), (0, 0), (-2, 1)),
                TheoremBand::new(Theorem::EpsilonPunishment45, (2, 3), (0, 0), (0, 1)),
            ],
            ct_seeds: 24,
            med_seeds: 24,
            eps_upper: 0.05,
            eps_lower: 0.01,
            kappa: 2,
            inconclusive_budget: 0,
        }
    }

    /// A three-cell grid for debug-mode test suites: the §6.4 cell
    /// (Theorem 4.1 at `n = 7, k = 2`), plus Theorem 4.5 on both sides of
    /// its boundary (`n = 4` violated, `n = 5` resilient). Covers both
    /// experiment kinds and both classes at minimal wall clock.
    pub fn tiny() -> Self {
        FrontierSpec {
            name: "tiny".to_string(),
            bands: vec![
                TheoremBand::new(Theorem::Robust41, (2, 2), (0, 0), (-1, -1)),
                TheoremBand::new(Theorem::EpsilonPunishment45, (2, 2), (0, 0), (0, 1)),
            ],
            ct_seeds: 2,
            med_seeds: 16,
            eps_upper: 0.05,
            eps_lower: 0.01,
            kappa: 2,
            inconclusive_budget: 0,
        }
    }

    /// Enumerates the whole grid: bands in spec order, each band in its
    /// deterministic `(k, t, offset)` order.
    pub fn cells(&self) -> Vec<FrontierCell> {
        self.bands.iter().flat_map(TheoremBand::cells).collect()
    }
}

// ---------------------------------------------------------------------------
// Per-cell experiment construction
// ---------------------------------------------------------------------------

/// Build-time evidence recorded for every cell: what the strict builder
/// said, and what the escape hatch said.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellEvidence {
    /// The strict builder's verdict: `"ok"` above the boundary,
    /// `"rejected(required_n=N)"` below it.
    pub strict_build: String,
    /// The [`allow_sub_threshold`](crate::scenario::CheapTalk::allow_sub_threshold)
    /// verdict: `"-"` above the boundary (the hatch is not engaged),
    /// `"ok"` when the sub-threshold plan constructs, otherwise the
    /// builder error.
    pub hatch_build: String,
}

/// The executable half of a prepared cell.
pub enum CellExperiment {
    /// Admitted cell: the regime's certification plan over the BA game.
    CheapTalk {
        /// The certification plan at the cell's `(n, k, t)` (see
        /// [`certification`] for the 4.4 engine substitution).
        plan: CheapTalkPlan,
        /// The engine label recorded in the artifact
        /// (`cheap-talk:robust`, `cheap-talk:eps`, …).
        label: &'static str,
        /// The Byzantine-agreement game scoring it.
        game: BayesianGame,
        /// Player types (initial bits).
        types: Vec<usize>,
        /// The sweep configuration.
        conf: Conformance,
    },
    /// Sub-threshold cell: the §6.4 companion (naive mediator over the
    /// counterexample game at this `n`).
    Companion {
        /// The naive two-round mediator plan.
        plan: MediatorPlan,
        /// The counterexample game.
        game: BayesianGame,
        /// Player types (complete information: all zero).
        types: Vec<usize>,
        /// The sweep configuration (deadlock collusion enabled).
        conf: Conformance,
    },
    /// No experiment applies (e.g. the companion needs `n ≥ 4` and a
    /// coalition of two): the cell can only come back `Inconclusive`.
    Undecidable {
        /// Why no experiment exists for this cell.
        reason: String,
    },
}

/// A cell with its build evidence and its experiment, ready to execute
/// locally ([`run_frontier_local`]) or over the sharded plane.
pub struct PreparedCell {
    /// The cell.
    pub cell: FrontierCell,
    /// Build-time evidence.
    pub evidence: CellEvidence,
    /// The runnable experiment.
    pub experiment: CellExperiment,
}

/// The theorem's own construction at a cell: the regime's cheap-talk plan
/// over the majority circuit with unanimous-one inputs. `hatch` engages
/// the sub-threshold escape hatch.
pub fn construction(
    cell: &FrontierCell,
    spec: &FrontierSpec,
    hatch: bool,
) -> Result<CheapTalkPlan, ScenarioError> {
    let n = cell.n;
    let mut b = Scenario::cheap_talk(catalog::majority_circuit(n))
        .players(n)
        .tolerance(cell.k, cell.t)
        .inputs(vec![vec![Fp::ONE]; n]);
    match cell.theorem {
        Theorem::Robust41 => {}
        Theorem::Epsilon42 => b = b.epsilon(spec.kappa),
        Theorem::Punishment44 => b = b.wills(vec![0; n]),
        Theorem::EpsilonPunishment45 => b = b.epsilon(spec.kappa).wills(vec![0; n]),
    }
    if hatch {
        b = b.allow_sub_threshold();
    }
    b.build()
}

/// The plan that *certifies* an admitted cell, plus its engine label for
/// the artifact.
///
/// For Theorems 4.1, 4.2 and 4.5 this is [`construction`] — the theorem's
/// own regime is runnable everywhere its predicate admits. Theorem 4.4 is
/// the exception in this reproduction: its engine reuses the robust MPC
/// core (which requires `n > 4(k + t)` at run time), strictly more than
/// 4.4's `n > 3k + 4t` bound, so admitted cells in the gap are certified
/// by the ε+punishment engine at the same `(n, k, t)` — the conformance
/// harness's verdict is statistical (ε-bounded) either way, and the cell
/// records which engine certified it.
pub fn certification(
    cell: &FrontierCell,
    spec: &FrontierSpec,
) -> (Result<CheapTalkPlan, ScenarioError>, &'static str) {
    if cell.theorem == Theorem::Punishment44 && cell.n <= 4 * (cell.k + cell.t) {
        let n = cell.n;
        let plan = Scenario::cheap_talk(catalog::majority_circuit(n))
            .players(n)
            .tolerance(cell.k, cell.t)
            .inputs(vec![vec![Fp::ONE]; n])
            .epsilon(spec.kappa)
            .wills(vec![0; n])
            .build();
        return (plan, "cheap-talk:eps+wills");
    }
    let label = match cell.theorem {
        Theorem::Robust41 => "cheap-talk:robust",
        Theorem::Epsilon42 => "cheap-talk:eps",
        Theorem::Punishment44 => "cheap-talk:robust+wills",
        Theorem::EpsilonPunishment45 => "cheap-talk:eps+wills",
    };
    (construction(cell, spec, false), label)
}

/// The §6.4 companion plan at `(n, k)`: the naive two-round mediator over
/// the counterexample circuit, wills and resolve defaults all ⊥. Single
/// source for the sweep, the witness persistence recipe, and `--replay`.
pub fn companion_plan(n: usize, k: usize, t: usize) -> MediatorPlan {
    Scenario::mediator(catalog::counterexample_naive(n))
        .players(n)
        .tolerance(k, t)
        .naive_split()
        .wills(vec![BOT; n])
        .resolve_defaults(vec![BOT; n])
        .build()
        .expect("companion cells guarantee k + t < n")
}

/// The coalitions every cell sweeps: a singleton (which must *not* profit
/// — no single player can decode the §6.4 leak) and the opposite-parity
/// pair `{0, 1}` (which below the boundary must).
fn cell_coalitions(k: usize) -> Vec<Vec<usize>> {
    if k >= 2 {
        vec![vec![0], vec![0, 1]]
    } else {
        vec![vec![0]]
    }
}

/// Builds a cell's evidence and experiment. Pure construction — no runs —
/// so the local and sharded executors prepare bit-identical work.
pub fn prepare_cell(cell: &FrontierCell, spec: &FrontierSpec) -> PreparedCell {
    if cell.admits() {
        // Evidence: the theorem's *own* construction must build strictly.
        let strict_build = match construction(cell, spec, false) {
            Ok(_) => "ok".to_string(),
            Err(e) => format!("error({e})"),
        };
        let evidence = CellEvidence {
            strict_build,
            hatch_build: "-".to_string(),
        };
        // Experiment: the regime's runnable certification plan.
        let experiment = match certification(cell, spec) {
            (Ok(plan), label) => {
                let game = library::byzantine_agreement_game(cell.n);
                let conf = Conformance::new(spec.eps_upper, cell.k, cell.t)
                    .battery(vec![SchedulerKind::Random])
                    .seeds(spec.ct_seeds)
                    .coalitions(cell_coalitions(cell.k));
                CellExperiment::CheapTalk {
                    plan,
                    label,
                    game,
                    types: vec![1usize; cell.n],
                    conf,
                }
            }
            (Err(e), _) => CellExperiment::Undecidable {
                reason: format!("admitted cell failed to build: {e}"),
            },
        };
        return PreparedCell {
            cell: *cell,
            evidence,
            experiment,
        };
    }

    // Sub-threshold: the strict builder must reject, the hatch must build.
    let strict_build = match construction(cell, spec, false) {
        Err(e @ ScenarioError::Threshold { .. }) => format!(
            "rejected(required_n={})",
            e.required_n().expect("threshold errors carry required_n")
        ),
        Err(e) => format!("error({e})"),
        Ok(_) => "unexpectedly-ok".to_string(),
    };
    let hatch_build = match construction(cell, spec, true) {
        Ok(_) => "ok".to_string(),
        Err(e) => format!("error({e})"),
    };
    let evidence = CellEvidence {
        strict_build,
        hatch_build,
    };
    let experiment = if cell.n < 4 {
        CellExperiment::Undecidable {
            reason: "companion game needs n ≥ 4".to_string(),
        }
    } else if cell.k < 2 {
        CellExperiment::Undecidable {
            reason: "companion attack needs a coalition of two (k ≥ 2)".to_string(),
        }
    } else if cell.k + cell.t >= cell.n {
        CellExperiment::Undecidable {
            reason: "tolerance k + t ≥ n leaves no honest majority to mediate".to_string(),
        }
    } else {
        let (game, _, _) = library::counterexample_game(cell.n);
        let conf = Conformance::new(spec.eps_lower, cell.k, cell.t)
            .battery(vec![SchedulerKind::Random])
            .seeds(spec.med_seeds)
            .coalitions(cell_coalitions(cell.k))
            .deadlock_action(BOT);
        CellExperiment::Companion {
            plan: companion_plan(cell.n, cell.k, cell.t),
            game,
            types: vec![0usize; cell.n],
            conf,
        }
    };
    PreparedCell {
        cell: *cell,
        evidence,
        experiment,
    }
}

// ---------------------------------------------------------------------------
// Classification and the atlas
// ---------------------------------------------------------------------------

/// A cell's empirical classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellClass {
    /// The sweep certified ε-k-resilience.
    Resilient,
    /// The sweep found a profitable deviation (witness attached).
    Violated,
    /// Undecided: an interval straddles ε, or no experiment applies.
    Inconclusive,
}

impl CellClass {
    /// Lower-case label used in the JSON artifact.
    pub fn name(self) -> &'static str {
        match self {
            CellClass::Resilient => "resilient",
            CellClass::Violated => "violated",
            CellClass::Inconclusive => "inconclusive",
        }
    }
}

/// One executed cell of the atlas.
pub struct CellResult {
    /// The cell.
    pub cell: FrontierCell,
    /// Build-time evidence.
    pub evidence: CellEvidence,
    /// Which experiment ran: `"cheap-talk"`, `"companion"`, or `"none"`.
    pub experiment: &'static str,
    /// The classification.
    pub class: CellClass,
    /// Largest gain point estimate across the sweep (absent when no
    /// experiment ran).
    pub max_gain: Option<f64>,
    /// Number of swept `(strategy × coalition)` cells.
    pub sweep_cells: usize,
    /// Diagnostic note (the inconclusive reason, or empty).
    pub note: String,
    /// The concrete replayable witness, for violated cells.
    pub witness: Option<DeviationWitness>,
}

/// Folds a conformance report into a cell result — the one classification
/// path both the local fan-out and the sharded plane go through, so
/// bit-identical reports yield byte-identical atlases.
pub fn cell_result(
    cell: FrontierCell,
    evidence: CellEvidence,
    experiment: &'static str,
    report: &ConformanceReport,
) -> CellResult {
    let (class, note, witness) = match &report.verdict {
        ConformanceVerdict::Resilient { .. } => (CellClass::Resilient, String::new(), None),
        ConformanceVerdict::Violated(w) => (CellClass::Violated, String::new(), Some(w.clone())),
        ConformanceVerdict::Inconclusive {
            strategy,
            coalition,
            ..
        } => (
            CellClass::Inconclusive,
            format!("interval straddles ε: '{strategy}' by {coalition:?}"),
            None,
        ),
    };
    CellResult {
        cell,
        evidence,
        experiment,
        class,
        max_gain: Some(report.max_gain()),
        sweep_cells: report.cells.len(),
        note,
        witness,
    }
}

/// A cell with no runnable experiment.
pub fn cell_skipped(cell: FrontierCell, evidence: CellEvidence, reason: String) -> CellResult {
    CellResult {
        cell,
        evidence,
        experiment: "none",
        class: CellClass::Inconclusive,
        max_gain: None,
        sweep_cells: 0,
        note: reason,
        witness: None,
    }
}

/// The rendered map: every cell's result under one spec.
pub struct FrontierAtlas {
    /// The grid specification that produced this atlas.
    pub spec: FrontierSpec,
    /// Per-cell results, in [`FrontierSpec::cells`] order.
    pub results: Vec<CellResult>,
}

impl FrontierAtlas {
    /// `(resilient, violated, inconclusive)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for r in &self.results {
            match r.class {
                CellClass::Resilient => c.0 += 1,
                CellClass::Violated => c.1 += 1,
                CellClass::Inconclusive => c.2 += 1,
            }
        }
        c
    }

    /// The violated cells (each carries a witness).
    pub fn violated(&self) -> impl Iterator<Item = &CellResult> {
        self.results
            .iter()
            .filter(|r| r.class == CellClass::Violated)
    }

    /// Machine-checks that the empirical boundary coincides with the
    /// theorem predicate cell for cell:
    ///
    /// * an admitted cell must classify `Resilient` (its strict build must
    ///   have succeeded);
    /// * a sub-threshold cell must classify `Violated` with a witness, its
    ///   strict build must have been threshold-rejected, and the escape
    ///   hatch must have constructed it;
    /// * at most [`FrontierSpec::inconclusive_budget`] cells may be
    ///   `Inconclusive`.
    ///
    /// Returns every discrepancy, or `Ok(())` when the map matches.
    pub fn check(&self) -> Result<(), Vec<String>> {
        let mut mismatches = Vec::new();
        let mut inconclusive = 0usize;
        for r in &self.results {
            let key = r.cell.key();
            if r.cell.admits() {
                if r.evidence.strict_build != "ok" {
                    mismatches.push(format!(
                        "{key}: admitted cell failed the strict build: {}",
                        r.evidence.strict_build
                    ));
                }
                match r.class {
                    CellClass::Resilient => {}
                    CellClass::Violated => mismatches.push(format!(
                        "{key}: theorem admits the point but the sweep found a deviation: {}",
                        r.witness
                            .as_ref()
                            .map(|w| w.strategy.as_str())
                            .unwrap_or("?")
                    )),
                    CellClass::Inconclusive => inconclusive += 1,
                }
            } else {
                if !r.evidence.strict_build.starts_with("rejected") {
                    mismatches.push(format!(
                        "{key}: sub-threshold cell was not threshold-rejected: {}",
                        r.evidence.strict_build
                    ));
                }
                match r.class {
                    CellClass::Violated => {
                        if r.witness.is_none() {
                            mismatches.push(format!("{key}: violated cell carries no witness"));
                        }
                        if r.evidence.hatch_build != "ok" {
                            mismatches.push(format!(
                                "{key}: escape hatch failed to construct the cell: {}",
                                r.evidence.hatch_build
                            ));
                        }
                    }
                    CellClass::Resilient => mismatches.push(format!(
                        "{key}: below the boundary but the sweep certified resilience"
                    )),
                    CellClass::Inconclusive => inconclusive += 1,
                }
            }
        }
        if inconclusive > self.spec.inconclusive_budget {
            mismatches.push(format!(
                "{inconclusive} inconclusive cell(s) exceed the budget of {}",
                self.spec.inconclusive_budget
            ));
        }
        if mismatches.is_empty() {
            Ok(())
        } else {
            Err(mismatches)
        }
    }

    /// Renders the atlas as the deterministic `FRONTIER.json` artifact:
    /// hand-rolled (the offline serde shim does not serialize), stable key
    /// order, and every float carried both human-readably (`{:.6}`) and
    /// exactly (`f64::to_bits` hex) — the representation the sharded-vs-
    /// local differential diffs byte for byte.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        fn jf(x: f64) -> String {
            format!(
                "{{ \"val\": {:.6}, \"bits\": \"0x{:016x}\" }}",
                x,
                x.to_bits()
            )
        }
        let mut out = String::from("{\n");
        // Spec echo.
        out.push_str(&format!(
            "  \"spec\": {{ \"name\": \"{}\", \"ct_seeds\": {}, \"med_seeds\": {}, \
             \"eps_upper\": {}, \"eps_lower\": {}, \"kappa\": {}, \"inconclusive_budget\": {},\n",
            esc(&self.spec.name),
            self.spec.ct_seeds,
            self.spec.med_seeds,
            jf(self.spec.eps_upper),
            jf(self.spec.eps_lower),
            self.spec.kappa,
            self.spec.inconclusive_budget
        ));
        out.push_str("    \"bands\": [\n");
        for (i, b) in self.spec.bands.iter().enumerate() {
            out.push_str(&format!(
                "      {{ \"theorem\": \"{}\", \"bound\": \"{}\", \"k\": [{}, {}], \
                 \"t\": [{}, {}], \"offsets\": [{}, {}] }}{}\n",
                b.theorem.name(),
                esc(b.theorem.bound()),
                b.k.0,
                b.k.1,
                b.t.0,
                b.t.1,
                b.offsets.0,
                b.offsets.1,
                if i + 1 == self.spec.bands.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("    ] },\n  \"cells\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let witness = match &r.witness {
                None => "null".to_string(),
                Some(w) => format!(
                    "{{ \"strategy\": \"{}\", \"coalition\": {:?}, \"scheduler\": \"{:?}\", \
                     \"seed\": {}, \"unit\": {}, \"run\": {}, \"gain\": {}, \
                     \"baseline_profile\": {:?}, \"deviant_profile\": {:?} }}",
                    esc(&w.strategy),
                    w.coalition,
                    w.kind,
                    w.seed,
                    w.unit,
                    w.run,
                    jf(w.gain.mean),
                    w.baseline_profile,
                    w.deviant_profile
                ),
            };
            let max_gain = match r.max_gain {
                None => "null".to_string(),
                Some(g) => jf(g),
            };
            out.push_str(&format!(
                "    {{ \"key\": \"{}\", \"theorem\": \"{}\", \"n\": {}, \"k\": {}, \"t\": {}, \
                 \"bound\": {}, \"admits\": {},\n      \"strict_build\": \"{}\", \
                 \"hatch_build\": \"{}\", \"experiment\": \"{}\",\n      \"class\": \"{}\", \
                 \"max_gain\": {}, \"sweep_cells\": {}, \"note\": \"{}\",\n      \
                 \"witness\": {} }}{}\n",
                esc(&r.cell.key()),
                r.cell.theorem.name(),
                r.cell.n,
                r.cell.k,
                r.cell.t,
                r.cell.bound(),
                r.cell.admits(),
                esc(&r.evidence.strict_build),
                esc(&r.evidence.hatch_build),
                r.experiment,
                r.class.name(),
                max_gain,
                r.sweep_cells,
                esc(&r.note),
                witness,
                if i + 1 == self.results.len() { "" } else { "," }
            ));
        }
        let (res, vio, inc) = self.counts();
        let mismatches = match self.check() {
            Ok(()) => Vec::new(),
            Err(m) => m,
        };
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"summary\": {{ \"cells\": {}, \"resilient\": {res}, \"violated\": {vio}, \
             \"inconclusive\": {inc}, \"matches_theorem_predicate\": {}, \"mismatches\": [",
            self.results.len(),
            mismatches.is_empty()
        ));
        for (i, m) in mismatches.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", esc(m)));
        }
        out.push_str("] }\n}\n");
        out
    }
}

/// Runs the whole grid locally: each cell's conformance sweep on the
/// in-process thread fan-out, in enumeration order. The sharded twin lives
/// in `mediator-net` (`run_frontier_sharded`) and must render an atlas
/// byte-identical to this one.
pub fn run_frontier_local(spec: &FrontierSpec) -> FrontierAtlas {
    let results = spec
        .cells()
        .iter()
        .map(|cell| {
            let prepared = prepare_cell(cell, spec);
            match prepared.experiment {
                CellExperiment::CheapTalk {
                    plan,
                    label,
                    game,
                    types,
                    conf,
                } => cell_result(
                    prepared.cell,
                    prepared.evidence,
                    label,
                    &plan.conformance(&game, &types, &conf),
                ),
                CellExperiment::Companion {
                    plan,
                    game,
                    types,
                    conf,
                } => cell_result(
                    prepared.cell,
                    prepared.evidence,
                    "companion",
                    &plan.conformance(&game, &types, &conf),
                ),
                CellExperiment::Undecidable { reason } => {
                    cell_skipped(prepared.cell, prepared.evidence, reason)
                }
            }
        })
        .collect();
    FrontierAtlas {
        spec: spec.clone(),
        results,
    }
}
