//! Cheap-talk games: the mediator replaced by asynchronous MPC.
//!
//! `CheapTalkPlayer` embeds the MPC engine into a `mediator-sim` process by
//! driving [`MpcDriver`] — the same [`mediator_sim::sansio::SansIo`] wrapper
//! the protocol test suites run — through the shared `route_batch` fan-out,
//! adding only the game-level machinery on top: deviations, wills, the
//! cotermination barrier, and abort-to-default resolution.
//! The four theorem parameterizations:
//!
//! | Theorem | `CtVariant` | threshold | extras |
//! |---------|-------------|-----------|--------|
//! | 4.1 | `Robust` | `n > 4(k+t)` | none |
//! | 4.2 | `Epsilon{κ}` | `n > 3(k+t)` | ε-detection, abort → default move |
//! | 4.4 | `Robust` + `punishment` + `barrier` | `n > 3k+4t` | wills carry the punishment; cotermination barrier |
//! | 4.5 | `Epsilon{κ}` + `punishment` | `n > 2k+3t` | both |
//!
//! Infinite-play semantics: with `punishment = Some(ρ)` the player writes
//! `ρ_i` into its will at start (the Aumann–Hart executor plays it on
//! deadlock); without wills, the caller resolves un-moved players with the
//! game's default moves (`Outcome::resolve_default`).
//!
//! The cotermination barrier (Definition 5.3): after decoding its action, a
//! player broadcasts `Finished` and only moves once `n − (k+t)` players have
//! done so — so either all honest players move, or none do (and every will
//! fires), never a harmful mix.

use crate::adversary::TacticState;
use crate::deviations::Behavior;
use mediator_circuits::Circuit;
use mediator_field::Fp;
use mediator_mpc::{Mode, MpcConfig, MpcDriver, MpcEvent, MpcMsg};
use mediator_sim::sansio::{route_batch, SansIo};
use mediator_sim::{Action, Ctx, Outcome, Process, ProcessId, SchedulerKind, TamperVerdict};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Which theorem's machinery to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtVariant {
    /// Theorem 4.1: full robustness, `n > 4(k+t)`.
    Robust,
    /// Theorems 4.2/4.5: detection with `kappa` cut-and-choose checks.
    Epsilon {
        /// Cut-and-choose checks per dealer.
        kappa: usize,
    },
}

/// Wire messages of the cheap-talk game.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtMsg {
    /// An MPC engine message.
    Mpc(MpcMsg),
    /// Cotermination barrier vote: "I have my action".
    Finished,
}

/// Specification of a cheap-talk execution.
#[derive(Debug, Clone)]
pub struct CheapTalkSpec {
    /// Number of players.
    pub n: usize,
    /// Rational-coalition bound.
    pub k: usize,
    /// Malicious bound.
    pub t: usize,
    /// Engine variant.
    pub variant: CtVariant,
    /// The mediator circuit being simulated.
    pub circuit: Arc<Circuit>,
    /// Shared setup seed (ABA coins, detection challenges).
    pub coin_seed: u64,
    /// Default circuit inputs for excluded players.
    pub defaults: Vec<Vec<Fp>>,
    /// Punishment actions for the wills (Theorems 4.4/4.5); `None` = no
    /// wills (Theorems 4.1/4.2).
    pub punishment: Option<Vec<Action>>,
    /// Default moves (`M_i`) used when the engine aborts without wills.
    pub default_actions: Vec<Action>,
    /// Enable the t-cotermination barrier.
    pub barrier: bool,
}

impl CheapTalkSpec {
    /// The deviation budget `f = k + t`.
    pub fn f(&self) -> usize {
        self.k + self.t
    }

    /// Builds the engine configuration for this spec.
    pub fn mpc_config(&self) -> MpcConfig {
        let f = self.f();
        match self.variant {
            CtVariant::Robust => {
                MpcConfig::robust(self.n, f, self.coin_seed, self.defaults.clone())
            }
            CtVariant::Epsilon { kappa } => MpcConfig {
                n: self.n,
                f,
                t: self.t.max(1).min(f.max(1)),
                mode: Mode::Epsilon { kappa },
                coin_seed: self.coin_seed,
                defaults: self.defaults.clone(),
            },
        }
    }

    /// A Theorem 4.1 spec.
    pub fn theorem_4_1(
        n: usize,
        k: usize,
        t: usize,
        circuit: Circuit,
        defaults: Vec<Vec<Fp>>,
        default_actions: Vec<Action>,
    ) -> Self {
        CheapTalkSpec {
            n,
            k,
            t,
            variant: CtVariant::Robust,
            circuit: Arc::new(circuit),
            coin_seed: 0x5EED,
            defaults,
            punishment: None,
            default_actions,
            barrier: false,
        }
    }

    /// A Theorem 4.2 spec (ε-implementation).
    pub fn theorem_4_2(
        n: usize,
        k: usize,
        t: usize,
        kappa: usize,
        circuit: Circuit,
        defaults: Vec<Vec<Fp>>,
        default_actions: Vec<Action>,
    ) -> Self {
        CheapTalkSpec {
            variant: CtVariant::Epsilon { kappa },
            ..CheapTalkSpec::theorem_4_1(n, k, t, circuit, defaults, default_actions)
        }
    }

    /// A Theorem 4.4 spec (punishment wills + cotermination barrier).
    pub fn theorem_4_4(
        n: usize,
        k: usize,
        t: usize,
        circuit: Circuit,
        defaults: Vec<Vec<Fp>>,
        punishment: Vec<Action>,
        default_actions: Vec<Action>,
    ) -> Self {
        CheapTalkSpec {
            punishment: Some(punishment),
            barrier: true,
            ..CheapTalkSpec::theorem_4_1(n, k, t, circuit, defaults, default_actions)
        }
    }

    /// A Theorem 4.5 spec (ε + punishment).
    #[allow(clippy::too_many_arguments)]
    pub fn theorem_4_5(
        n: usize,
        k: usize,
        t: usize,
        kappa: usize,
        circuit: Circuit,
        defaults: Vec<Vec<Fp>>,
        punishment: Vec<Action>,
        default_actions: Vec<Action>,
    ) -> Self {
        CheapTalkSpec {
            variant: CtVariant::Epsilon { kappa },
            punishment: Some(punishment),
            barrier: true,
            ..CheapTalkSpec::theorem_4_1(n, k, t, circuit, defaults, default_actions)
        }
    }
}

/// One cheap-talk player: the honest strategy, with optional parameterized
/// deviations ([`Behavior`]) so experiments can reuse the honest machinery.
pub struct CheapTalkPlayer {
    spec: CheapTalkSpec,
    me: usize,
    input: Vec<Fp>,
    engine: Option<MpcDriver>,
    behavior: Behavior,
    tactics: TacticState,
    held: Vec<(ProcessId, CtMsg)>,
    sends: u64,
    crashed: bool,
    action: Option<Action>,
    moved: bool,
    finished: BTreeSet<ProcessId>,
}

impl CheapTalkPlayer {
    /// An honest player.
    pub fn honest(spec: CheapTalkSpec, me: usize, input: Vec<Fp>) -> Self {
        CheapTalkPlayer::with_behavior(spec, me, input, Behavior::default())
    }

    /// A player with deviations switched on.
    pub fn with_behavior(
        spec: CheapTalkSpec,
        me: usize,
        input: Vec<Fp>,
        behavior: Behavior,
    ) -> Self {
        // The legacy `lie_in_opens` flag compiles onto the same corruption
        // primitive the DSL uses — one corruption scheme, not two.
        let mut schedule = behavior.tactics.clone();
        if behavior.lie_in_opens {
            schedule.push(crate::adversary::Scheduled {
                window: crate::adversary::Window::all(),
                primitive: crate::adversary::Primitive::CorruptOpens {
                    offset: crate::adversary::OPEN_LIE_OFFSET,
                },
            });
        }
        let tactics = TacticState::new(schedule);
        CheapTalkPlayer {
            spec,
            me,
            input,
            engine: None,
            behavior,
            tactics,
            held: Vec::new(),
            sends: 0,
            crashed: false,
            action: None,
            moved: false,
            finished: BTreeSet::new(),
        }
    }

    fn deliver_out(&mut self, batch: Vec<mediator_sim::Outgoing<MpcMsg>>, ctx: &mut Ctx<CtMsg>) {
        // Broadcast fan-out goes through the shared sans-IO routing, with
        // this player's deviation-aware send in the hot seat (opening
        // lies, like every message-level deviation, live in the compiled
        // tactic schedule the send path consults).
        let n = self.spec.n;
        route_batch(n, batch, |d, msg| self.send(d, CtMsg::Mpc(msg), ctx));
    }

    fn send(&mut self, dst: usize, msg: CtMsg, ctx: &mut Ctx<CtMsg>) {
        if self.crashed {
            return;
        }
        if let Some(limit) = self.behavior.crash_after_sends {
            if self.sends >= limit {
                self.crashed = true;
                return;
            }
        }
        self.sends += 1;
        if self.tactics.is_empty() {
            ctx.send(dst, msg);
            return;
        }
        match self.tactics.apply(dst, msg) {
            TamperVerdict::Deliver(m) => ctx.send(dst, m),
            TamperVerdict::Drop => {}
            TamperVerdict::Hold(m) => self.held.push((dst, m)),
        }
    }

    /// Releases delay-held messages once their tactic's release point has
    /// passed (consulted at the start of every activation).
    ///
    /// Deliberately NOT the generic [`mediator_sim::Tamper`] wrapper: a
    /// player whose `crash_after_sends` fired must stay silent — held
    /// messages included — and only this state machine knows about the
    /// crash. The wrapper flushes unconditionally, which is right for the
    /// processes it wraps but wrong here.
    fn flush_held(&mut self, ctx: &mut Ctx<CtMsg>) {
        if self.held.is_empty() || self.crashed || !self.tactics.should_flush() {
            return;
        }
        for (dst, msg) in std::mem::take(&mut self.held) {
            ctx.send(dst, msg);
        }
    }

    fn handle_event(&mut self, ev: MpcEvent, ctx: &mut Ctx<CtMsg>) {
        match ev {
            MpcEvent::Done(outputs) => {
                let action = outputs.first().map(|v| v.as_u64()).unwrap_or(0);
                self.action = Some(action);
                if self.behavior.refuse_to_move {
                    // Rational deadlock play: never move, keep (or set) the
                    // deviant will.
                    ctx.halt();
                    return;
                }
                if self.spec.barrier {
                    for d in 0..self.spec.n {
                        self.send(d, CtMsg::Finished, ctx);
                    }
                    self.try_finish(ctx);
                } else {
                    self.moved = true;
                    ctx.make_move(action);
                    ctx.halt();
                }
            }
            MpcEvent::Aborted => {
                if self.spec.punishment.is_some() {
                    // The will (punishment) handles it: halt without moving.
                    ctx.halt();
                } else {
                    ctx.make_move(self.spec.default_actions[self.me]);
                    ctx.halt();
                }
            }
            MpcEvent::CoreDecided(_) => {}
        }
    }

    fn try_finish(&mut self, ctx: &mut Ctx<CtMsg>) {
        if self.moved || self.action.is_none() {
            return;
        }
        let quorum = self.spec.n - self.spec.f();
        if self.finished.len() >= quorum {
            self.moved = true;
            ctx.make_move(self.action.expect("checked"));
            ctx.halt();
        }
    }
}

impl Process<CtMsg> for CheapTalkPlayer {
    fn on_start(&mut self, ctx: &mut Ctx<CtMsg>) {
        if let Some(p) = &self.spec.punishment {
            ctx.set_will(p[self.me]);
        }
        if let Some(w) = self.behavior.will_override {
            ctx.set_will(w);
        }
        if self.behavior.silent {
            ctx.halt();
            return;
        }
        let input = self
            .behavior
            .input_override
            .clone()
            .unwrap_or_else(|| self.input.clone());
        let mut engine = MpcDriver::new(
            self.spec.mpc_config(),
            self.spec.circuit.clone(),
            self.me,
            input,
        );
        let batch = engine.on_start(ctx.std_rng());
        self.engine = Some(engine);
        self.deliver_out(batch, ctx);
    }

    fn on_message(&mut self, src: ProcessId, msg: CtMsg, ctx: &mut Ctx<CtMsg>) {
        self.flush_held(ctx);
        match msg {
            CtMsg::Mpc(m) => {
                let Some(engine) = self.engine.as_mut() else {
                    return;
                };
                let (batch, ev) = engine.on_message(src, m, ctx.std_rng());
                self.deliver_out(batch, ctx);
                if let Some(ev) = ev {
                    self.handle_event(ev, ctx);
                }
            }
            CtMsg::Finished => {
                self.finished.insert(src);
                self.try_finish(ctx);
            }
        }
    }
}

/// Runs one cheap-talk game with optional deviant behaviours per player.
/// Returns the sim outcome; message counts and traces ride along.
///
/// Thin, source-compatible wrapper over the builder surface: equivalent to
/// [`CheapTalkPlan`](crate::scenario::CheapTalkPlan) with the default
/// starvation bound
/// ([`DEFAULT_CHEAP_TALK_STARVATION_BOUND`](crate::scenario::DEFAULT_CHEAP_TALK_STARVATION_BOUND)).
/// New code should start from [`Scenario::cheap_talk`](crate::scenario::Scenario::cheap_talk),
/// which also validates the theorem thresholds at build time; the parity
/// suite pins this wrapper byte-for-byte against the builder path.
pub fn run_cheap_talk(
    spec: &CheapTalkSpec,
    inputs: &[Vec<Fp>],
    behaviors: &BTreeMap<usize, Behavior>,
    kind: &SchedulerKind,
    seed: u64,
    max_steps: u64,
) -> Outcome {
    crate::scenario::CheapTalkPlan::from_spec(spec.clone(), inputs.to_vec())
        .with_behaviors(behaviors.clone())
        .max_steps(max_steps)
        .run_with(kind, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mediator_circuits::catalog;

    fn majority_spec(n: usize, k: usize, t: usize) -> CheapTalkSpec {
        CheapTalkSpec::theorem_4_1(
            n,
            k,
            t,
            catalog::majority_circuit(n),
            vec![vec![Fp::ZERO]; n],
            vec![0; n],
        )
    }

    #[test]
    fn honest_cheap_talk_computes_majority() {
        let n = 5; // k=1, t=0: n > 4 ✓
        let spec = majority_spec(n, 1, 0);
        let inputs: Vec<Vec<Fp>> = [1u64, 0, 1, 1, 0]
            .iter()
            .map(|&b| vec![Fp::new(b)])
            .collect();
        let out = run_cheap_talk(
            &spec,
            &inputs,
            &BTreeMap::new(),
            &SchedulerKind::Random,
            42,
            2_000_000,
        );
        let moves = out.resolve_default(&vec![9; n]);
        assert_eq!(moves, vec![1; n]);
    }

    #[test]
    fn silent_deviator_does_not_block_robust_protocol() {
        let n = 5;
        let spec = majority_spec(n, 1, 0);
        let inputs: Vec<Vec<Fp>> = vec![vec![Fp::ONE]; n];
        let mut behaviors = BTreeMap::new();
        behaviors.insert(
            3usize,
            Behavior {
                silent: true,
                ..Behavior::default()
            },
        );
        let out = run_cheap_talk(
            &spec,
            &inputs,
            &behaviors,
            &SchedulerKind::Random,
            7,
            2_000_000,
        );
        for (p, m) in out.moves.iter().enumerate() {
            if p != 3 {
                assert_eq!(*m, Some(1), "player {p}");
            }
        }
    }

    #[test]
    fn opening_liar_is_corrected() {
        let n = 5;
        let spec = majority_spec(n, 1, 0);
        let inputs: Vec<Vec<Fp>> = [0u64, 0, 1, 0, 1]
            .iter()
            .map(|&b| vec![Fp::new(b)])
            .collect();
        let mut behaviors = BTreeMap::new();
        behaviors.insert(
            2usize,
            Behavior {
                lie_in_opens: true,
                ..Behavior::default()
            },
        );
        let out = run_cheap_talk(
            &spec,
            &inputs,
            &behaviors,
            &SchedulerKind::Random,
            13,
            4_000_000,
        );
        // Honest majority of (0,0,1,0,1) = 0 — the liar's input still counts
        // (it dealt honestly) but its opening lies must be corrected.
        for (p, m) in out.moves.iter().enumerate() {
            if p != 2 {
                assert_eq!(*m, Some(0), "player {p}");
            }
        }
    }

    #[test]
    fn barrier_gives_cotermination_under_crash() {
        // Theorem 4.4 machinery: punishment wills + barrier. One player
        // crashes mid-protocol; either everyone (honest) moves or nobody
        // does — never a mix.
        let n = 6; // k=1, t=0: n > 3k+4t = 3 ✓ (and > 4f for the engine)
        let spec = CheapTalkSpec::theorem_4_4(
            n,
            1,
            0,
            catalog::majority_circuit(n),
            vec![vec![Fp::ZERO]; n],
            vec![5; n], // punishment action
            vec![0; n],
        );
        let inputs: Vec<Vec<Fp>> = vec![vec![Fp::ONE]; n];
        for seed in 0..5 {
            let mut behaviors = BTreeMap::new();
            behaviors.insert(
                1usize,
                Behavior {
                    crash_after_sends: Some(40),
                    ..Behavior::default()
                },
            );
            let out = run_cheap_talk(
                &spec,
                &inputs,
                &behaviors,
                &SchedulerKind::Random,
                seed,
                2_000_000,
            );
            let honest_moved: Vec<bool> = (0..n)
                .filter(|&p| p != 1)
                .map(|p| out.moves[p].is_some())
                .collect();
            let all = honest_moved.iter().all(|&b| b);
            let none = honest_moved.iter().all(|&b| !b);
            assert!(
                all || none,
                "cotermination violated, seed {seed}: {honest_moved:?}"
            );
            if none {
                // Wills fire: everyone "plays" the punishment.
                let resolved = out.resolve_ah(&vec![9; n]);
                for (p, a) in resolved.iter().enumerate() {
                    if p != 1 {
                        assert_eq!(*a, 5, "punishment in will, player {p}");
                    }
                }
            }
        }
    }

    #[test]
    fn refuse_to_move_triggers_wills_of_nobody_else_with_barrier_quorum() {
        // A single refusing player cannot stop the others: quorum is n−f.
        let n = 6;
        let spec = CheapTalkSpec::theorem_4_4(
            n,
            1,
            0,
            catalog::majority_circuit(n),
            vec![vec![Fp::ZERO]; n],
            vec![5; n],
            vec![0; n],
        );
        let inputs: Vec<Vec<Fp>> = vec![vec![Fp::ONE]; n];
        let mut behaviors = BTreeMap::new();
        behaviors.insert(
            0usize,
            Behavior {
                refuse_to_move: true,
                ..Behavior::default()
            },
        );
        let out = run_cheap_talk(
            &spec,
            &inputs,
            &behaviors,
            &SchedulerKind::Random,
            3,
            2_000_000,
        );
        for p in 1..n {
            assert_eq!(out.moves[p], Some(1), "player {p} must still move");
        }
    }

    #[test]
    fn epsilon_variant_honest_run() {
        let n = 4; // k=0, t=1: n > 3 ✓
        let spec = CheapTalkSpec::theorem_4_2(
            n,
            0,
            1,
            2,
            catalog::majority_circuit(n),
            vec![vec![Fp::ZERO]; n],
            vec![0; n],
        );
        let inputs: Vec<Vec<Fp>> = [1u64, 1, 1, 0].iter().map(|&b| vec![Fp::new(b)]).collect();
        let out = run_cheap_talk(
            &spec,
            &inputs,
            &BTreeMap::new(),
            &SchedulerKind::Random,
            23,
            2_000_000,
        );
        let moves = out.resolve_default(&vec![9; n]);
        assert_eq!(moves, vec![1; n]);
    }

    #[test]
    fn input_override_changes_the_outcome() {
        // A lying input is *allowed* by the model (it is the player's own
        // input); verify the machinery wires it through.
        let n = 5;
        let spec = majority_spec(n, 1, 0);
        let inputs: Vec<Vec<Fp>> = [1u64, 1, 0, 0, 0]
            .iter()
            .map(|&b| vec![Fp::new(b)])
            .collect();
        let mut behaviors = BTreeMap::new();
        behaviors.insert(
            2usize,
            Behavior {
                input_override: Some(vec![Fp::ONE]),
                ..Behavior::default()
            },
        );
        let out = run_cheap_talk(
            &spec,
            &inputs,
            &behaviors,
            &SchedulerKind::Random,
            31,
            2_000_000,
        );
        // With the override the inputs become (1,1,1,0,0): majority 1.
        let moves = out.resolve_default(&vec![9; n]);
        assert_eq!(moves, vec![1; n]);
    }
}
