//! The adversary plane: composable coalition strategies and the
//! ε-resilience conformance harness.
//!
//! The paper's theorems quantify over *every* strategy a rational coalition
//! of size ≤ k might play alongside t malicious players; a fixed list of
//! hand-written deviations cannot witness that claim. This module replaces
//! the ad-hoc battery with three layers:
//!
//! 1. **Message-level primitives** ([`Primitive`]) — drop, delay-until-
//!    phase, equivocate, selective silence toward a victim set, abort-at-
//!    round — scheduled over send-index windows ([`Window`]) and composed
//!    per player by the [`Deviation`] combinator builder. Programs compile
//!    to a [`TacticState`], which plugs into the cheap-talk player's send
//!    path directly and into *any* process (e.g. the honest mediator-game
//!    player) through the generic [`mediator_sim::Tamper`] hook.
//! 2. **Coalition wiring** ([`GossipColluder`], generalizing the §6.4
//!    `CounterexampleColluder`) — members pool their private leaks over
//!    `Gossip` messages and act on the combined information via a
//!    [`CollusionRule`].
//! 3. **The conformance harness** ([`Conformance`] → [`ConformanceReport`])
//!    — sweeps generated coalition strategies × the scheduler battery ×
//!    seeds through the batch runner, accounts utilities with confidence
//!    intervals (common-random-number pairing against the honest baseline),
//!    and renders a verdict: ε-k-resilient within the statistical bound, or
//!    a concrete witnessing deviation ([`DeviationWitness`]) that replays
//!    from its `(scheduler, seed)` cell.
//!
//! "Phase" below means a window over the deviator's *own send counter*:
//! the asynchronous model has no global rounds, and a player's send index
//! is the only clock it controls. Early windows cover input dealing, late
//! windows the opening/output phase; [`Deviation::abort_at`] is the paper's
//! abort-at-round deviation expressed on that clock.

use crate::deviations::Behavior;
use crate::mediator::MedMsg;
use crate::scenario::{BatchRun, CheapTalkPlan, MediatorPlan};
use mediator_field::Fp;
use mediator_games::solution::subsets_up_to;
use mediator_games::stats::{mean_ci, paired_gain_ci, ConfidenceInterval};
use mediator_games::BayesianGame;
use mediator_mpc::MpcMsg;
use mediator_sim::{
    Action, Ctx, Outcome, OutgoingTamper, Process, ProcessId, SchedulerKind, Tamper, TamperVerdict,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

// ---------------------------------------------------------------------------
// Message-level primitives
// ---------------------------------------------------------------------------

/// The additive field offset the classic lie-in-openings deviation applies
/// (any nonzero value breaks the share; this one is the historical
/// constant the golden tests pinned).
pub const OPEN_LIE_OFFSET: u64 = 1_000_003;

/// A half-open window `[from, to)` over the deviator's own send counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First send index the window covers.
    pub from: u64,
    /// First send index past the window (`u64::MAX` = forever).
    pub to: u64,
}

impl Window {
    /// The whole execution.
    pub fn all() -> Self {
        Window {
            from: 0,
            to: u64::MAX,
        }
    }

    /// Everything from send `from` on.
    pub fn starting(from: u64) -> Self {
        Window { from, to: u64::MAX }
    }

    /// The window `[from, to)`.
    pub fn between(from: u64, to: u64) -> Self {
        assert!(from <= to, "window bounds out of order");
        Window { from, to }
    }

    /// Whether send index `i` falls inside the window.
    pub fn contains(&self, i: u64) -> bool {
        self.from <= i && i < self.to
    }
}

/// One message-level deviation primitive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Primitive {
    /// Drop every outgoing message in the window.
    Drop,
    /// Drop messages addressed to the victim set (selective silence: the
    /// deviator talks to everyone else normally).
    SilenceToward(BTreeSet<ProcessId>),
    /// Hold messages emitted in the window; release them once the send
    /// counter reaches `release_at` (delay-until-phase).
    Delay {
        /// Send index at which held messages are flushed.
        release_at: u64,
    },
    /// Corrupt opening/output values toward **everyone** (the classic
    /// lie-in-openings attack, windowed).
    CorruptOpens {
        /// Additive field offset applied to corrupted values.
        offset: u64,
    },
    /// Corrupt opening/output values only toward the victim set —
    /// equivocation: different recipients see different values.
    Equivocate {
        /// Recipients that get the corrupted values.
        victims: BTreeSet<ProcessId>,
        /// Additive field offset applied to corrupted values.
        offset: u64,
    },
    /// Permanently stop sending once the window opens (abort-at-round on
    /// the send-counter clock).
    Abort,
}

/// A primitive scheduled over a window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled {
    /// When the primitive is active.
    pub window: Window,
    /// What it does.
    pub primitive: Primitive,
}

/// A message type the value-corruption primitives know how to tamper with.
///
/// Corruption models a deviator *lying about a protocol value it is
/// supposed to report*; messages with no such value pass through unchanged
/// (dropping them is what [`Primitive::Drop`] is for).
pub trait TamperableMsg: Sized {
    /// Applies an additive corruption to the message's reported values.
    fn corrupt(self, offset: u64) -> Self;
}

impl TamperableMsg for crate::cheap_talk::CtMsg {
    fn corrupt(self, offset: u64) -> Self {
        use crate::cheap_talk::CtMsg;
        match self {
            CtMsg::Mpc(MpcMsg::Open { id, value }) => CtMsg::Mpc(MpcMsg::Open {
                id,
                value: value + Fp::new(offset),
            }),
            CtMsg::Mpc(MpcMsg::Output { idx, value }) => CtMsg::Mpc(MpcMsg::Output {
                idx,
                value: value + Fp::new(offset),
            }),
            other => other,
        }
    }
}

impl TamperableMsg for MedMsg {
    fn corrupt(self, offset: u64) -> Self {
        match self {
            MedMsg::Input { round, value } => MedMsg::Input {
                round,
                value: value.into_iter().map(|v| v + Fp::new(offset)).collect(),
            },
            MedMsg::Gossip { payload } => MedMsg::Gossip {
                payload: payload.into_iter().map(|v| v + Fp::new(offset)).collect(),
            },
            other => other,
        }
    }
}

/// The compiled, stateful form of a tactic list: counts the deviator's
/// sends and applies every active primitive in order. Implements
/// [`OutgoingTamper`] so it plugs into [`Tamper`] around any process;
/// the cheap-talk player embeds one directly in its send path.
#[derive(Debug, Clone, Default)]
pub struct TacticState {
    steps: Vec<Scheduled>,
    sends: u64,
    aborted: bool,
    release_floor: Option<u64>,
}

impl TacticState {
    /// Compiles a tactic list.
    pub fn new(steps: Vec<Scheduled>) -> Self {
        TacticState {
            steps,
            sends: 0,
            aborted: false,
            release_floor: None,
        }
    }

    /// Whether there is nothing to do (the honest fast path).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Sends counted so far (attempts, including dropped/held ones — the
    /// window clock must not depend on what earlier tampering did).
    pub fn sends(&self) -> u64 {
        self.sends
    }

    /// Routes one outgoing message through the active primitives.
    pub fn apply<M: TamperableMsg>(&mut self, dst: ProcessId, msg: M) -> TamperVerdict<M> {
        let i = self.sends;
        self.sends += 1;
        if self.aborted {
            return TamperVerdict::Drop;
        }
        let mut msg = msg;
        let mut hold = false;
        for s in &self.steps {
            if !s.window.contains(i) {
                continue;
            }
            match &s.primitive {
                Primitive::Abort => {
                    self.aborted = true;
                    return TamperVerdict::Drop;
                }
                Primitive::Drop => return TamperVerdict::Drop,
                Primitive::SilenceToward(victims) => {
                    if victims.contains(&dst) {
                        return TamperVerdict::Drop;
                    }
                }
                Primitive::Delay { release_at } => {
                    hold = true;
                    let floor = self.release_floor.get_or_insert(*release_at);
                    *floor = (*floor).max(*release_at);
                }
                Primitive::CorruptOpens { offset } => {
                    msg = msg.corrupt(*offset);
                }
                Primitive::Equivocate { victims, offset } => {
                    if victims.contains(&dst) {
                        msg = msg.corrupt(*offset);
                    }
                }
            }
        }
        if hold {
            TamperVerdict::Hold(msg)
        } else {
            TamperVerdict::Deliver(msg)
        }
    }

    /// Whether held messages should be released now (the send counter has
    /// passed every pending release point).
    pub fn should_flush(&mut self) -> bool {
        match self.release_floor {
            Some(floor) if self.sends >= floor && !self.aborted => {
                self.release_floor = None;
                true
            }
            _ => false,
        }
    }
}

impl<M: TamperableMsg> OutgoingTamper<M> for TacticState {
    fn outgoing(&mut self, dst: ProcessId, msg: M) -> TamperVerdict<M> {
        self.apply(dst, msg)
    }

    fn flush_held(&mut self) -> bool {
        self.should_flush()
    }
}

// ---------------------------------------------------------------------------
// The combinator builder
// ---------------------------------------------------------------------------

/// Builder for one named deviation: player-level switches (silence, input
/// lies, refusing to move, will overrides) and message-level tactics
/// compose freely; `build()` yields the `(name, Behavior)` pair the
/// scenario surface consumes.
///
/// # Example
///
/// ```
/// use mediator_core::adversary::Deviation;
/// let (name, b) = Deviation::named("equivocate-then-abort")
///     .equivocate([1, 2], 40)
///     .abort_at(120)
///     .build();
/// assert_eq!(name, "equivocate-then-abort");
/// assert_eq!(b.tactics.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Deviation {
    name: String,
    behavior: Behavior,
}

impl Deviation {
    /// Starts an (initially honest) deviation with a report name.
    pub fn named(name: impl Into<String>) -> Self {
        Deviation {
            name: name.into(),
            behavior: Behavior::default(),
        }
    }

    /// Never participate at all.
    pub fn silent(mut self) -> Self {
        self.behavior.silent = true;
        self
    }

    /// Stop sending after `limit` messages (the legacy crash switch; for a
    /// windowed, message-level version see [`Deviation::abort_at`]).
    pub fn crash_after(mut self, limit: u64) -> Self {
        self.behavior.crash_after_sends = Some(limit);
        self
    }

    /// Substitute `input` for the real private input (lie-about-input: the
    /// model allows it — it is the player's own input — but the coalition
    /// may still hope to profit from a coordinated lie).
    pub fn lie_about_input(mut self, input: Vec<Fp>) -> Self {
        self.behavior.input_override = Some(input);
        self
    }

    /// Corrupt every opening/output point sent, to everyone, for the whole
    /// run (the legacy flag; [`Deviation::corrupt_opens`] is the windowed
    /// form and [`Deviation::equivocate`] the per-recipient form).
    pub fn lie_in_opens(mut self) -> Self {
        self.behavior.lie_in_opens = true;
        self
    }

    /// Decode the action but never move.
    pub fn refuse_to_move(mut self) -> Self {
        self.behavior.refuse_to_move = true;
        self
    }

    /// Write `will` instead of the honest will.
    pub fn will(mut self, will: Action) -> Self {
        self.behavior.will_override = Some(will);
        self
    }

    /// Schedules a raw tactic (the escape hatch for combinations the named
    /// combinators below do not cover).
    pub fn tactic(mut self, window: Window, primitive: Primitive) -> Self {
        self.behavior.tactics.push(Scheduled { window, primitive });
        self
    }

    /// Drop every outgoing message in `[from, to)`.
    pub fn drop_between(self, from: u64, to: u64) -> Self {
        self.tactic(Window::between(from, to), Primitive::Drop)
    }

    /// Permanently stop sending at send index `at`.
    pub fn abort_at(self, at: u64) -> Self {
        self.tactic(Window::starting(at), Primitive::Abort)
    }

    /// Drop messages to `victims` from send `from` on.
    pub fn silence_toward(self, victims: impl IntoIterator<Item = ProcessId>, from: u64) -> Self {
        self.tactic(
            Window::starting(from),
            Primitive::SilenceToward(victims.into_iter().collect()),
        )
    }

    /// Hold messages emitted in `[from, to)` until send `release_at`.
    pub fn delay(self, from: u64, to: u64, release_at: u64) -> Self {
        self.tactic(Window::between(from, to), Primitive::Delay { release_at })
    }

    /// Corrupt openings/outputs toward everyone from send `from` on.
    pub fn corrupt_opens(self, from: u64, offset: u64) -> Self {
        self.tactic(Window::starting(from), Primitive::CorruptOpens { offset })
    }

    /// Corrupt openings/outputs toward `victims` only (equivocation).
    pub fn equivocate(self, victims: impl IntoIterator<Item = ProcessId>, offset: u64) -> Self {
        self.tactic(
            Window::all(),
            Primitive::Equivocate {
                victims: victims.into_iter().collect(),
                offset,
            },
        )
    }

    /// The finished `(name, behavior)` pair.
    pub fn build(self) -> (String, Behavior) {
        (self.name, self.behavior)
    }
}

/// The generated deviation battery for a coalition inside an `n`-player
/// cheap-talk game: the five legacy deviations plus the message-level
/// primitives, with victim sets drawn from the players *outside* the
/// coalition (silencing or equivocating toward a fellow deviator tests
/// nothing). This is the strategy space the conformance harness sweeps.
pub fn generated_battery(n: usize, coalition: &[usize]) -> Vec<(String, Behavior)> {
    let outsiders: Vec<ProcessId> = (0..n).filter(|p| !coalition.contains(p)).collect();
    let victims: Vec<ProcessId> = outsiders.iter().copied().take(2).collect();
    let mut battery = vec![
        Deviation::named("silent").silent().build(),
        Deviation::named("crash-mid").crash_after(60).build(),
        Deviation::named("lie-input")
            .lie_about_input(vec![Fp::ONE])
            .build(),
        Deviation::named("lie-opens").lie_in_opens().build(),
        Deviation::named("refuse-move").refuse_to_move().build(),
        Deviation::named("drop-phase2")
            .drop_between(60, u64::MAX)
            .build(),
        Deviation::named("abort-at-round").abort_at(90).build(),
        Deviation::named("delay-until-phase")
            .delay(0, 30, 90)
            .build(),
        Deviation::named("corrupt-opens-late")
            .corrupt_opens(60, 7)
            .build(),
    ];
    if !victims.is_empty() {
        battery.push(
            Deviation::named("selective-silence")
                .silence_toward(victims.clone(), 0)
                .build(),
        );
        battery.push(
            Deviation::named("equivocate")
                .equivocate(victims, OPEN_LIE_OFFSET)
                .build(),
        );
    }
    battery
}

// ---------------------------------------------------------------------------
// Coalition wiring (generalized §6.4 colluders)
// ---------------------------------------------------------------------------

/// What a colluding coalition does once it has pooled its members' private
/// round-1 leaks (combined by XOR, the §6.4 parity trick).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollusionRule {
    /// Deadlock the mediator (never ack; leave `will` as the move) exactly
    /// when the combined leak bit equals `trigger`; cooperate otherwise.
    DeadlockOnBit {
        /// The combined-leak value that triggers the deadlock.
        trigger: u64,
        /// The will left behind when deadlocking.
        will: Action,
    },
    /// Deadlock unconditionally.
    AlwaysDeadlock {
        /// The will left behind.
        will: Action,
    },
    /// Pool the leaks but play along — the control arm that separates
    /// "information was available" from "information was profitable".
    AlwaysCooperate,
}

impl CollusionRule {
    /// A short name for report rows.
    pub fn name(&self) -> String {
        match self {
            CollusionRule::DeadlockOnBit { trigger, .. } => {
                format!("deadlock-if-bit={trigger}")
            }
            CollusionRule::AlwaysDeadlock { .. } => "always-deadlock".into(),
            CollusionRule::AlwaysCooperate => "pool-then-cooperate".into(),
        }
    }
}

/// The generalized §6.4 colluder: a mediator-game player that gossips its
/// private round-1 leak to every coalition partner, combines the pooled
/// leaks by XOR, and acts on a [`CollusionRule`]. With one partner of
/// opposite parity and `DeadlockOnBit { trigger: 0, will: ⊥ }` this *is*
/// the paper's counterexample coalition
/// ([`CounterexampleColluder`](crate::deviations::CounterexampleColluder)
/// is now a thin wrapper); the conformance harness sweeps the rule space
/// instead of hard-coding that one point.
pub struct GossipColluder {
    n: usize,
    partners: Vec<ProcessId>,
    rule: CollusionRule,
    base_will: Action,
    input: Vec<Fp>,
    my_leak: Option<u64>,
    partner_leaks: BTreeMap<ProcessId, u64>,
    acked: bool,
}

impl GossipColluder {
    /// Creates a colluder for an `n`-player game whose gossip partners are
    /// `partners` (the rest of the coalition). `base_will` is the will
    /// written at start (the coalition's deadlock-preferred action).
    pub fn new(
        n: usize,
        partners: impl IntoIterator<Item = ProcessId>,
        rule: CollusionRule,
        base_will: Action,
    ) -> Self {
        GossipColluder {
            n,
            partners: partners.into_iter().collect(),
            rule,
            base_will,
            input: Vec::new(),
            my_leak: None,
            partner_leaks: BTreeMap::new(),
            acked: false,
        }
    }

    /// Sets the private input re-sent on acks (empty by default — the
    /// §6.4 coin circuit takes no inputs).
    pub fn with_input(mut self, input: Vec<Fp>) -> Self {
        self.input = input;
        self
    }

    fn mediator(&self) -> ProcessId {
        self.n
    }

    fn decide(&mut self, ctx: &mut Ctx<MedMsg>) {
        let Some(mine) = self.my_leak else {
            return;
        };
        if self.acked
            || self
                .partners
                .iter()
                .any(|p| !self.partner_leaks.contains_key(p))
        {
            return;
        }
        self.acked = true;
        let bit = self
            .partner_leaks
            .values()
            .fold(mine, |acc, leak| acc ^ leak);
        let deadlock_will = match self.rule {
            CollusionRule::DeadlockOnBit { trigger, will } if bit == trigger => Some(will),
            CollusionRule::AlwaysDeadlock { will } => Some(will),
            _ => None,
        };
        match deadlock_will {
            Some(will) => {
                // Never ack: the naive mediator waits for all n acks, so
                // the whole game deadlocks and every will fires.
                ctx.set_will(will);
                ctx.halt();
            }
            None => {
                ctx.send(
                    self.mediator(),
                    MedMsg::Input {
                        round: 1,
                        value: self.input.clone(),
                    },
                );
            }
        }
    }
}

impl Process<MedMsg> for GossipColluder {
    fn on_start(&mut self, ctx: &mut Ctx<MedMsg>) {
        ctx.set_will(self.base_will);
        ctx.send(
            self.mediator(),
            MedMsg::Input {
                round: 0,
                value: self.input.clone(),
            },
        );
    }

    fn on_message(&mut self, src: ProcessId, msg: MedMsg, ctx: &mut Ctx<MedMsg>) {
        match msg {
            MedMsg::Round { round: 1, payload } if src == self.mediator() => {
                let leak = payload.first().map(|v| v.as_u64()).unwrap_or(0);
                self.my_leak = Some(leak);
                for &p in &self.partners.clone() {
                    ctx.send(
                        p,
                        MedMsg::Gossip {
                            payload: vec![Fp::new(leak)],
                        },
                    );
                }
                self.decide(ctx);
            }
            MedMsg::Round { round, .. } if src == self.mediator() => {
                // Later (content-free) rounds: a colluder that has not
                // deadlocked acks them like an honest player, so
                // multi-round mediators (`extra_rounds`) keep advancing —
                // a deadlocked colluder is already halted and never
                // receives these.
                ctx.send(
                    self.mediator(),
                    MedMsg::Input {
                        round,
                        value: self.input.clone(),
                    },
                );
            }
            MedMsg::Gossip { payload } if self.partners.contains(&src) => {
                if let Some(leak) = payload.first().map(|v| v.as_u64()) {
                    self.partner_leaks.insert(src, leak);
                }
                self.decide(ctx);
            }
            MedMsg::Stop { action } if src == self.mediator() => {
                ctx.make_move(action);
                ctx.halt();
            }
            _ => {}
        }
    }
}

/// The generated collusion-rule battery for mediator-game conformance:
/// both deadlock triggers, the unconditional deadlock, and the pooled-but-
/// cooperative control arm. `will` is the coalition's deadlock-preferred
/// action (⊥ in the §6.4 game).
pub fn collusion_battery(will: Action) -> Vec<CollusionRule> {
    vec![
        CollusionRule::DeadlockOnBit { trigger: 0, will },
        CollusionRule::DeadlockOnBit { trigger: 1, will },
        CollusionRule::AlwaysDeadlock { will },
        CollusionRule::AlwaysCooperate,
    ]
}

// ---------------------------------------------------------------------------
// The conformance harness
// ---------------------------------------------------------------------------

/// Configuration of a conformance sweep: the claim to check
/// (ε-k-resilience alongside t malicious players) and the sampling plan.
#[derive(Debug, Clone)]
pub struct Conformance {
    /// The ε bound being certified.
    pub eps: f64,
    /// Rational-coalition bound swept over.
    pub k: usize,
    /// Malicious bound (recorded in the report; the malicious players are
    /// whatever the plan itself configures).
    pub t: usize,
    battery: Option<Vec<SchedulerKind>>,
    seeds: u64,
    z: f64,
    coalitions: Option<Vec<Vec<usize>>>,
    deadlock_action: Option<Action>,
}

impl Conformance {
    /// A conformance check of ε-k-resilience with `t` malicious players.
    /// Defaults: the plan's full scheduler battery, 16 seeds per kind,
    /// 95% intervals (`z = 1.96`), all coalitions of size ≤ k.
    pub fn new(eps: f64, k: usize, t: usize) -> Self {
        Conformance {
            eps,
            k,
            t,
            battery: None,
            seeds: 16,
            z: 1.96,
            coalitions: None,
            deadlock_action: None,
        }
    }

    /// Overrides the scheduler battery.
    pub fn battery(mut self, kinds: Vec<SchedulerKind>) -> Self {
        self.battery = Some(kinds);
        self
    }

    /// Sets the seeds sampled per scheduler kind.
    pub fn seeds(mut self, seeds: u64) -> Self {
        assert!(seeds > 0, "conformance needs at least one seed");
        self.seeds = seeds;
        self
    }

    /// Overrides the confidence level's critical value (1.96 ≈ 95%).
    pub fn z(mut self, z: f64) -> Self {
        self.z = z;
        self
    }

    /// Restricts the swept coalitions (all subsets of size ≤ k otherwise).
    pub fn coalitions(mut self, coalitions: Vec<Vec<usize>>) -> Self {
        self.coalitions = Some(coalitions);
        self
    }

    /// Sets the action colluders leave in their wills when deadlocking
    /// (mediator-game sweeps only; defaults to the plan's will for the
    /// member, or 0).
    pub fn deadlock_action(mut self, action: Action) -> Self {
        self.deadlock_action = Some(action);
        self
    }

    fn resolve_battery(&self, n: usize) -> Vec<SchedulerKind> {
        self.battery
            .clone()
            .unwrap_or_else(|| SchedulerKind::battery(n))
    }

    fn resolve_coalitions(&self, n: usize) -> Vec<Vec<usize>> {
        self.coalitions
            .clone()
            .unwrap_or_else(|| subsets_up_to(n, self.k))
    }

    /// The resolved scheduler battery for an `n`-player plan, in grid
    /// order. A sweep's flat run index `r` decodes as
    /// `(battery[r / seeds], r % seeds)` with `seeds =`
    /// [`Self::seeds_per_kind`] — the decode the sharding plane's workers
    /// and witness re-enactment both rely on.
    pub fn resolved_battery(&self, n: usize) -> Vec<SchedulerKind> {
        self.resolve_battery(n)
    }

    /// Seeds sampled per scheduler kind.
    pub fn seeds_per_kind(&self) -> u64 {
        self.seeds
    }
}

// ---------------------------------------------------------------------------
// Sweep decomposition: leasable units and the shared render pipeline
// ---------------------------------------------------------------------------

/// A plan the conformance harness can sweep: batch-runnable, plus the
/// enumeration of its generated deviant cells for one coalition. The two
/// concrete plans implement this, which is what lets the sweep — local
/// thread fan-out and the sharded coordinator/worker plane alike — stay
/// generic over the game family.
pub trait SweepPlan: BatchRun + Sized {
    /// The generated `(strategy name, deviant plan)` cells for `coalition`
    /// under `cfg`. Names must be unique within one coalition: they are
    /// the portable half of a [`SweepUnit`]'s identity.
    fn deviant_cells(&self, coalition: &[usize], cfg: &Conformance) -> Vec<(String, Self)>;
}

impl SweepPlan for CheapTalkPlan {
    fn deviant_cells(&self, coalition: &[usize], _cfg: &Conformance) -> Vec<(String, Self)> {
        cheap_talk_deviant_cells(self, coalition)
    }
}

impl SweepPlan for MediatorPlan {
    fn deviant_cells(&self, coalition: &[usize], cfg: &Conformance) -> Vec<(String, Self)> {
        mediator_deviant_cells(self, coalition, cfg.deadlock_action)
    }
}

/// One leasable work unit of a conformance sweep: the honest baseline
/// (`strategy: None`) or one generated `(strategy, coalition)` cell. Every
/// unit runs the *same* `battery × seeds` grid, so the paired
/// common-random-number comparison against the baseline happens at render
/// time by flat run index — a unit can execute on any worker without
/// breaking the pairing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepUnit {
    /// Generated strategy name, or `None` for the honest baseline.
    pub strategy: Option<String>,
    /// The deviating coalition (empty for the baseline).
    pub coalition: Vec<usize>,
}

/// Decomposes a sweep into its units: the honest baseline first (unit 0),
/// then every `(coalition × strategy)` cell in sweep order. Validates the
/// coalition set exactly like the local sweep.
///
/// # Panics
///
/// Panics on an empty coalition set, an empty coalition, or an
/// out-of-range member — a mis-specified experiment, never a data error.
pub fn sweep_units<P: SweepPlan>(plan: &P, cfg: &Conformance) -> Vec<SweepUnit> {
    let n = plan.players();
    let coalitions = cfg.resolve_coalitions(n);
    assert!(!coalitions.is_empty(), "conformance needs a coalition set");
    for c in &coalitions {
        assert!(!c.is_empty(), "conformance coalitions must be non-empty");
        assert!(
            c.iter().all(|&m| m < n),
            "coalition member out of range: {c:?} (n = {n})"
        );
    }
    let mut units = vec![SweepUnit {
        strategy: None,
        coalition: Vec::new(),
    }];
    for coalition in &coalitions {
        for (strategy, _) in plan.deviant_cells(coalition, cfg) {
            units.push(SweepUnit {
                strategy: Some(strategy),
                coalition: coalition.clone(),
            });
        }
    }
    units
}

/// Rebuilds the concrete plan of one unit from its `(strategy, coalition)`
/// recipe — `None` when the strategy name is not one this plan generates
/// (a hostile or stale lease grant, surfaced as an error rather than a
/// panic by the shard worker).
pub fn sweep_unit_plan<P: SweepPlan>(plan: &P, unit: &SweepUnit, cfg: &Conformance) -> Option<P> {
    match &unit.strategy {
        None => Some(plan.clone()),
        Some(name) => plan
            .deviant_cells(&unit.coalition, cfg)
            .into_iter()
            .find(|(s, _)| s == name)
            .map(|(_, p)| p),
    }
}

/// Executes one unit's whole grid and returns the per-run resolved action
/// profiles in grid (kind-major, seed-minor) order — the portable result a
/// shard worker ships back. Utilities, intervals, and the verdict are all
/// deterministic functions of these profiles, which is what makes sharded
/// verdicts bit-identical to local ones.
pub fn run_sweep_unit<P: SweepPlan>(
    plan: &P,
    unit: &SweepUnit,
    cfg: &Conformance,
) -> Option<Vec<Vec<usize>>> {
    let cell = sweep_unit_plan(plan, unit, cfg)?;
    let set = cell
        .batch()
        .battery(cfg.resolved_battery(plan.players()))
        .seeds(0..cfg.seeds_per_kind())
        .run_batch();
    Some(set.runs().iter().map(|r| set.profile(&r.outcome)).collect())
}

/// Re-executes a single `(unit, run)` cell: the witness re-enactment path.
/// Returns the decoded `(kind, seed)`, the raw outcome (for trace-sink
/// recording), and the resolved profile. `None` when the run index falls
/// outside the grid or the unit's strategy is unknown.
pub fn run_sweep_cell<P: SweepPlan>(
    plan: &P,
    unit: &SweepUnit,
    cfg: &Conformance,
    run: usize,
) -> Option<(SchedulerKind, u64, Outcome, Vec<usize>)> {
    let battery = cfg.resolved_battery(plan.players());
    let seeds = cfg.seeds_per_kind() as usize;
    let kind = battery.get(run / seeds)?.clone();
    let seed = (run % seeds) as u64;
    let cell = sweep_unit_plan(plan, unit, cfg)?;
    let outcome = cell.run_one(&kind, seed);
    let profile = cell.resolve_mode().profile(&outcome, cell.players());
    Some((kind, seed, outcome, profile))
}

/// One swept cell: a coalition playing a generated strategy, accounted
/// against the honest baseline with paired confidence intervals.
#[derive(Debug, Clone)]
pub struct ConformanceCell {
    /// Generated strategy name.
    pub strategy: String,
    /// The deviating coalition.
    pub coalition: Vec<usize>,
    /// Sound interval for the *minimum* paired gain over the coalition
    /// (componentwise min of the member intervals). The resilience
    /// criterion needs **every** member to gain, so a violation requires
    /// this interval's `lo` past ε — i.e. every member's lower bound.
    pub gain: ConfidenceInterval,
    /// Per-member paired gains, aligned with `coalition`.
    pub member_gains: Vec<ConfidenceInterval>,
    /// Sound interval for the worst honest player's paired loss
    /// (componentwise max — the immunity side).
    pub harm: ConfidenceInterval,
}

/// A concrete, replayable violation: the strategy, the coalition, and one
/// `(scheduler, seed)` cell of the grid realizing the gain.
#[derive(Debug, Clone)]
pub struct DeviationWitness {
    /// Generated strategy name.
    pub strategy: String,
    /// The deviating coalition.
    pub coalition: Vec<usize>,
    /// Sound interval for the coalition's minimum member gain over the
    /// whole sweep (every member's gain lies above its `lo`).
    pub gain: ConfidenceInterval,
    /// Scheduler kind of the witnessing run.
    pub kind: SchedulerKind,
    /// Seed of the witnessing run.
    pub seed: u64,
    /// Resolved action profile of the honest run in the same grid cell.
    pub baseline_profile: Vec<usize>,
    /// Resolved action profile of the deviant run.
    pub deviant_profile: Vec<usize>,
    /// Index of the witnessing `(strategy, coalition)` unit in
    /// [`sweep_units`] order — the recipe the sharded coordinator leases
    /// back out to re-enact the witness cell.
    pub unit: usize,
    /// Flat run index of the witnessing cell within its unit's grid
    /// (kind-major, seed-minor; decodes via
    /// [`Conformance::resolved_battery`]).
    pub run: usize,
}

impl fmt::Display for DeviationWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "coalition {:?} playing '{}' gains {:.4} (95% CI [{:.4}, {:.4}]); \
             witness run: {:?} seed {} turns {:?} into {:?}",
            self.coalition,
            self.strategy,
            self.gain.mean,
            self.gain.lo,
            self.gain.hi,
            self.kind,
            self.seed,
            self.baseline_profile,
            self.deviant_profile,
        )
    }
}

/// The harness's decision.
#[derive(Debug, Clone)]
pub enum ConformanceVerdict {
    /// No generated coalition strategy gains more than ε, up to the
    /// reported statistical bound.
    Resilient {
        /// Largest upper confidence bound on any cell's gain.
        max_gain_hi: f64,
        /// Largest upper confidence bound on any cell's honest harm.
        max_harm_hi: f64,
    },
    /// A strategy whose gain lower bound clears ε: a profitable deviation.
    Violated(DeviationWitness),
    /// Some cell's interval straddles ε — more seeds needed to decide.
    Inconclusive {
        /// The undecidable strategy.
        strategy: String,
        /// Its coalition.
        coalition: Vec<usize>,
        /// The straddling interval.
        gain: ConfidenceInterval,
    },
}

/// The result of a conformance sweep.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// The ε bound checked.
    pub eps: f64,
    /// Coalition bound swept.
    pub k: usize,
    /// Malicious bound recorded.
    pub t: usize,
    /// Scheduler kinds swept.
    pub kinds: usize,
    /// Seeds per kind.
    pub seeds_per_kind: u64,
    /// Critical value of the intervals.
    pub z: f64,
    /// Honest per-player expected utilities.
    pub baseline: Vec<ConfidenceInterval>,
    /// Every swept (strategy × coalition) cell.
    pub cells: Vec<ConformanceCell>,
    /// The decision.
    pub verdict: ConformanceVerdict,
}

impl ConformanceReport {
    /// Whether the sweep certified ε-k-resilience.
    pub fn is_resilient(&self) -> bool {
        matches!(self.verdict, ConformanceVerdict::Resilient { .. })
    }

    /// The witnessing deviation, if the sweep found one.
    pub fn witness(&self) -> Option<&DeviationWitness> {
        match &self.verdict {
            ConformanceVerdict::Violated(w) => Some(w),
            _ => None,
        }
    }

    /// The largest gain point estimate across the sweep.
    pub fn max_gain(&self) -> f64 {
        self.cells
            .iter()
            .map(|c| c.gain.mean)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Renders the report as a small hand-rolled JSON document (the
    /// `CONFORMANCE.json` CI artifact; the offline serde shim does not
    /// serialize).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        fn ci(c: &ConfidenceInterval) -> String {
            format!(
                "{{ \"mean\": {:.6}, \"lo\": {:.6}, \"hi\": {:.6}, \"samples\": {} }}",
                c.mean, c.lo, c.hi, c.samples
            )
        }
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"eps\": {}, \"k\": {}, \"t\": {}, \"kinds\": {}, \"seeds_per_kind\": {}, \"z\": {},\n",
            self.eps, self.k, self.t, self.kinds, self.seeds_per_kind, self.z
        ));
        let verdict = match &self.verdict {
            ConformanceVerdict::Resilient {
                max_gain_hi,
                max_harm_hi,
            } => format!(
                "{{ \"kind\": \"resilient\", \"max_gain_hi\": {max_gain_hi:.6}, \"max_harm_hi\": {max_harm_hi:.6} }}"
            ),
            ConformanceVerdict::Violated(w) => format!(
                "{{ \"kind\": \"violated\", \"strategy\": \"{}\", \"coalition\": {:?}, \"gain\": {}, \"scheduler\": \"{}\", \"seed\": {} }}",
                esc(&w.strategy),
                w.coalition,
                ci(&w.gain),
                esc(&format!("{:?}", w.kind)),
                w.seed
            ),
            ConformanceVerdict::Inconclusive {
                strategy,
                coalition,
                gain,
            } => format!(
                "{{ \"kind\": \"inconclusive\", \"strategy\": \"{}\", \"coalition\": {:?}, \"gain\": {} }}",
                esc(strategy),
                coalition,
                ci(gain)
            ),
        };
        out.push_str(&format!("  \"verdict\": {verdict},\n"));
        out.push_str("  \"baseline\": [");
        for (i, b) in self.baseline.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&ci(b));
        }
        out.push_str("],\n  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"strategy\": \"{}\", \"coalition\": {:?}, \"gain\": {}, \"harm\": {} }}{}\n",
                esc(&c.strategy),
                c.coalition,
                ci(&c.gain),
                ci(&c.harm),
                if i + 1 == self.cells.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Componentwise minimum of several intervals: a sound (conservative)
/// interval for `min_i X_i` — the minimum lies below every `hi_i` and
/// above `min(lo_i)`.
fn interval_min(cis: &[ConfidenceInterval]) -> ConfidenceInterval {
    ConfidenceInterval {
        mean: cis.iter().map(|c| c.mean).fold(f64::INFINITY, f64::min),
        lo: cis.iter().map(|c| c.lo).fold(f64::INFINITY, f64::min),
        hi: cis.iter().map(|c| c.hi).fold(f64::INFINITY, f64::min),
        samples: cis.iter().map(|c| c.samples).min().unwrap_or(0),
    }
}

/// Componentwise maximum of several intervals (sound for `max_i X_i`).
fn interval_max(cis: &[ConfidenceInterval]) -> ConfidenceInterval {
    ConfidenceInterval {
        mean: cis.iter().map(|c| c.mean).fold(f64::NEG_INFINITY, f64::max),
        lo: cis.iter().map(|c| c.lo).fold(f64::NEG_INFINITY, f64::max),
        hi: cis.iter().map(|c| c.hi).fold(f64::NEG_INFINITY, f64::max),
        samples: cis.iter().map(|c| c.samples).min().unwrap_or(0),
    }
}

/// Per-run utility samples from resolved action profiles, indexed
/// `[player][run]` — the grid both sides of a paired comparison share.
/// Profiles (not outcomes) are the unit of exchange: they are what shard
/// workers ship back, and utilities are a pure function of them, so the
/// sharded and local pipelines compute bit-identical floats.
fn profile_utility_grid(
    profiles: &[Vec<usize>],
    game: &BayesianGame,
    types: &[usize],
) -> Vec<Vec<f64>> {
    let samples: Vec<(Vec<usize>, Vec<usize>)> = profiles
        .iter()
        .map(|p| (types.to_vec(), p.clone()))
        .collect();
    mediator_games::stats::utility_samples(game, &samples)
}

/// Renders a conformance report from the per-unit profile grids — the
/// single verdict pipeline shared by the local thread fan-out and the
/// sharded coordinator. `units` must be in [`sweep_units`] order (baseline
/// first); `profiles[i]` is unit `i`'s grid in kind-major, seed-minor run
/// order.
pub fn render_sweep_report(
    game: &BayesianGame,
    types: &[usize],
    cfg: &Conformance,
    units: &[SweepUnit],
    profiles: &[Vec<Vec<usize>>],
) -> ConformanceReport {
    let n = game.n();
    assert_eq!(types.len(), n, "type profile arity");
    assert_eq!(units.len(), profiles.len(), "one profile grid per unit");
    assert!(
        matches!(units.first(), Some(u) if u.strategy.is_none()),
        "unit 0 must be the honest baseline"
    );
    let battery = cfg.resolve_battery(n);

    let base_profiles = &profiles[0];
    let base_u = profile_utility_grid(base_profiles, game, types);
    let baseline: Vec<ConfidenceInterval> = base_u.iter().map(|xs| mean_ci(xs, cfg.z)).collect();

    let mut cells = Vec::new();
    let mut witness: Option<DeviationWitness> = None;
    let mut inconclusive: Option<(String, Vec<usize>, ConfidenceInterval)> = None;
    let mut max_gain_hi = f64::NEG_INFINITY;
    let mut max_harm_hi = f64::NEG_INFINITY;

    for (uidx, (unit, dev_profiles)) in units.iter().zip(profiles).enumerate().skip(1) {
        let strategy = unit
            .strategy
            .clone()
            .expect("deviant units carry a strategy");
        let coalition = &unit.coalition;
        let dev_u = profile_utility_grid(dev_profiles, game, types);
        let runs = dev_profiles.len();
        assert_eq!(runs, base_profiles.len(), "paired grids must align");

        // Paired per-member gains: same (kind, seed) cell on each side.
        let member_gains: Vec<ConfidenceInterval> = coalition
            .iter()
            .map(|&m| paired_gain_ci(&dev_u[m], &base_u[m], cfg.z))
            .collect();
        // The resilience criterion needs **every** member to gain, so
        // the cell's gain is the minimum over members — taken
        // componentwise, which is a sound interval for that minimum:
        // min(lo_m) bounds it below (a violation needs every member's
        // lower bound past ε) and min(hi_m) above (one member surely
        // ≤ ε kills the coalition's joint profit).
        let gain = interval_min(&member_gains);
        // Immunity side: the worst honest player's paired loss —
        // componentwise max over players, for the same reason.
        let honest_harms: Vec<ConfidenceInterval> = (0..n)
            .filter(|p| !coalition.contains(p))
            .map(|p| paired_gain_ci(&base_u[p], &dev_u[p], cfg.z))
            .collect();
        let harm = if honest_harms.is_empty() {
            ConfidenceInterval::point(0.0, runs)
        } else {
            interval_max(&honest_harms)
        };

        max_gain_hi = max_gain_hi.max(gain.hi);
        max_harm_hi = max_harm_hi.max(harm.hi);

        if gain.lo > cfg.eps && witness.is_none() {
            // Locate the grid cell realizing the largest joint gain.
            let best = (0..runs)
                .max_by(|&a, &b| {
                    let ga = coalition
                        .iter()
                        .map(|&m| dev_u[m][a] - base_u[m][a])
                        .fold(f64::INFINITY, f64::min);
                    let gb = coalition
                        .iter()
                        .map(|&m| dev_u[m][b] - base_u[m][b])
                        .fold(f64::INFINITY, f64::min);
                    ga.partial_cmp(&gb).expect("finite utilities")
                })
                .expect("non-empty run set");
            let seeds = cfg.seeds as usize;
            witness = Some(DeviationWitness {
                strategy: strategy.clone(),
                coalition: coalition.clone(),
                gain,
                kind: battery[best / seeds].clone(),
                seed: (best % seeds) as u64,
                baseline_profile: base_profiles[best].clone(),
                deviant_profile: dev_profiles[best].clone(),
                unit: uidx,
                run: best,
            });
        } else if gain.hi > cfg.eps && gain.lo <= cfg.eps && inconclusive.is_none() {
            inconclusive = Some((strategy.clone(), coalition.clone(), gain));
        }

        cells.push(ConformanceCell {
            strategy,
            coalition: coalition.clone(),
            gain,
            member_gains,
            harm,
        });
    }

    let verdict = if let Some(w) = witness {
        ConformanceVerdict::Violated(w)
    } else if let Some((strategy, coalition, gain)) = inconclusive {
        ConformanceVerdict::Inconclusive {
            strategy,
            coalition,
            gain,
        }
    } else {
        ConformanceVerdict::Resilient {
            max_gain_hi,
            max_harm_hi,
        }
    };

    ConformanceReport {
        eps: cfg.eps,
        k: cfg.k,
        t: cfg.t,
        kinds: battery.len(),
        seeds_per_kind: cfg.seeds,
        z: cfg.z,
        baseline,
        cells,
        verdict,
    }
}

/// Shared sweep core: decomposes into [`sweep_units`], runs every unit's
/// grid through the local batch runner, and renders the verdict — the
/// exact pipeline the sharded coordinator replays with remote workers in
/// place of the local loop.
fn sweep<P: SweepPlan>(
    plan: &P,
    game: &BayesianGame,
    types: &[usize],
    cfg: &Conformance,
) -> ConformanceReport {
    let n = plan.players();
    assert_eq!(game.n(), n, "game and plan disagree on player count");
    assert_eq!(types.len(), game.n(), "type profile arity");
    let units = sweep_units(plan, cfg);
    let profiles: Vec<Vec<Vec<usize>>> = units
        .iter()
        .map(|u| run_sweep_unit(plan, u, cfg).expect("sweep_units only names existing cells"))
        .collect();
    render_sweep_report(game, types, cfg, &units, &profiles)
}

/// Conformance sweep of a cheap-talk plan: every coalition of size ≤ k
/// plays every [`generated_battery`] strategy (each member running the
/// strategy's behavior), and the report decides ε-k-resilience.
pub fn cheap_talk_conformance(
    plan: &CheapTalkPlan,
    game: &BayesianGame,
    types: &[usize],
    cfg: &Conformance,
) -> ConformanceReport {
    sweep(plan, game, types, cfg)
}

/// The generated deviant cells of a cheap-talk plan for one coalition:
/// `(strategy name, deviant plan)` pairs, every coalition member running the
/// strategy's behavior. This is the single source the conformance sweep
/// iterates — and the lookup table deterministic replay uses to rebuild a
/// stored witness cell from its `(strategy, coalition)` recipe.
pub fn cheap_talk_deviant_cells(
    plan: &CheapTalkPlan,
    coalition: &[usize],
) -> Vec<(String, CheapTalkPlan)> {
    let n = plan.players();
    generated_battery(n, coalition)
        .into_iter()
        .map(|(name, behavior)| {
            let mut p = plan.clone();
            for &m in coalition {
                p = p.with_deviant(m, behavior.clone());
            }
            (name, p)
        })
        .collect()
}

/// Conformance sweep of a mediator-game plan: every coalition of size ≤ k
/// is wired as a [`GossipColluder`] clique under every [`collusion_battery`]
/// rule, plus message-level tamper strategies (drop-acks, delayed input)
/// applied to the honest player through the [`Tamper`] hook.
pub fn mediator_conformance(
    plan: &MediatorPlan,
    game: &BayesianGame,
    types: &[usize],
    cfg: &Conformance,
) -> ConformanceReport {
    sweep(plan, game, types, cfg)
}

/// The generated deviant cells of a mediator-game plan for one coalition:
/// gossip-clique colluders under each [`collusion_battery`] rule plus the
/// message-level tamper strategies, as `(strategy name, deviant plan)`
/// pairs. Single-sourced for the conformance sweep and for deterministic
/// replay of a stored witness (rebuild the cell from its
/// `(strategy, coalition, deadlock_action)` recipe).
pub fn mediator_deviant_cells(
    plan: &MediatorPlan,
    coalition: &[usize],
    deadlock_action: Option<Action>,
) -> Vec<(String, MediatorPlan)> {
    let n = plan.players();
    let wills = plan.spec().wills.clone();
    let inputs: Vec<Vec<Fp>> = plan.inputs().to_vec();
    let deadlock = deadlock_action;
    let mut cells: Vec<(String, MediatorPlan)> = Vec::new();
    let will_of = |m: usize| -> Action {
        deadlock
            .or_else(|| wills.as_ref().map(|w| w[m]))
            .unwrap_or(0)
    };
    // Gossip-clique colluders under each collusion rule. The battery
    // enumerates the rule *shapes*; the deadlock will is re-bound per
    // member (each member deadlocks with its own preferred action).
    for shape in collusion_battery(0) {
        let mut p = plan.clone();
        for &m in coalition {
            let partners: Vec<ProcessId> = coalition.iter().copied().filter(|&q| q != m).collect();
            let rule = match shape {
                CollusionRule::DeadlockOnBit { trigger, .. } => CollusionRule::DeadlockOnBit {
                    trigger,
                    will: will_of(m),
                },
                CollusionRule::AlwaysDeadlock { .. } => {
                    CollusionRule::AlwaysDeadlock { will: will_of(m) }
                }
                CollusionRule::AlwaysCooperate => CollusionRule::AlwaysCooperate,
            };
            let base_will = will_of(m);
            let input = inputs[m].clone();
            p = p.with_deviant(m, move || {
                Box::new(
                    GossipColluder::new(n, partners.clone(), rule, base_will)
                        .with_input(input.clone()),
                )
            });
        }
        cells.push((shape.name(), p));
    }
    // Message-level tampering of the honest strategy via the sim hook.
    let tampered: Vec<(&str, Vec<Scheduled>)> = vec![
        (
            "drop-acks",
            vec![Scheduled {
                window: Window::starting(1),
                primitive: Primitive::Drop,
            }],
        ),
        (
            "delay-input",
            vec![Scheduled {
                window: Window::between(0, 1),
                primitive: Primitive::Delay { release_at: 2 },
            }],
        ),
    ];
    for (name, steps) in tampered {
        let mut p = plan.clone();
        for &m in coalition {
            let input = inputs[m].clone();
            let will = wills.as_ref().map(|w| w[m]);
            let steps = steps.clone();
            p = p.with_deviant(m, move || {
                Box::new(Tamper::new(
                    crate::mediator::HonestMedPlayer::new(n, input.clone(), will),
                    TacticState::new(steps.clone()),
                ))
            });
        }
        cells.push((name.into(), p));
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use mediator_sim::TamperVerdict;

    fn msg(v: u64) -> MedMsg {
        MedMsg::Input {
            round: 0,
            value: vec![Fp::new(v)],
        }
    }

    #[test]
    fn windows_contain_expected_indices() {
        assert!(Window::all().contains(0));
        assert!(Window::all().contains(u64::MAX - 1));
        assert!(!Window::starting(5).contains(4));
        assert!(Window::starting(5).contains(5));
        let w = Window::between(2, 4);
        assert!(!w.contains(1) && w.contains(2) && w.contains(3) && !w.contains(4));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn window_rejects_inverted_bounds() {
        Window::between(4, 2);
    }

    #[test]
    fn tactic_state_drop_window() {
        let (_, b) = Deviation::named("d").drop_between(1, 3).build();
        let mut t = TacticState::new(b.tactics);
        assert!(matches!(t.apply(0, msg(1)), TamperVerdict::Deliver(_)));
        assert!(matches!(t.apply(0, msg(2)), TamperVerdict::Drop));
        assert!(matches!(t.apply(0, msg(3)), TamperVerdict::Drop));
        assert!(matches!(t.apply(0, msg(4)), TamperVerdict::Deliver(_)));
    }

    #[test]
    fn tactic_state_abort_is_permanent() {
        let (_, b) = Deviation::named("a").abort_at(2).build();
        let mut t = TacticState::new(b.tactics);
        assert!(matches!(t.apply(0, msg(1)), TamperVerdict::Deliver(_)));
        assert!(matches!(t.apply(0, msg(2)), TamperVerdict::Deliver(_)));
        for _ in 0..5 {
            assert!(matches!(t.apply(0, msg(3)), TamperVerdict::Drop));
        }
    }

    #[test]
    fn tactic_state_selective_silence_and_equivocation() {
        let (_, b) = Deviation::named("s")
            .silence_toward([2], 0)
            .equivocate([1], 5)
            .build();
        let mut t = TacticState::new(b.tactics);
        // To 0: untouched. To 1: corrupted. To 2: dropped.
        match t.apply(0, msg(10)) {
            TamperVerdict::Deliver(MedMsg::Input { value, .. }) => {
                assert_eq!(value[0], Fp::new(10));
            }
            other => panic!("expected clean delivery, got {other:?}"),
        }
        match t.apply(1, msg(10)) {
            TamperVerdict::Deliver(MedMsg::Input { value, .. }) => {
                assert_eq!(value[0], Fp::new(15));
            }
            other => panic!("expected corrupted delivery, got {other:?}"),
        }
        assert!(matches!(t.apply(2, msg(10)), TamperVerdict::Drop));
    }

    #[test]
    fn tactic_state_delay_holds_then_flushes() {
        let (_, b) = Deviation::named("d").delay(0, 2, 4).build();
        let mut t = TacticState::new(b.tactics);
        assert!(matches!(t.apply(0, msg(1)), TamperVerdict::Hold(_)));
        assert!(matches!(t.apply(0, msg(2)), TamperVerdict::Hold(_)));
        assert!(!t.should_flush(), "send counter 2 < release 4");
        assert!(matches!(t.apply(0, msg(3)), TamperVerdict::Deliver(_)));
        assert!(matches!(t.apply(0, msg(4)), TamperVerdict::Deliver(_)));
        assert!(t.should_flush(), "send counter reached release point");
        assert!(!t.should_flush(), "flush fires once");
    }

    #[test]
    fn corrupt_only_touches_value_messages() {
        let stop = MedMsg::Stop { action: 3 };
        assert_eq!(stop.clone().corrupt(9), stop);
        let inp = msg(1).corrupt(9);
        match inp {
            MedMsg::Input { value, .. } => assert_eq!(value[0], Fp::new(10)),
            other => panic!("unexpected {other:?}"),
        }
        use crate::cheap_talk::CtMsg;
        let fin = CtMsg::Finished.corrupt(9);
        assert_eq!(fin, CtMsg::Finished);
        let open = CtMsg::Mpc(MpcMsg::Open {
            id: 4,
            value: Fp::new(1),
        })
        .corrupt(9);
        assert_eq!(
            open,
            CtMsg::Mpc(MpcMsg::Open {
                id: 4,
                value: Fp::new(10)
            })
        );
    }

    #[test]
    fn generated_battery_names_are_distinct_and_victims_exclude_coalition() {
        let battery = generated_battery(5, &[1]);
        let names: BTreeSet<&str> = battery.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names.len(), battery.len(), "duplicate strategy names");
        for (name, b) in &battery {
            for s in &b.tactics {
                let victims = match &s.primitive {
                    Primitive::SilenceToward(v) => v.clone(),
                    Primitive::Equivocate { victims, .. } => victims.clone(),
                    _ => continue,
                };
                assert!(!victims.contains(&1), "{name}: coalition member victimized");
            }
        }
    }

    #[test]
    fn interval_min_requires_every_member_bound() {
        // One member's gain is certain (0.5), the other's straddles zero:
        // the coalition's min-gain interval must NOT clear ε — declaring a
        // violation on the certain member alone would contradict the
        // every-member-gains criterion.
        let certain = ConfidenceInterval {
            mean: 0.5,
            lo: 0.5,
            hi: 0.5,
            samples: 10,
        };
        let shaky = ConfidenceInterval {
            mean: 0.6,
            lo: -0.4,
            hi: 1.6,
            samples: 10,
        };
        let min = interval_min(&[certain, shaky]);
        assert_eq!(min.mean, 0.5);
        assert_eq!(min.lo, -0.4, "violation gated on every member's lo");
        assert_eq!(min.hi, 0.5, "one surely-bounded member caps the joint gain");
        let max = interval_max(&[certain, shaky]);
        assert_eq!((max.lo, max.hi), (0.5, 1.6));
    }

    #[test]
    fn cooperating_colluders_ack_multi_round_mediators() {
        // A naive mediator with an extra content-free round requires all n
        // acks for *every* round: cooperating colluders must ack rounds
        // past the leak round or even the control arm would deadlock the
        // game and the cooperate-vs-deadlock comparison would be vacuous.
        use mediator_circuits::catalog;
        let n = 4;
        let plan = crate::scenario::Scenario::mediator(catalog::counterexample_naive(n))
            .players(n)
            .tolerance(1, 0)
            .naive_split()
            .extra_rounds(1)
            .wills(vec![2; n])
            .build()
            .expect("n − k − t ≥ 1")
            .with_deviant(0, move || {
                Box::new(GossipColluder::new(
                    n,
                    [1],
                    CollusionRule::AlwaysCooperate,
                    2,
                ))
            })
            .with_deviant(1, move || {
                Box::new(GossipColluder::new(
                    n,
                    [0],
                    CollusionRule::AlwaysCooperate,
                    2,
                ))
            });
        for seed in 0..4 {
            let out = plan.run_with(&SchedulerKind::Random, seed);
            let moves: Vec<_> = out.moves[..n].to_vec();
            let b = moves[0].expect("cooperating colluder must reach STOP");
            assert!(b < 2, "coin bit");
            for (p, m) in moves.iter().enumerate() {
                assert_eq!(*m, Some(b), "player {p} seed {seed}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn sweep_rejects_empty_coalitions() {
        use mediator_circuits::catalog;
        let n = 5;
        let game = mediator_games::library::byzantine_agreement_game(n);
        let plan = crate::scenario::Scenario::cheap_talk(catalog::majority_circuit(n))
            .players(n)
            .tolerance(1, 0)
            .inputs(vec![vec![Fp::ONE]; n])
            .build()
            .expect("5 > 4");
        let _ = cheap_talk_conformance(
            &plan,
            &game,
            &vec![1; n],
            &Conformance::new(0.05, 1, 0).coalitions(vec![vec![]]),
        );
    }

    #[test]
    fn collusion_battery_covers_both_triggers_and_control() {
        let rules = collusion_battery(2);
        assert_eq!(rules.len(), 4);
        let names: BTreeSet<String> = rules.iter().map(CollusionRule::name).collect();
        assert!(names.contains("deadlock-if-bit=0"));
        assert!(names.contains("deadlock-if-bit=1"));
        assert!(names.contains("always-deadlock"));
        assert!(names.contains("pool-then-cooperate"));
    }
}
