//! The Even–Goldreich–Lempel baseline: gradual release, `O(1/ε)` messages.
//!
//! The paper's §1 comparison: EGL-style protocols achieve fairness-style
//! guarantees with expected `O(1/ε)` messages, while a punishment strategy
//! gives a *bounded* message count independent of ε. This module implements
//! a two-party gradual-release coin agreement: the joint coin is the XOR of
//! `2m` locally-drawn bits revealed alternately; aborting after any prefix
//! leaves the other party with a coin whose bias the aborter controls by at
//! most `1/(2m)`. Choosing `m = ⌈1/(2ε)⌉` yields advantage ≤ ε with exactly
//! `2m = Θ(1/ε)` messages — the curve experiment E9 plots against the flat
//! cost of the punishment-based cheap talk.

use mediator_sim::{Action, Ctx, Process, ProcessId, RandomScheduler, World};
use rand::Rng;

/// Number of messages the gradual-release protocol needs for advantage ε.
pub fn egl_message_count(eps: f64) -> u64 {
    assert!(eps > 0.0 && eps <= 1.0);
    2 * (1.0 / (2.0 * eps)).ceil() as u64
}

/// One gradual-release participant. Parties 0 and 1 alternate revealing one
/// bit; after `2m` reveals both output the XOR of everything.
pub struct GradualRelease {
    /// Total reveals (both parties combined).
    total: u64,
    seen: u64,
    acc: u64,
    /// Abort after revealing this many own bits (deviation knob).
    pub abort_after: Option<u64>,
    revealed: u64,
}

impl GradualRelease {
    /// Creates a participant for a `2m`-reveal exchange.
    pub fn new(total: u64) -> Self {
        GradualRelease {
            total,
            seen: 0,
            acc: 0,
            abort_after: None,
            revealed: 0,
        }
    }

    fn maybe_reveal(&mut self, ctx: &mut Ctx<u64>) {
        // Party 0 reveals on even counts, party 1 on odd.
        let my_turn = (self.seen % 2) as usize == ctx.me();
        if !my_turn || self.seen >= self.total {
            return;
        }
        if let Some(limit) = self.abort_after {
            if self.revealed >= limit {
                // Abort: output the current partial XOR.
                ctx.make_move(self.acc & 1);
                ctx.halt();
                return;
            }
        }
        let bit: bool = ctx.rng().gen();
        self.revealed += 1;
        self.absorb(bit as u64, ctx);
        let peer = 1 - ctx.me();
        ctx.send(peer, bit as u64);
    }

    fn absorb(&mut self, bit: u64, ctx: &mut Ctx<u64>) {
        self.acc ^= bit;
        self.seen += 1;
        // The current partial XOR is the coin an abort leaves us with —
        // kept in the will (Aumann–Hart executor semantics).
        ctx.set_will(self.acc & 1);
        if self.seen >= self.total {
            ctx.make_move(self.acc & 1);
            ctx.halt();
        }
    }
}

impl Process<u64> for GradualRelease {
    fn on_start(&mut self, ctx: &mut Ctx<u64>) {
        self.maybe_reveal(ctx);
    }
    fn on_message(&mut self, _src: ProcessId, bit: u64, ctx: &mut Ctx<u64>) {
        self.absorb(bit, ctx);
        self.maybe_reveal(ctx);
    }
}

/// Runs one exchange; returns `(coins, messages_sent)`. Coins are resolved
/// with the AH semantics: an aborted party's executor plays the partial
/// XOR from its will.
pub fn run_gradual_release(eps: f64, abort_after: Option<u64>, seed: u64) -> (Vec<Action>, u64) {
    let total = egl_message_count(eps);
    let mut a = GradualRelease::new(total);
    let b = GradualRelease::new(total);
    a.abort_after = abort_after;
    let procs: Vec<Box<dyn Process<u64>>> = vec![Box::new(a), Box::new(b)];
    let mut world = World::new(procs, seed);
    let out = world.run(&mut RandomScheduler::new(), 1_000_000);
    (out.resolve_ah(&[0, 0]), out.messages_sent)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_count_scales_inversely_with_eps() {
        assert_eq!(egl_message_count(0.5), 2);
        assert_eq!(egl_message_count(0.1), 10);
        assert_eq!(egl_message_count(0.01), 100);
        assert_eq!(egl_message_count(0.001), 1000);
    }

    #[test]
    fn honest_exchange_agrees_on_the_coin() {
        for seed in 0..10 {
            let (coins, msgs) = run_gradual_release(0.1, None, seed);
            assert_eq!(coins[0], coins[1], "seed {seed}");
            assert!(coins[0] == 0 || coins[0] == 1);
            assert_eq!(msgs, 10);
        }
    }

    #[test]
    fn coin_is_roughly_fair() {
        let mut ones = 0;
        let runs = 200;
        for seed in 0..runs {
            let (coins, _) = run_gradual_release(0.25, None, seed);
            ones += coins[0];
        }
        assert!((50..150).contains(&ones), "biased: {ones}/{runs}");
    }

    #[test]
    fn aborter_advantage_is_bounded_by_eps() {
        // Party 0 aborts after 1 reveal; party 1's executor plays the
        // partial XOR from its will. Over many runs party 1's coin stays
        // close to fair — the bias the aborter can induce is ≤ 1/(2m) = ε.
        let eps = 0.05f64;
        let runs = 400u64;
        let mut ones = 0u64;
        for seed in 0..runs {
            let (coins, _) = run_gradual_release(eps, Some(1), seed);
            ones += coins[1];
        }
        let freq = ones as f64 / runs as f64;
        // Sampling noise at 400 runs ≈ 0.025 (1σ); allow 3σ + ε.
        assert!((freq - 0.5).abs() < eps + 0.08, "freq {freq}");
    }
}
