//! Implementing mediators with asynchronous cheap talk — the paper's
//! primary contribution (Abraham–Dolev–Geffner–Halpern, PODC 2019).
//!
//! This crate ties the substrates together into the objects the paper
//! reasons about:
//!
//! * [`mediator`] — **mediator games** `Γ_d`: the underlying Bayesian game
//!   extended with a trusted-mediator process speaking the *canonical form*
//!   of §2 (players send their input, respond to each non-STOP round, act
//!   on STOP), including the §6.4 *naive* two-round mediator that leaks
//!   `a + b·i (mod 2)` before revealing the action.
//! * [`cheap_talk`] — **cheap-talk games** `Γ_CT`: the mediator replaced by
//!   the asynchronous MPC engine, in the four parameterizations of
//!   Theorems 4.1 (robust, `n > 4k+4t`), 4.2 (ε, `n > 3k+3t`),
//!   4.4 (punishment wills + cotermination barrier, `n > 3k+4t`) and
//!   4.5 (ε + punishment, `n > 2k+3t`), with both infinite-play semantics
//!   (default moves and Aumann–Hart wills).
//! * [`min_info`] — the Lemma 6.8 **minimally informative mediator**:
//!   scheduler-equivalence-class counting (`(2rn)(4rn)(4rn)!/(r!)^{2n}`),
//!   the least round count `R` with `(Rn)! ≥ classes`, and the
//!   `2^{O(N log N)}`-vs-`O(n)` message-cost table.
//! * [`scenario`] — the **Scenario API**: the builder-first experiment
//!   surface (`Scenario::cheap_talk(…)` / `Scenario::mediator(…)`) with
//!   build-time theorem-threshold validation, the multi-threaded
//!   `(scheduler × seed)` batch runner ([`RunSet`]), and steppable
//!   [`Session`](mediator_sim::Session)s. The free functions above are
//!   thin wrappers over it.
//! * [`implement`] — empirical **implementation checking**: outcome
//!   distributions under scheduler batteries, compared with the paper's
//!   set-distance (both directions for implementation, one direction for
//!   weak implementation).
//! * [`deviations`] — the deviation library (silence, crashes, input lies,
//!   opening lies, §6.4 deadlock collusion) and robustness reports
//!   (empirical ε-(k,t)-robustness over the battery).
//! * [`adversary`] — the **adversary plane**: message-level deviation
//!   primitives (drop, delay-until-phase, equivocate, selective silence,
//!   abort-at-round) composed per-phase and per-coalition by a combinator
//!   DSL, generalized §6.4 gossip colluders, and the **conformance
//!   harness** that sweeps generated coalition strategies × scheduler
//!   battery × seeds and renders an ε-k-resilience verdict with confidence
//!   intervals — or a concrete witnessing deviation.
//! * [`frontier`] — the **lower-bound frontier atlas**: an `(n, k, t)`
//!   grid straddling each theorem's boundary, every cell classified by
//!   experiment (the theorem's own construction above the line, the §6.4
//!   companion attack below it) and machine-checked against the theorem
//!   predicate cell for cell, rendered as a deterministic `FRONTIER.json`.
//! * [`egl`] — the Even–Goldreich–Lempel `O(1/ε)`-messages baseline the
//!   paper compares against in §1.
//! * [`lease`] — pure lease accounting ([`lease::LeaseLedger`]) for the
//!   sharded conformance plane: exactly-once unit completion under worker
//!   churn, proptested here without any transport in the loop.
//! * [`report`] — plain-text/markdown tables for the experiment harness.

pub mod adversary;
pub mod cheap_talk;
pub mod deviations;
pub mod egl;
pub mod frontier;
pub mod implement;
pub mod lease;
pub mod mediator;
pub mod min_info;
pub mod report;
pub mod scenario;

pub use adversary::{
    render_sweep_report, run_sweep_cell, run_sweep_unit, sweep_unit_plan, sweep_units, Conformance,
    ConformanceReport, ConformanceVerdict, Deviation, DeviationWitness, SweepPlan, SweepUnit,
};
pub use cheap_talk::{run_cheap_talk, CheapTalkPlayer, CheapTalkSpec, CtMsg, CtVariant};
pub use deviations::{Behavior, RobustnessReport};
pub use frontier::{
    run_frontier_local, CellClass, CellExperiment, CellResult, FrontierAtlas, FrontierCell,
    FrontierSpec, PreparedCell, TheoremBand,
};
pub use lease::{LeaseLedger, Reclaim};
pub use mediator::{run_mediator_game, MedMsg, MediatorGameSpec};
pub use scenario::{
    Batch, CheapTalkPlan, MediatorPlan, Resolve, RunRecord, RunSet, Scenario, ScenarioError,
    SessionPlan, Theorem,
};
