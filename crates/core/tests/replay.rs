//! Scenario-level deterministic replay: a recorded run's trace, fed back as
//! a [`SchedulerKind::Replay`] script, re-enacts the run byte-for-byte.
//!
//! The sim crate pins replay at the `World` level; these tests pin the
//! `Scenario` seam the trace store drives — the plan rebuilds the exact
//! processes (honest players, deviant cells, relaxed mediator blackouts)
//! from its own configuration, so `(plan, seed, script)` is a complete
//! run recipe.

use mediator_circuits::catalog;
use mediator_core::adversary::{cheap_talk_deviant_cells, mediator_deviant_cells};
use mediator_core::scenario::Scenario;
use mediator_field::Fp;
use mediator_sim::{Outcome, ReplayScript, SchedulerKind};

fn assert_replayed(recorded: &Outcome, replayed: &Outcome, label: &str) {
    assert_eq!(
        replayed.trace.events(),
        recorded.trace.events(),
        "trace: {label}"
    );
    assert_eq!(replayed.moves, recorded.moves, "moves: {label}");
    assert_eq!(replayed.wills, recorded.wills, "wills: {label}");
    assert_eq!(replayed.halted, recorded.halted, "halted: {label}");
    assert_eq!(
        replayed.termination, recorded.termination,
        "termination: {label}"
    );
}

fn mediator_plan(n: usize) -> mediator_core::scenario::MediatorPlan {
    Scenario::mediator(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0)
        .inputs((0..n).map(|i| vec![Fp::new((i % 2) as u64)]).collect())
        .build()
        .expect("threshold satisfied")
}

#[test]
fn mediator_plan_replays_battery_exactly() {
    let n = 5;
    let plan = mediator_plan(n);
    for kind in SchedulerKind::battery(n + 1) {
        for seed in 0..32 {
            let recorded = plan.run_with(&kind, seed);
            let script = ReplayScript::new(recorded.trace.events().to_vec());
            let replayed = plan.run_with(&SchedulerKind::Replay(script), seed);
            assert_replayed(&recorded, &replayed, &format!("{kind:?} seed {seed}"));
        }
    }
}

#[test]
fn relaxed_mediator_recording_replays() {
    // A relaxed recording carries `Dropped` events; replay re-enables the
    // drop capability from the script itself (no plan change needed).
    let n = 5;
    let plan = mediator_plan(n);
    for seed in 0..32 {
        let recorded = plan.run_relaxed(6, seed);
        let script = ReplayScript::new(recorded.trace.events().to_vec());
        assert!(
            script.has_drops(),
            "blackout produced no drops (seed {seed})"
        );
        let replayed = plan.run_with(&SchedulerKind::Replay(script), seed);
        assert_replayed(&recorded, &replayed, &format!("relaxed seed {seed}"));
    }
}

#[test]
fn mediator_deviant_cells_replay() {
    // The witness path: a deviant cell rebuilt by `mediator_deviant_cells`
    // replays its own recording — what `experiments -- --replay` does with
    // a stored witness recipe.
    let n = 5;
    let plan = mediator_plan(n);
    let coalition = vec![0usize];
    for (strategy, cell) in mediator_deviant_cells(&plan, &coalition, Some(0)) {
        for seed in 0..4 {
            let recorded = cell.run_with(&SchedulerKind::Random, seed);
            let script = ReplayScript::new(recorded.trace.events().to_vec());
            let replayed = cell.run_with(&SchedulerKind::Replay(script), seed);
            assert_replayed(&recorded, &replayed, &format!("{strategy} seed {seed}"));
        }
    }
}

#[test]
fn cheap_talk_plan_replays_spot_checks() {
    // Cheap-talk runs move thousands of messages; a couple of cells pin the
    // plan seam (the sim suite covers the scheduler battery exhaustively).
    let n = 5;
    let plan = Scenario::cheap_talk(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0)
        .inputs(vec![vec![Fp::ONE]; n])
        .build()
        .expect("threshold satisfied");
    for kind in [SchedulerKind::Random, SchedulerKind::Lifo] {
        for seed in 0..2 {
            let recorded = plan.run_with(&kind, seed);
            let script = ReplayScript::new(recorded.trace.events().to_vec());
            let replayed = plan.run_with(&SchedulerKind::Replay(script), seed);
            assert_replayed(&recorded, &replayed, &format!("{kind:?} seed {seed}"));
        }
    }
}

#[test]
fn cheap_talk_deviant_cell_replays() {
    let n = 5;
    let plan = Scenario::cheap_talk(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0)
        .inputs(vec![vec![Fp::ONE]; n])
        .build()
        .expect("threshold satisfied");
    let cells = cheap_talk_deviant_cells(&plan, &[0]);
    let (strategy, cell) = cells
        .iter()
        .find(|(name, _)| name == "silent")
        .expect("generated battery contains the silent strategy");
    let recorded = cell.run_with(&SchedulerKind::Random, 1);
    let script = ReplayScript::new(recorded.trace.events().to_vec());
    let replayed = cell.run_with(&SchedulerKind::Replay(script), 1);
    assert_replayed(&recorded, &replayed, strategy);
}

#[test]
fn session_replay_matches_run_replay() {
    // The steppable session drives the identical replay: `session_with`
    // applies the same replay tuning as `run_with`.
    let n = 5;
    let plan = mediator_plan(n);
    let recorded = plan.run_with(&SchedulerKind::Lifo, 7);
    let script = ReplayScript::new(recorded.trace.events().to_vec());
    let session = plan.session_with(&SchedulerKind::Replay(script), 7);
    let replayed = session.finish();
    assert_replayed(&recorded, &replayed, "session replay");
}
