//! Property tests: the `Scenario` builder accepts exactly the `(n, k, t)`
//! triples satisfying each theorem's resilience bound — 4.1: `n > 4k+4t`,
//! 4.2: `n > 3k+3t`, 4.4: `n > 3k+4t`, 4.5: `n > 2k+3t` — and returns the
//! typed [`ScenarioError::Threshold`] (never a panic) otherwise. The
//! `allow_sub_threshold()` escape hatch waives exactly the theorem check
//! (the frontier atlas builds its below-boundary cells through it) while
//! `k + t < n` stays enforced.

use mediator_circuits::catalog;
use mediator_core::scenario::{Scenario, ScenarioError, Theorem};
use proptest::prelude::*;

/// Builds a majority-circuit cheap-talk scenario in the given regime and
/// returns the builder verdict. `hatch` engages `allow_sub_threshold()`.
fn try_build_with(
    theorem: Theorem,
    n: usize,
    k: usize,
    t: usize,
    hatch: bool,
) -> Result<(), ScenarioError> {
    let mut builder = Scenario::cheap_talk(catalog::majority_circuit(n))
        .players(n)
        .tolerance(k, t);
    builder = match theorem {
        Theorem::Robust41 => builder,
        Theorem::Epsilon42 => builder.epsilon(2),
        Theorem::Punishment44 => builder.wills(vec![5; n]),
        Theorem::EpsilonPunishment45 => builder.epsilon(2).wills(vec![5; n]),
    };
    if hatch {
        builder = builder.allow_sub_threshold();
    }
    assert_eq!(builder.selected_theorem(), theorem);
    builder.build().map(|_| ())
}

fn try_build(theorem: Theorem, n: usize, k: usize, t: usize) -> Result<(), ScenarioError> {
    try_build_with(theorem, n, k, t, false)
}

/// The oracle each proptest checks the builder against.
fn bound_of(theorem: Theorem, k: usize, t: usize) -> usize {
    match theorem {
        Theorem::Robust41 => 4 * k + 4 * t,
        Theorem::Epsilon42 => 3 * k + 3 * t,
        Theorem::Punishment44 => 3 * k + 4 * t,
        Theorem::EpsilonPunishment45 => 2 * k + 3 * t,
    }
}

fn assert_exact_threshold(theorem: Theorem, n: usize, k: usize, t: usize) {
    let verdict = try_build(theorem, n, k, t);
    if n > bound_of(theorem, k, t) {
        assert!(
            verdict.is_ok(),
            "{theorem} must accept n = {n}, k = {k}, t = {t}: {verdict:?}"
        );
    } else {
        match verdict {
            Err(ScenarioError::Threshold {
                theorem: reported,
                n: rn,
                k: rk,
                t: rt,
            }) => {
                assert_eq!((reported, rn, rk, rt), (theorem, n, k, t));
            }
            other => panic!("{theorem} must reject n = {n}, k = {k}, t = {t}: {other:?}"),
        }
    }
}

proptest! {
    #[test]
    fn theorem_4_1_accepts_exactly_n_above_4k_4t(n in 1usize..28, k in 0usize..4, t in 0usize..4) {
        assert_exact_threshold(Theorem::Robust41, n, k, t);
    }

    #[test]
    fn theorem_4_2_accepts_exactly_n_above_3k_3t(n in 1usize..28, k in 0usize..4, t in 0usize..4) {
        assert_exact_threshold(Theorem::Epsilon42, n, k, t);
    }

    #[test]
    fn theorem_4_4_accepts_exactly_n_above_3k_4t(n in 1usize..28, k in 0usize..4, t in 0usize..4) {
        assert_exact_threshold(Theorem::Punishment44, n, k, t);
    }

    #[test]
    fn theorem_4_5_accepts_exactly_n_above_2k_3t(n in 1usize..28, k in 0usize..4, t in 0usize..4) {
        assert_exact_threshold(Theorem::EpsilonPunishment45, n, k, t);
    }

    #[test]
    fn rejections_carry_the_least_admissible_n(k in 0usize..5, t in 0usize..5) {
        // At exactly the bound the builder rejects and reports the fix.
        for theorem in [
            Theorem::Robust41,
            Theorem::Epsilon42,
            Theorem::Punishment44,
            Theorem::EpsilonPunishment45,
        ] {
            let bound = bound_of(theorem, k, t);
            if bound == 0 {
                continue; // k = t = 0: every n ≥ 1 is admissible
            }
            let err = try_build(theorem, bound, k, t).expect_err("n = bound violates n > bound");
            prop_assert_eq!(err.required_n(), Some(bound + 1));
            // One more player satisfies the theorem.
            prop_assert!(try_build(theorem, bound + 1, k, t).is_ok());
        }
    }

    #[test]
    fn the_escape_hatch_waives_exactly_the_theorem_check(
        n in 1usize..20,
        k in 0usize..4,
        t in 0usize..4,
    ) {
        // With `allow_sub_threshold()` the build verdict depends only on
        // the basic sanity bound: a sharing degree of k + t needs strictly
        // more than k + t evaluation points, theorem or no theorem.
        for theorem in [
            Theorem::Robust41,
            Theorem::Epsilon42,
            Theorem::Punishment44,
            Theorem::EpsilonPunishment45,
        ] {
            let verdict = try_build_with(theorem, n, k, t, true);
            if k + t < n {
                prop_assert!(
                    verdict.is_ok(),
                    "hatch must build {theorem} at n = {n}, k = {k}, t = {t}: {verdict:?}"
                );
            } else {
                prop_assert_eq!(
                    verdict,
                    Err(ScenarioError::ToleranceTooLarge { n, k, t }),
                    "hatch must still reject k + t ≥ n"
                );
            }
        }
    }
}

#[test]
fn the_sec64_point_is_rejected_strictly_and_built_by_the_hatch() {
    // The §6.4 frontier cell: n = 7 ≤ 4k + 4t = 8 under Theorem 4.1. The
    // strict builder names the least admissible n; the hatch constructs
    // the very same point for the atlas's below-boundary experiments.
    let err = try_build(Theorem::Robust41, 7, 2, 0).expect_err("7 ≤ 8");
    assert_eq!(err.required_n(), Some(9));
    assert!(try_build_with(Theorem::Robust41, 7, 2, 0, true).is_ok());
}

#[test]
fn the_hatch_is_a_no_op_above_the_boundary() {
    // Admitted points build identically with or without the hatch.
    assert!(try_build(Theorem::Robust41, 9, 2, 0).is_ok());
    assert!(try_build_with(Theorem::Robust41, 9, 2, 0, true).is_ok());
}
