//! Property-based invariants of the sharded-sweep bookkeeping layer:
//! the [`LeaseLedger`] completes every grid unit **exactly once** under
//! arbitrary worker churn, and [`OutcomeDist::merge`] of per-shard
//! empirical distributions equals the pooled local distribution — the two
//! laws the wire-level differential tests in `mediator-net` silently
//! lean on.

use std::collections::BTreeSet;

use mediator_core::{LeaseLedger, Reclaim};
use mediator_games::dist::{l1_distance, OutcomeDist};
use proptest::prelude::*;

/// Drives a ledger through a churn script — interleaved grants,
/// completions, duplicate completions, expiries, and worker deaths — then
/// drains whatever remains. Returns the set of units whose `complete`
/// call *counted* (returned `true`), plus the duplicate/refused tallies
/// the script accrued.
fn churn(n: u64, script: &[u32]) -> (LeaseLedger, BTreeSet<u64>, usize) {
    let mut ledger = LeaseLedger::new();
    for unit in 0..n {
        ledger.enqueue(unit);
    }
    let mut counted = BTreeSet::new();
    let mut refused = 0usize;
    let mut now = 0u64;
    // Leases currently believed held, per worker (the script's model of
    // the in-flight world; the ledger is the source of truth).
    let mut held: Vec<(u64, u64)> = Vec::new(); // (worker, unit)
    let deadline = 10;

    let count =
        |ledger: &mut LeaseLedger, unit: u64, counted: &mut BTreeSet<u64>, refused: &mut usize| {
            if ledger.complete(unit) {
                assert!(counted.insert(unit), "unit {unit} counted twice");
            } else {
                *refused += 1;
            }
        };

    for &op in script {
        now += u64::from(op % 7); // uneven clock advance
        match op % 5 {
            // Grant to one of four workers.
            0 => {
                let worker = u64::from(op / 5 % 4);
                if let Some(unit) = ledger.grant(worker, now, deadline) {
                    held.push((worker, unit));
                }
            }
            // Complete a held lease (honest worker finishes).
            1 => {
                if !held.is_empty() {
                    let (_, unit) = held.remove(op as usize % held.len());
                    count(&mut ledger, unit, &mut counted, &mut refused);
                }
            }
            // Duplicate: re-complete a unit that already counted.
            2 => {
                if let Some(&unit) = counted.iter().next() {
                    count(&mut ledger, unit, &mut counted, &mut refused);
                }
            }
            // Deadline sweep: lapsed leases fall out of the held model.
            3 => {
                let lapsed: BTreeSet<u64> = ledger.expire(now).iter().map(Reclaim::unit).collect();
                held.retain(|(_, u)| !lapsed.contains(u));
            }
            // A worker dies with everything it held.
            _ => {
                let worker = u64::from(op / 5 % 4);
                let gone = ledger.vanish(worker);
                assert!(gone
                    .iter()
                    .all(|r| matches!(r, Reclaim::Vanished { worker: w, .. } if *w == worker)));
                held.retain(|(w, _)| *w != worker);
            }
        }
    }

    // Drain: a fresh worker leases and completes whatever churn left
    // behind. Leases the script abandoned (held but never completed nor
    // reclaimed) must first lapse, exactly as the coordinator's expiry
    // heartbeat would force.
    loop {
        ledger.expire(u64::MAX);
        match ledger.grant(99, now, deadline) {
            Some(unit) => count(&mut ledger, unit, &mut counted, &mut refused),
            None => break,
        }
    }
    (ledger, counted, refused)
}

proptest! {
    #[test]
    fn every_unit_completes_exactly_once_under_churn(
        n in 1u64..12,
        script in proptest::collection::vec(0u32..100, 0..120),
    ) {
        let (ledger, counted, refused) = churn(n, &script);
        // Exactly-once: each of the n units counted once, none missed.
        prop_assert_eq!(counted.len(), n as usize, "every unit counted");
        prop_assert!(counted.iter().all(|&u| u < n));
        prop_assert!(ledger.all_done());
        prop_assert_eq!(ledger.outstanding(), 0);
        prop_assert_eq!(ledger.pending(), 0);
        prop_assert_eq!(ledger.len(), n as usize);
        // Accounting: every non-counting completion was tallied as a
        // discard, and nothing was ever granted after done.
        prop_assert_eq!(ledger.discarded, refused, "discard tally");
        let mut ledger = ledger;
        prop_assert_eq!(ledger.grant(7, 0, 10), None, "nothing left to lease");
    }

    #[test]
    fn next_due_is_the_min_outstanding_deadline(
        starts in proptest::collection::vec(0u64..50, 1..8),
    ) {
        // Stagger one lease per start tick; next_due must always be the
        // minimum unexpired deadline, and empty once all complete.
        let mut ledger = LeaseLedger::new();
        for (unit, _) in starts.iter().enumerate() {
            ledger.enqueue(unit as u64);
        }
        let deadline = 10;
        for (unit, &start) in starts.iter().enumerate() {
            prop_assert_eq!(ledger.grant(unit as u64, start, deadline), Some(unit as u64));
        }
        let min_due = starts.iter().map(|s| s + deadline).min().expect("nonempty");
        prop_assert_eq!(ledger.next_due(), Some(min_due));
        for unit in 0..starts.len() as u64 {
            ledger.complete(unit);
        }
        prop_assert_eq!(ledger.next_due(), None, "no leases outstanding");
    }

    #[test]
    fn sharded_dist_merge_equals_pooled(
        samples in proptest::collection::vec(0usize..4, 1..48),
        cuts in proptest::collection::vec(1usize..48, 0..4),
    ) {
        // Split the run list at arbitrary shard boundaries (exactly how
        // the coordinator reassembles per-unit profile chunks), build a
        // per-shard empirical distribution, and merge weighted by shard
        // sample counts: the result must be the pooled distribution of
        // the undivided run list.
        let pooled = OutcomeDist::from_samples(samples.iter().map(|&s| vec![s]));
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % samples.len()).collect();
        bounds.push(0);
        bounds.push(samples.len());
        bounds.sort_unstable();
        bounds.dedup();
        let shards: Vec<OutcomeDist> = bounds
            .windows(2)
            .map(|w| OutcomeDist::from_samples(samples[w[0]..w[1]].iter().map(|&s| vec![s])))
            .collect();
        let weights: Vec<f64> = bounds.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let merged = OutcomeDist::merge(shards.iter().zip(weights));
        prop_assert!((merged.total() - 1.0).abs() < 1e-9, "proper distribution");
        prop_assert!(
            l1_distance(&pooled, &merged) < 1e-9,
            "merge of shard splits != pooled"
        );
        // Sample-count conservation: each profile's merged mass times the
        // total run count recovers its integer frequency.
        let n = samples.len();
        for (profile, p) in merged.iter() {
            let freq = samples.iter().filter(|&&s| vec![s] == *profile).count();
            prop_assert!((p * n as f64 - freq as f64).abs() < 1e-9);
        }
    }
}
