//! Property tests for the frontier atlas's grid enumeration: every
//! `(k, t, offset)` combination in a band's requested ranges appears
//! exactly once (modulo the documented `n ≥ 1` cut), every cell's
//! `admits` tag matches the theorem predicate `n > B(k, t)`, and the
//! enumeration order is deterministic — band order, then lexicographic
//! `(k, t, offset)`.

use std::collections::HashSet;

use mediator_core::frontier::{FrontierCell, FrontierSpec, TheoremBand, ALL_THEOREMS};
use proptest::prelude::*;

/// Assembles a band from seven scalar draws (the offline proptest shim
/// generates tuples through the macro's bindings, not tuple strategies).
#[allow(clippy::too_many_arguments)]
fn band(thm: usize, k0: usize, kw: usize, t0: usize, tw: usize, o0: i64, ow: i64) -> TheoremBand {
    TheoremBand::new(
        ALL_THEOREMS[thm % ALL_THEOREMS.len()],
        (k0, k0 + kw),
        (t0, t0 + tw),
        (o0, o0 + ow),
    )
}

/// The brute-force reference: the set of cells a band denotes.
fn reference(band: &TheoremBand) -> HashSet<FrontierCell> {
    let mut set = HashSet::new();
    for k in band.k.0..=band.k.1 {
        for t in band.t.0..=band.t.1 {
            for off in band.offsets.0..=band.offsets.1 {
                let n = band.theorem.lower_bound(k, t) as i64 + off;
                if n >= 1 {
                    set.insert(FrontierCell {
                        theorem: band.theorem,
                        n: n as usize,
                        k,
                        t,
                    });
                }
            }
        }
    }
    set
}

proptest! {
    #[test]
    fn every_requested_cell_appears_exactly_once(
        thm in 0usize..4,
        k0 in 0usize..4, kw in 0usize..3,
        t0 in 0usize..4, tw in 0usize..3,
        o0 in -4i64..4, ow in 0i64..4,
    ) {
        let band = band(thm, k0, kw, t0, tw, o0, ow);
        let cells = band.cells();
        // No duplicates: within one theorem each (k, t, offset) denotes a
        // distinct (n, k, t) point.
        let unique: HashSet<_> = cells.iter().copied().collect();
        prop_assert_eq!(unique.len(), cells.len(), "duplicate cells in {:?}", band);
        // Exactly the reference set: nothing missing, nothing invented.
        prop_assert_eq!(unique, reference(&band));
    }

    #[test]
    fn admits_tags_match_the_theorem_predicate(
        thm in 0usize..4,
        k0 in 0usize..4, kw in 0usize..3,
        t0 in 0usize..4, tw in 0usize..3,
        o0 in -4i64..4, ow in 0i64..4,
    ) {
        for cell in band(thm, k0, kw, t0, tw, o0, ow).cells() {
            let bound = cell.theorem.lower_bound(cell.k, cell.t);
            prop_assert_eq!(cell.bound(), bound);
            prop_assert_eq!(
                cell.admits(),
                cell.n > bound,
                "cell {} mistagged against {}",
                cell.key(),
                cell.theorem
            );
        }
    }

    #[test]
    fn enumeration_order_is_deterministic_and_lexicographic(
        thm in 0usize..4,
        k0 in 0usize..4, kw in 0usize..3,
        t0 in 0usize..4, tw in 0usize..3,
        o0 in -4i64..4, ow in 0i64..4,
    ) {
        let band = band(thm, k0, kw, t0, tw, o0, ow);
        let first = band.cells();
        // Deterministic across calls.
        prop_assert_eq!(&first, &band.cells());
        // Documented order: k ascending, then t, then offset (which at
        // fixed (k, t) is n ascending).
        let order: Vec<_> = first
            .iter()
            .map(|c| (c.k, c.t, c.n as i64 - c.bound() as i64))
            .collect();
        let mut sorted = order.clone();
        sorted.sort();
        prop_assert_eq!(order, sorted);
    }

    #[test]
    fn multi_band_specs_concatenate_in_band_order(
        a in 0usize..4, b in 0usize..4,
        k0 in 0usize..4, t0 in 0usize..3,
        o0 in -3i64..2, ow in 0i64..3,
    ) {
        // Two-band specs (possibly the same theorem twice) enumerate as
        // the concatenation of their bands, in spec order.
        let bands = vec![
            band(a, k0, 1, t0, 0, o0, ow),
            band(b, k0, 0, t0, 1, o0, ow),
        ];
        let spec = FrontierSpec {
            name: "prop".to_string(),
            bands: bands.clone(),
            ..FrontierSpec::fast()
        };
        let concatenated: Vec<_> = bands.iter().flat_map(TheoremBand::cells).collect();
        prop_assert_eq!(spec.cells(), concatenated);
    }
}

#[test]
fn the_shipped_grids_enumerate_deterministically() {
    for spec in [
        FrontierSpec::fast(),
        FrontierSpec::full(),
        FrontierSpec::tiny(),
    ] {
        assert_eq!(spec.cells(), spec.cells(), "{} grid drifted", spec.name);
        // Shipped grids contain no degenerate duplicates either.
        let unique: HashSet<_> = spec.cells().into_iter().collect();
        assert_eq!(unique.len(), spec.cells().len());
    }
}
