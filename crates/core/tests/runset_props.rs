//! Property-based invariants of the batch-aggregation pipeline:
//! `OutcomeDist` sample accounting, the `RunSet::pooled == merge(by_kind)`
//! law, and `compare_run_sets` metric axioms (zero on self, symmetry).
//!
//! These are the laws every conformance verdict and implementation
//! distance silently relies on; mediator games keep each generated case
//! cheap enough for a 64-case sweep.

use mediator_circuits::catalog;
use mediator_core::implement::compare_run_sets;
use mediator_core::scenario::{RunSet, Scenario};
use mediator_field::Fp;
use mediator_games::dist::{l1_distance, OutcomeDist};
use mediator_sim::SchedulerKind;
use proptest::prelude::*;

/// A small mediator-game run set: n players with arbitrary vote bits, a
/// battery drawn from the cheap families, and a couple of seeds per kind.
fn run_set(n: usize, bits: &[u64], kinds: usize, seeds: u64) -> RunSet {
    let battery: Vec<SchedulerKind> = [
        SchedulerKind::Random,
        SchedulerKind::Fifo,
        SchedulerKind::Lifo,
    ]
    .into_iter()
    .take(kinds.max(1))
    .collect();
    Scenario::mediator(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0)
        .inputs(bits.iter().map(|&b| vec![Fp::new(b)]).collect())
        .build()
        .expect("n − k − t ≥ 1")
        .battery(battery)
        .seeds(0..seeds)
        .run_batch()
}

proptest! {
    #[test]
    fn outcome_dist_counts_sum_to_runs(
        samples in proptest::collection::vec(0usize..4, 1..40),
    ) {
        // from_samples normalizes by the sample count: total mass is 1 and
        // every profile's mass times the count is its integer frequency.
        let n = samples.len();
        let d = OutcomeDist::from_samples(samples.iter().map(|&s| vec![s]));
        prop_assert!((d.total() - 1.0).abs() < 1e-9);
        let mut recovered = 0usize;
        for (profile, p) in d.iter() {
            let count = (p * n as f64).round() as usize;
            prop_assert!((p * n as f64 - count as f64).abs() < 1e-9);
            let expected = samples.iter().filter(|&&s| vec![s] == *profile).count();
            prop_assert_eq!(count, expected);
            recovered += count;
        }
        prop_assert_eq!(recovered, n, "counts sum to runs");
    }

    #[test]
    fn pooled_equals_merge_of_by_kind(
        bits in proptest::collection::vec(0u64..2, 3..6),
        kinds in 1usize..4,
        seeds in 1u64..4,
    ) {
        let n = bits.len();
        let set = run_set(n, &bits, kinds, seeds);
        prop_assert_eq!(set.len(), kinds.max(1) * seeds as usize);
        let dists = set.distributions();
        prop_assert_eq!(dists.len(), set.kinds().len());
        for d in &dists {
            prop_assert!((d.total() - 1.0).abs() < 1e-9, "proper distribution");
        }
        // The pooled distribution is exactly the sample-count-weighted
        // mixture of the per-kind distributions.
        let merged = OutcomeDist::merge(
            dists.iter().map(|d| (d, set.seeds_per_kind() as f64)),
        );
        prop_assert!(
            l1_distance(&set.pooled(), &merged) < 1e-9,
            "pooled != merge(by_kind)"
        );
        // by_kind chunks tile the full run list in order.
        let total: usize = set.by_kind().map(|(_, chunk)| chunk.len()).sum();
        prop_assert_eq!(total, set.len());
    }

    #[test]
    fn compare_run_sets_is_zero_on_self_and_symmetric(
        bits_a in proptest::collection::vec(0u64..2, 4..6),
        seeds in 1u64..4,
        flip in 0usize..4,
    ) {
        let n = bits_a.len();
        let mut bits_b = bits_a.clone();
        bits_b[flip % n] = 1 - bits_b[flip % n];
        let a = run_set(n, &bits_a, 2, seeds);
        let b = run_set(n, &bits_b, 2, seeds);

        // Zero on self (and the weak direction with it).
        let self_rep = compare_run_sets(&a, &a);
        prop_assert_eq!(self_rep.distance, 0.0);
        prop_assert_eq!(self_rep.weak_distance, 0.0);

        // Symmetry of the set distance; the weak direction is one-sided
        // and bounded by the symmetric distance.
        let ab = compare_run_sets(&a, &b);
        let ba = compare_run_sets(&b, &a);
        prop_assert!((ab.distance - ba.distance).abs() < 1e-12);
        prop_assert!(ab.weak_distance <= ab.distance + 1e-12);
        prop_assert!(ba.weak_distance <= ba.distance + 1e-12);
        // Both directions agree on the metadata they compared.
        prop_assert_eq!(ab.kinds, 2);
        prop_assert_eq!(ab.samples, seeds as usize);
    }
}
