//! Property-based tests for circuit gadgets: boolean identities over all
//! bit assignments, lookup-table correctness over random functions, and
//! evaluation/replay determinism.

use mediator_circuits::{Circuit, CircuitBuilder};
use mediator_field::Fp;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn eval1(c: &Circuit, inputs: &[Vec<Fp>], seed: u64) -> Fp {
    let mut rng = StdRng::seed_from_u64(seed);
    c.eval(inputs, &mut rng).outputs.concat()[0]
}

proptest! {
    /// XOR/AND/OR/NOT compose correctly on arbitrary 3-bit formulas:
    /// (a XOR b) OR (NOT c AND a) checked against the boolean reference.
    #[test]
    fn boolean_formula_matches_reference(a in 0u64..2, b in 0u64..2, c in 0u64..2) {
        let mut bld = CircuitBuilder::new(1, &[3]);
        let wa = bld.input(0, 0);
        let wb = bld.input(0, 1);
        let wc = bld.input(0, 2);
        let x = bld.xor(wa, wb);
        let nc = bld.not(wc);
        let y = bld.and(nc, wa);
        let z = bld.or(x, y);
        bld.output(0, z);
        let circuit = bld.build();
        let got = eval1(&circuit, &[vec![Fp::new(a), Fp::new(b), Fp::new(c)]], 0);
        let expect = ((a ^ b) | ((1 - c) & a)) & 1;
        prop_assert_eq!(got, Fp::new(expect));
    }

    /// `lookup` reproduces arbitrary functions over small domains.
    #[test]
    fn lookup_reproduces_random_tables(values in proptest::collection::vec(any::<u64>(), 5), x in 0u64..5) {
        let mut bld = CircuitBuilder::new(1, &[1]);
        let wx = bld.input(0, 0);
        let table: Vec<Fp> = values.iter().map(|&v| Fp::new(v)).collect();
        let y = bld.lookup(wx, &[0, 1, 2, 3, 4], &table);
        bld.output(0, y);
        let circuit = bld.build();
        let got = eval1(&circuit, &[vec![Fp::new(x)]], 0);
        prop_assert_eq!(got, table[x as usize]);
    }

    /// `select` equals the ternary operator for arbitrary field values.
    #[test]
    fn select_is_ternary(bit in 0u64..2, x in any::<u64>(), y in any::<u64>()) {
        let mut bld = CircuitBuilder::new(1, &[3]);
        let wb = bld.input(0, 0);
        let wx = bld.input(0, 1);
        let wy = bld.input(0, 2);
        let s = bld.select(wb, wx, wy);
        bld.output(0, s);
        let circuit = bld.build();
        let got = eval1(&circuit, &[vec![Fp::new(bit), Fp::new(x), Fp::new(y)]], 0);
        let expect = if bit == 1 { Fp::new(x) } else { Fp::new(y) };
        prop_assert_eq!(got, expect);
    }

    /// Majority over arbitrary bit vectors (n up to 7) matches counting.
    #[test]
    fn majority_matches_popcount(bits in proptest::collection::vec(0u64..2, 1..8)) {
        let n = bits.len();
        let mut bld = CircuitBuilder::new(1, &[n]);
        let ws: Vec<_> = (0..n).map(|i| bld.input(0, i)).collect();
        let m = bld.majority(&ws);
        bld.output(0, m);
        let circuit = bld.build();
        let input: Vec<Fp> = bits.iter().map(|&b| Fp::new(b)).collect();
        let got = eval1(&circuit, &[input], 0);
        let ones: usize = bits.iter().map(|&b| b as usize).sum();
        let expect = if 2 * ones > n { Fp::ONE } else { Fp::ZERO };
        prop_assert_eq!(got, expect);
    }

    /// Coins recorded by one evaluation replay to the identical outputs.
    #[test]
    fn record_replay_determinism(seed in any::<u64>(), x in any::<u64>()) {
        let mut bld = CircuitBuilder::new(1, &[1]);
        let wx = bld.input(0, 0);
        let r = bld.rand();
        let b = bld.rand_bit();
        let s1 = bld.add(wx, r);
        let s2 = bld.add(s1, b);
        bld.output(0, s2);
        let circuit = bld.build();
        let mut rng = StdRng::seed_from_u64(seed);
        let first = circuit.eval(&[vec![Fp::new(x)]], &mut rng);
        let replay = circuit.eval_with_coins(&[vec![Fp::new(x)]], &first.coins, &first.coin_bits);
        prop_assert_eq!(first.outputs, replay.outputs);
    }

    /// Gate-count metrics are consistent: size ≥ mul_count + rand counts.
    #[test]
    fn metrics_are_consistent(width in 1usize..4, depth in 0usize..4) {
        let c = mediator_circuits::catalog::work_circuit(3, width, depth);
        prop_assert!(c.size() >= c.mul_count());
        prop_assert_eq!(c.mul_count(), width * depth);
        prop_assert_eq!(c.depth(), depth);
    }
}
