//! Mediator circuits used by the paper's examples and the experiments.

use crate::builder::CircuitBuilder;
use crate::circuit::Circuit;
use mediator_field::Fp;

/// The Byzantine-agreement mediator from the paper's introduction: every
/// player sends its input bit; the mediator sends the majority back to all.
pub fn majority_circuit(n: usize) -> Circuit {
    let mut b = CircuitBuilder::new(n, &vec![1; n]);
    let bits: Vec<_> = (0..n).map(|p| b.input(p, 0)).collect();
    let maj = b.majority(&bits);
    b.output_all(maj);
    b.build()
}

/// A mediator computing the sum of everyone's inputs for everyone (the
/// simplest non-trivial aggregate; used in tests and the quickstart).
pub fn sum_circuit(n: usize) -> Circuit {
    let mut b = CircuitBuilder::new(n, &vec![1; n]);
    let xs: Vec<_> = (0..n).map(|p| b.input(p, 0)).collect();
    let s = b.sum(&xs);
    b.output_all(s);
    b.build()
}

/// The correlated-equilibrium mediator for chicken
/// (`mediator_games::library::chicken_correlated` payoffs — but this crate
/// is independent of the games crate; the distribution is documented here).
///
/// Draws two fair bits `(b1, b2)`; the joint recommendation is
///
/// * `b1 = 1` → `(Chicken, Chicken)` — probability 1/2;
/// * `b1 = 0, b2 = 0` → `(Dare, Chicken)` — probability 1/4;
/// * `b1 = 0, b2 = 1` → `(Chicken, Dare)` — probability 1/4;
///
/// and each player privately learns **only its own action** (0 = Dare,
/// 1 = Chicken) — the whole point of a correlated-equilibrium mediator.
pub fn chicken_mediator() -> Circuit {
    let mut b = CircuitBuilder::new(2, &[0, 0]);
    let b1 = b.rand_bit();
    let b2 = b.rand_bit();
    // Player 0 plays Chicken unless (b1=0 ∧ b2=0): a0 = b1 OR b2.
    let a0 = b.or(b1, b2);
    // Player 1 plays Chicken unless (b1=0 ∧ b2=1): a1 = b1 OR ¬b2.
    let nb2 = b.not(b2);
    let a1 = b.or(b1, nb2);
    b.output(0, a0);
    b.output(1, a1);
    b.build()
}

/// The §6.4 **naive** mediator for the counterexample game: it draws fair
/// bits `b` (the action) and `a` (the pad), and tells player `i` the pair
/// `(a + b·i mod 2, b)` encoded as the field element `2·leak_i + b` where
/// `leak_i = a XOR (b AND [i odd])`.
///
/// The leak is exactly the unnecessary information the paper warns about: a
/// rational coalition containing players `i, j` of different parities
/// computes `leak_i XOR leak_j = b` *before* acting and can profitably
/// deadlock the protocol when `b = 0` (experiment E7).
pub fn counterexample_naive(n: usize) -> Circuit {
    let mut b = CircuitBuilder::new(n, &vec![0; n]);
    let bbit = b.rand_bit();
    let abit = b.rand_bit();
    for i in 0..n {
        let leak = if i % 2 == 1 { b.xor(abit, bbit) } else { abit };
        let two_leak = b.mul_const(leak, Fp::new(2));
        let out = b.add(two_leak, bbit);
        b.output(i, out);
    }
    b.build()
}

/// The minimally-informative repair of [`counterexample_naive`] (Lemma 6.8
/// applied to the §6.4 mediator): the mediator still draws both coins (the
/// message *pattern* is unchanged) but sends each player **only the action**
/// `b`.
pub fn counterexample_minfo(n: usize) -> Circuit {
    let mut b = CircuitBuilder::new(n, &vec![0; n]);
    let bbit = b.rand_bit();
    let _abit = b.rand_bit(); // drawn but never revealed
    for i in 0..n {
        b.output(i, bbit);
    }
    b.build()
}

/// A parameterized "work" circuit: `depth` layers of `width` multiplications
/// over the players' inputs, all players learn the final wire. Used by the
/// message-scaling experiment (E5) to sweep the paper's `c` parameter.
pub fn work_circuit(n: usize, width: usize, depth: usize) -> Circuit {
    assert!(width >= 1 && n >= 1);
    let mut b = CircuitBuilder::new(n, &vec![1; n]);
    let xs: Vec<_> = (0..n).map(|p| b.input(p, 0)).collect();
    let mut layer: Vec<_> = (0..width).map(|j| xs[j % n]).collect();
    for _ in 0..depth {
        layer = (0..width)
            .map(|j| {
                let a = layer[j];
                let b2 = layer[(j + 1) % width];
                b.mul(a, b2)
            })
            .collect();
    }
    let s = b.sum(&layer);
    b.output_all(s);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn majority_circuit_matches_majority() {
        let n = 5;
        let c = majority_circuit(n);
        let mut rng = StdRng::seed_from_u64(0);
        for mask in 0..(1u64 << n) {
            let inputs: Vec<Vec<Fp>> = (0..n).map(|i| vec![Fp::new((mask >> i) & 1)]).collect();
            let out = c.eval(&inputs, &mut rng);
            let ones = (0..n).filter(|i| (mask >> i) & 1 == 1).count();
            let expect = if 2 * ones > n { Fp::ONE } else { Fp::ZERO };
            for p in 0..n {
                assert_eq!(out.outputs[p], vec![expect]);
            }
        }
    }

    #[test]
    fn chicken_mediator_distribution() {
        let c = chicken_mediator();
        // Enumerate the four coin outcomes.
        let mut counts = std::collections::BTreeMap::new();
        for b1 in [false, true] {
            for b2 in [false, true] {
                let out = c.eval_with_coins(&[vec![], vec![]], &[], &[b1, b2]);
                let a0 = out.outputs[0][0].as_u64();
                let a1 = out.outputs[1][0].as_u64();
                *counts.entry((a0, a1)).or_insert(0) += 1;
            }
        }
        // (C,C)=(1,1) twice; (D,C)=(0,1) once; (C,D)=(1,0) once.
        assert_eq!(counts.get(&(1, 1)), Some(&2));
        assert_eq!(counts.get(&(0, 1)), Some(&1));
        assert_eq!(counts.get(&(1, 0)), Some(&1));
        assert_eq!(counts.get(&(0, 0)), None);
    }

    #[test]
    fn naive_counterexample_leaks_b_to_odd_pairs() {
        let n = 4;
        let c = counterexample_naive(n);
        for b in [false, true] {
            for a in [false, true] {
                let out = c.eval_with_coins(&vec![vec![]; n], &[], &[b, a]);
                // Decode player i's message: low bit = action b, high bit = leak.
                for i in 0..n {
                    let v = out.outputs[i][0].as_u64();
                    let action = v & 1;
                    let leak = v >> 1;
                    assert_eq!(action, b as u64, "action must be b");
                    let expect_leak = (a as u64) ^ ((b as u64) & (i as u64 & 1));
                    assert_eq!(leak, expect_leak, "leak formula a+bi mod 2");
                }
                // Coalition {0, 1} (odd difference) recovers b:
                let l0 = out.outputs[0][0].as_u64() >> 1;
                let l1 = out.outputs[1][0].as_u64() >> 1;
                assert_eq!(l0 ^ l1, b as u64);
            }
        }
    }

    #[test]
    fn minfo_counterexample_reveals_only_b() {
        let n = 4;
        let c = counterexample_minfo(n);
        for b in [false, true] {
            for a in [false, true] {
                let out = c.eval_with_coins(&vec![vec![]; n], &[], &[b, a]);
                for i in 0..n {
                    assert_eq!(out.outputs[i][0].as_u64(), b as u64);
                }
            }
        }
        // Same number of RandBit gates as the naive circuit: the coin
        // pattern is unchanged, only the outputs shrink.
        assert_eq!(c.rand_bit_count(), counterexample_naive(n).rand_bit_count());
    }

    #[test]
    fn work_circuit_scales_in_size() {
        let c1 = work_circuit(3, 4, 1);
        let c2 = work_circuit(3, 4, 5);
        assert!(c2.size() > c1.size());
        assert_eq!(c2.mul_count(), 4 * 5);
        assert_eq!(c2.depth(), 5);
        // And it actually evaluates.
        let mut rng = StdRng::seed_from_u64(0);
        let out = c2.eval(
            &[vec![Fp::new(1)], vec![Fp::new(2)], vec![Fp::new(3)]],
            &mut rng,
        );
        assert_eq!(out.outputs[0], out.outputs[2]);
    }

    #[test]
    fn sum_circuit_all_players() {
        let c = sum_circuit(4);
        let mut rng = StdRng::seed_from_u64(0);
        let inputs: Vec<Vec<Fp>> = (1..=4u64).map(|v| vec![Fp::new(v)]).collect();
        let out = c.eval(&inputs, &mut rng);
        for p in 0..4 {
            assert_eq!(out.outputs[p], vec![Fp::new(10)]);
        }
    }
}
