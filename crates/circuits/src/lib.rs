//! Arithmetic circuits over `GF(2^61 − 1)`: the mediator representation.
//!
//! The paper bounds cheap-talk message complexity in terms of `c`, the number
//! of gates of an arithmetic circuit representing the mediator (§4). This
//! crate provides the circuit DSL, a plain evaluator (what the *trusted*
//! mediator runs), gate/depth metrics, gadgets (XOR, selection, equality,
//! multiplexing, majority), and a catalog of the mediator circuits used by
//! the experiments:
//!
//! * [`catalog::majority_circuit`] — the introduction's Byzantine-agreement
//!   mediator (send the majority input back to everyone);
//! * [`catalog::chicken_mediator`] — a correlated-equilibrium mediator that
//!   tells each player only its own recommended action;
//! * [`catalog::counterexample_naive`] / [`catalog::counterexample_minfo`] —
//!   the §6.4 mediator that leaks `a + b·i (mod 2)` alongside the action,
//!   and its minimally-informative repair.
//!
//! Randomness appears as explicit gates ([`Gate::Rand`] for uniform field
//! elements, [`Gate::RandBit`] for fair bits) so that the MPC layer can
//! implement them with jointly-generated secrets while the trusted mediator
//! just draws from its RNG.
//!
//! # Example
//!
//! ```
//! use mediator_circuits::CircuitBuilder;
//! use mediator_field::Fp;
//!
//! // A 3-player mediator: everyone learns the sum of all inputs.
//! let mut b = CircuitBuilder::new(3, &[1, 1, 1]);
//! let x0 = b.input(0, 0);
//! let x1 = b.input(1, 0);
//! let x2 = b.input(2, 0);
//! let s01 = b.add(x0, x1);
//! let s = b.add(s01, x2);
//! for p in 0..3 {
//!     b.output(p, s);
//! }
//! let c = b.build();
//! let mut rng = rand::thread_rng();
//! let out = c.eval(&[vec![Fp::new(1)], vec![Fp::new(2)], vec![Fp::new(3)]], &mut rng);
//! assert_eq!(out.outputs[1], vec![Fp::new(6)]);
//! ```

pub mod builder;
pub mod catalog;
pub mod circuit;

pub use builder::CircuitBuilder;
pub use circuit::{Circuit, Evaluation, Gate, WireId};
