//! Circuit representation, evaluation, and metrics.

use mediator_field::Fp;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Index of a wire (= index of the gate producing it).
pub type WireId = usize;

/// One gate of an arithmetic circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Gate {
    /// The `index`-th private input of `player`.
    Input { player: usize, index: usize },
    /// A uniformly random field element (jointly generated under MPC).
    Rand,
    /// A fair random bit, as a field element in `{0, 1}`.
    RandBit,
    /// A constant.
    Const(Fp),
    /// Addition of two wires.
    Add(WireId, WireId),
    /// Subtraction of two wires.
    Sub(WireId, WireId),
    /// Multiplication of two wires (the expensive gate under MPC).
    Mul(WireId, WireId),
    /// Multiplication by a public constant (cheap under MPC).
    MulConst(WireId, Fp),
}

/// An arithmetic circuit with per-player private inputs and outputs.
///
/// Build with [`CircuitBuilder`](crate::CircuitBuilder); evaluate with
/// [`Circuit::eval`] (fresh coins) or [`Circuit::eval_with_coins`]
/// (deterministic replay, used by the minimally-informative mediator's
/// simulation step).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Circuit {
    pub(crate) num_players: usize,
    pub(crate) inputs_per_player: Vec<usize>,
    pub(crate) gates: Vec<Gate>,
    /// `(player, wire)` pairs: `player` privately learns `wire`.
    pub(crate) outputs: Vec<(usize, WireId)>,
}

/// The result of evaluating a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evaluation {
    /// `outputs[p]` = the values privately delivered to player `p`, in
    /// declaration order.
    pub outputs: Vec<Vec<Fp>>,
    /// The coins drawn for [`Gate::Rand`] gates, in gate order.
    pub coins: Vec<Fp>,
    /// The coins drawn for [`Gate::RandBit`] gates, in gate order.
    pub coin_bits: Vec<bool>,
}

impl Circuit {
    /// Number of players.
    pub fn num_players(&self) -> usize {
        self.num_players
    }

    /// Number of private inputs each player provides.
    pub fn inputs_per_player(&self) -> &[usize] {
        &self.inputs_per_player
    }

    /// The gates, in topological order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The `(player, wire)` output declarations.
    pub fn outputs(&self) -> &[(usize, WireId)] {
        &self.outputs
    }

    /// Total gate count — the paper's `c`.
    pub fn size(&self) -> usize {
        self.gates.len()
    }

    /// Number of multiplication gates (the dominant MPC cost).
    pub fn mul_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::Mul(_, _)))
            .count()
    }

    /// Number of `Rand` gates.
    pub fn rand_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::Rand))
            .count()
    }

    /// Number of `RandBit` gates.
    pub fn rand_bit_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::RandBit))
            .count()
    }

    /// Multiplicative depth (longest chain of `Mul` gates).
    pub fn depth(&self) -> usize {
        let mut d = vec![0usize; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            d[i] = match *g {
                Gate::Input { .. } | Gate::Rand | Gate::RandBit | Gate::Const(_) => 0,
                Gate::Add(a, b) | Gate::Sub(a, b) => d[a].max(d[b]),
                Gate::Mul(a, b) => d[a].max(d[b]) + 1,
                Gate::MulConst(a, _) => d[a],
            };
        }
        d.into_iter().max().unwrap_or(0)
    }

    /// Evaluates with fresh coins from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match the declared input arity.
    pub fn eval<R: Rng + ?Sized>(&self, inputs: &[Vec<Fp>], rng: &mut R) -> Evaluation {
        let coins: Vec<Fp> = (0..self.rand_count()).map(|_| Fp::random(rng)).collect();
        let coin_bits: Vec<bool> = (0..self.rand_bit_count()).map(|_| rng.gen()).collect();
        self.eval_with_coins(inputs, &coins, &coin_bits)
    }

    /// Evaluates with explicit coins (deterministic replay).
    ///
    /// # Panics
    ///
    /// Panics if arities do not match the circuit declaration.
    pub fn eval_with_coins(
        &self,
        inputs: &[Vec<Fp>],
        coins: &[Fp],
        coin_bits: &[bool],
    ) -> Evaluation {
        assert_eq!(
            inputs.len(),
            self.num_players,
            "wrong number of input vectors"
        );
        for (p, iv) in inputs.iter().enumerate() {
            assert_eq!(
                iv.len(),
                self.inputs_per_player[p],
                "player {p}: wrong input arity"
            );
        }
        assert_eq!(coins.len(), self.rand_count(), "wrong number of coins");
        assert_eq!(
            coin_bits.len(),
            self.rand_bit_count(),
            "wrong number of coin bits"
        );

        let mut values = Vec::with_capacity(self.gates.len());
        let mut ci = 0usize;
        let mut cbi = 0usize;
        for g in &self.gates {
            let v = match *g {
                Gate::Input { player, index } => inputs[player][index],
                Gate::Rand => {
                    let v = coins[ci];
                    ci += 1;
                    v
                }
                Gate::RandBit => {
                    let v = if coin_bits[cbi] { Fp::ONE } else { Fp::ZERO };
                    cbi += 1;
                    v
                }
                Gate::Const(c) => c,
                Gate::Add(a, b) => values[a] + values[b],
                Gate::Sub(a, b) => values[a] - values[b],
                Gate::Mul(a, b) => values[a] * values[b],
                Gate::MulConst(a, c) => values[a] * c,
            };
            values.push(v);
        }
        let mut outputs = vec![Vec::new(); self.num_players];
        for &(p, w) in &self.outputs {
            outputs[p].push(values[w]);
        }
        Evaluation {
            outputs,
            coins: coins.to_vec(),
            coin_bits: coin_bits.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sum_circuit() -> Circuit {
        let mut b = CircuitBuilder::new(2, &[1, 1]);
        let x = b.input(0, 0);
        let y = b.input(1, 0);
        let s = b.add(x, y);
        b.output(0, s);
        b.output(1, s);
        b.build()
    }

    #[test]
    fn eval_sum() {
        let c = sum_circuit();
        let mut rng = StdRng::seed_from_u64(0);
        let out = c.eval(&[vec![Fp::new(4)], vec![Fp::new(5)]], &mut rng);
        assert_eq!(out.outputs[0], vec![Fp::new(9)]);
        assert_eq!(out.outputs[1], vec![Fp::new(9)]);
    }

    #[test]
    fn metrics() {
        let c = sum_circuit();
        assert_eq!(c.size(), 3);
        assert_eq!(c.mul_count(), 0);
        assert_eq!(c.depth(), 0);

        let mut b = CircuitBuilder::new(1, &[2]);
        let x = b.input(0, 0);
        let y = b.input(0, 1);
        let m1 = b.mul(x, y);
        let m2 = b.mul(m1, x);
        let r = b.rand();
        let s = b.add(m2, r);
        b.output(0, s);
        let c = b.build();
        assert_eq!(c.mul_count(), 2);
        assert_eq!(c.depth(), 2);
        assert_eq!(c.rand_count(), 1);
    }

    #[test]
    fn deterministic_replay_with_coins() {
        let mut b = CircuitBuilder::new(1, &[0]);
        let r = b.rand();
        let bit = b.rand_bit();
        let s = b.add(r, bit);
        b.output(0, s);
        let c = b.build();
        let out = c.eval_with_coins(&[vec![]], &[Fp::new(100)], &[true]);
        assert_eq!(out.outputs[0], vec![Fp::new(101)]);
        let out2 = c.eval_with_coins(&[vec![]], &[Fp::new(100)], &[false]);
        assert_eq!(out2.outputs[0], vec![Fp::new(100)]);
    }

    #[test]
    fn eval_records_the_coins_it_drew() {
        let mut b = CircuitBuilder::new(1, &[0]);
        let r = b.rand();
        b.output(0, r);
        let c = b.build();
        let mut rng = StdRng::seed_from_u64(7);
        let out = c.eval(&[vec![]], &mut rng);
        assert_eq!(out.outputs[0], vec![out.coins[0]]);
        // Replaying the recorded coins reproduces the run.
        let replay = c.eval_with_coins(&[vec![]], &out.coins, &out.coin_bits);
        assert_eq!(replay.outputs, out.outputs);
    }

    #[test]
    #[should_panic(expected = "wrong input arity")]
    fn arity_mismatch_panics() {
        let c = sum_circuit();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = c.eval(&[vec![], vec![Fp::ONE]], &mut rng);
    }

    #[test]
    fn sub_and_mulconst() {
        let mut b = CircuitBuilder::new(1, &[2]);
        let x = b.input(0, 0);
        let y = b.input(0, 1);
        let d = b.sub(x, y);
        let e = b.mul_const(d, Fp::new(10));
        b.output(0, e);
        let c = b.build();
        let mut rng = StdRng::seed_from_u64(0);
        let out = c.eval(&[vec![Fp::new(7), Fp::new(3)]], &mut rng);
        assert_eq!(out.outputs[0], vec![Fp::new(40)]);
    }
}
