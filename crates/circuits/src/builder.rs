//! Incremental circuit construction and arithmetic gadgets.

use crate::circuit::{Circuit, Gate, WireId};
use mediator_field::Fp;

/// Builds a [`Circuit`] gate by gate.
///
/// The builder offers the raw gates plus gadgets for the boolean-flavoured
/// operations mediator circuits need (XOR, NOT, selection, equality against
/// a small domain, multiplexing, majority). Gadget inputs are assumed to be
/// field elements in `{0, 1}` unless documented otherwise.
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    num_players: usize,
    inputs_per_player: Vec<usize>,
    gates: Vec<Gate>,
    outputs: Vec<(usize, WireId)>,
}

impl CircuitBuilder {
    /// Starts a circuit for `num_players` players where player `p` provides
    /// `inputs[p]` private field elements.
    pub fn new(num_players: usize, inputs: &[usize]) -> Self {
        assert_eq!(inputs.len(), num_players);
        CircuitBuilder {
            num_players,
            inputs_per_player: inputs.to_vec(),
            gates: Vec::new(),
            outputs: Vec::new(),
        }
    }

    fn push(&mut self, g: Gate) -> WireId {
        self.gates.push(g);
        self.gates.len() - 1
    }

    /// References the `index`-th input of `player`.
    ///
    /// # Panics
    ///
    /// Panics if the input is out of the declared range.
    pub fn input(&mut self, player: usize, index: usize) -> WireId {
        assert!(player < self.num_players, "unknown player {player}");
        assert!(
            index < self.inputs_per_player[player],
            "player {player} has no input {index}"
        );
        self.push(Gate::Input { player, index })
    }

    /// A fresh uniformly-random field element.
    pub fn rand(&mut self) -> WireId {
        self.push(Gate::Rand)
    }

    /// A fresh fair random bit.
    pub fn rand_bit(&mut self) -> WireId {
        self.push(Gate::RandBit)
    }

    /// A constant.
    pub fn constant(&mut self, c: Fp) -> WireId {
        self.push(Gate::Const(c))
    }

    /// `a + b`.
    pub fn add(&mut self, a: WireId, b: WireId) -> WireId {
        self.check(a);
        self.check(b);
        self.push(Gate::Add(a, b))
    }

    /// `a − b`.
    pub fn sub(&mut self, a: WireId, b: WireId) -> WireId {
        self.check(a);
        self.check(b);
        self.push(Gate::Sub(a, b))
    }

    /// `a · b`.
    pub fn mul(&mut self, a: WireId, b: WireId) -> WireId {
        self.check(a);
        self.check(b);
        self.push(Gate::Mul(a, b))
    }

    /// `a · c` for a public constant `c`.
    pub fn mul_const(&mut self, a: WireId, c: Fp) -> WireId {
        self.check(a);
        self.push(Gate::MulConst(a, c))
    }

    fn check(&self, w: WireId) {
        assert!(w < self.gates.len(), "wire {w} does not exist yet");
    }

    /// Declares that `player` privately learns `wire`.
    pub fn output(&mut self, player: usize, wire: WireId) {
        assert!(player < self.num_players);
        self.check(wire);
        self.outputs.push((player, wire));
    }

    /// Declares `wire` as an output for every player (a public value).
    pub fn output_all(&mut self, wire: WireId) {
        for p in 0..self.num_players {
            self.output(p, wire);
        }
    }

    /// Finishes construction.
    pub fn build(self) -> Circuit {
        Circuit {
            num_players: self.num_players,
            inputs_per_player: self.inputs_per_player,
            gates: self.gates,
            outputs: self.outputs,
        }
    }

    // ---- gadgets (bit-valued wires unless stated otherwise) ----

    /// `a XOR b = a + b − 2ab` (1 multiplication).
    pub fn xor(&mut self, a: WireId, b: WireId) -> WireId {
        let ab = self.mul(a, b);
        let two_ab = self.mul_const(ab, Fp::new(2));
        let s = self.add(a, b);
        self.sub(s, two_ab)
    }

    /// `NOT a = 1 − a`.
    pub fn not(&mut self, a: WireId) -> WireId {
        let one = self.constant(Fp::ONE);
        self.sub(one, a)
    }

    /// `a AND b = ab`.
    pub fn and(&mut self, a: WireId, b: WireId) -> WireId {
        self.mul(a, b)
    }

    /// `a OR b = a + b − ab`.
    pub fn or(&mut self, a: WireId, b: WireId) -> WireId {
        let ab = self.mul(a, b);
        let s = self.add(a, b);
        self.sub(s, ab)
    }

    /// `if bit then x else y` = `y + bit·(x − y)` (1 multiplication).
    pub fn select(&mut self, bit: WireId, x: WireId, y: WireId) -> WireId {
        let d = self.sub(x, y);
        let bd = self.mul(bit, d);
        self.add(y, bd)
    }

    /// Indicator `[x == c]` for `x` ranging over the small `domain`:
    /// the Lagrange basis polynomial `Π_{d≠c} (x−d)/(c−d)` (|domain|−1
    /// multiplications).
    ///
    /// # Panics
    ///
    /// Panics if `c` is not in `domain` or `domain` has duplicates.
    pub fn eq_const(&mut self, x: WireId, c: u64, domain: &[u64]) -> WireId {
        assert!(domain.contains(&c), "{c} not in domain");
        let mut acc: Option<WireId> = None;
        let mut denom = Fp::ONE;
        for &d in domain {
            if d == c {
                continue;
            }
            assert_ne!(d, c);
            let dc = self.constant(Fp::new(d));
            let term = self.sub(x, dc);
            acc = Some(match acc {
                None => term,
                Some(a) => self.mul(a, term),
            });
            denom *= Fp::new(c) - Fp::new(d);
        }
        match acc {
            None => self.constant(Fp::ONE), // singleton domain: always equal
            Some(a) => self.mul_const(a, denom.inv().expect("distinct domain points")),
        }
    }

    /// Table lookup: `f(x)` where `x` ranges over `domain` and `f` is given
    /// by `values[i] = f(domain[i])`. Computed as `Σ values[i]·[x == dᵢ]`.
    pub fn lookup(&mut self, x: WireId, domain: &[u64], values: &[Fp]) -> WireId {
        assert_eq!(domain.len(), values.len());
        let mut acc: Option<WireId> = None;
        for (&d, &v) in domain.iter().zip(values) {
            let ind = self.eq_const(x, d, domain);
            let term = self.mul_const(ind, v);
            acc = Some(match acc {
                None => term,
                Some(a) => self.add(a, term),
            });
        }
        acc.unwrap_or_else(|| self.constant(Fp::ZERO))
    }

    /// Sum of a slice of wires.
    pub fn sum(&mut self, wires: &[WireId]) -> WireId {
        assert!(!wires.is_empty(), "sum of no wires");
        let mut acc = wires[0];
        for &w in &wires[1..] {
            acc = self.add(acc, w);
        }
        acc
    }

    /// Majority of bit wires, ties toward 0: `[Σ bits > n/2]` via a lookup
    /// over the sum's domain `0..=n`.
    pub fn majority(&mut self, bits: &[WireId]) -> WireId {
        let n = bits.len();
        let s = self.sum(bits);
        let domain: Vec<u64> = (0..=n as u64).collect();
        let values: Vec<Fp> = (0..=n)
            .map(|ones| if 2 * ones > n { Fp::ONE } else { Fp::ZERO })
            .collect();
        self.lookup(s, &domain, &values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eval1(c: &Circuit, inputs: &[Vec<Fp>]) -> Fp {
        let mut rng = StdRng::seed_from_u64(0);
        c.eval(inputs, &mut rng).outputs.concat()[0]
    }

    fn bit_circuit2(f: impl Fn(&mut CircuitBuilder, WireId, WireId) -> WireId) -> Circuit {
        let mut b = CircuitBuilder::new(1, &[2]);
        let x = b.input(0, 0);
        let y = b.input(0, 1);
        let z = f(&mut b, x, y);
        b.output(0, z);
        b.build()
    }

    #[test]
    fn xor_truth_table() {
        let c = bit_circuit2(|b, x, y| b.xor(x, y));
        for (x, y, z) in [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0)] {
            assert_eq!(
                eval1(&c, &[vec![Fp::new(x), Fp::new(y)]]),
                Fp::new(z),
                "{x} xor {y}"
            );
        }
    }

    #[test]
    fn and_or_not_truth_tables() {
        let and = bit_circuit2(|b, x, y| b.and(x, y));
        let or = bit_circuit2(|b, x, y| b.or(x, y));
        for (x, y) in [(0u64, 0u64), (0, 1), (1, 0), (1, 1)] {
            assert_eq!(eval1(&and, &[vec![Fp::new(x), Fp::new(y)]]), Fp::new(x & y));
            assert_eq!(eval1(&or, &[vec![Fp::new(x), Fp::new(y)]]), Fp::new(x | y));
        }
        let mut b = CircuitBuilder::new(1, &[1]);
        let x = b.input(0, 0);
        let nx = b.not(x);
        b.output(0, nx);
        let c = b.build();
        assert_eq!(eval1(&c, &[vec![Fp::ZERO]]), Fp::ONE);
        assert_eq!(eval1(&c, &[vec![Fp::ONE]]), Fp::ZERO);
    }

    #[test]
    fn select_picks_branch() {
        let mut b = CircuitBuilder::new(1, &[3]);
        let bit = b.input(0, 0);
        let x = b.input(0, 1);
        let y = b.input(0, 2);
        let s = b.select(bit, x, y);
        b.output(0, s);
        let c = b.build();
        assert_eq!(
            eval1(&c, &[vec![Fp::ONE, Fp::new(10), Fp::new(20)]]),
            Fp::new(10)
        );
        assert_eq!(
            eval1(&c, &[vec![Fp::ZERO, Fp::new(10), Fp::new(20)]]),
            Fp::new(20)
        );
    }

    #[test]
    fn eq_const_indicator() {
        let mut b = CircuitBuilder::new(1, &[1]);
        let x = b.input(0, 0);
        let e = b.eq_const(x, 2, &[0, 1, 2, 3]);
        b.output(0, e);
        let c = b.build();
        for v in 0..4u64 {
            let expect = if v == 2 { Fp::ONE } else { Fp::ZERO };
            assert_eq!(eval1(&c, &[vec![Fp::new(v)]]), expect, "x={v}");
        }
    }

    #[test]
    fn lookup_table() {
        // f(x) = x^2 + 1 over domain {0,1,2,3}.
        let mut b = CircuitBuilder::new(1, &[1]);
        let x = b.input(0, 0);
        let values: Vec<Fp> = (0..4u64).map(|v| Fp::new(v * v + 1)).collect();
        let y = b.lookup(x, &[0, 1, 2, 3], &values);
        b.output(0, y);
        let c = b.build();
        for v in 0..4u64 {
            assert_eq!(eval1(&c, &[vec![Fp::new(v)]]), Fp::new(v * v + 1));
        }
    }

    #[test]
    fn majority_gadget() {
        for n in [1usize, 3, 4, 5] {
            let mut b = CircuitBuilder::new(1, &[n]);
            let bits: Vec<WireId> = (0..n).map(|i| b.input(0, i)).collect();
            let m = b.majority(&bits);
            b.output(0, m);
            let c = b.build();
            for mask in 0..(1u64 << n) {
                let input: Vec<Fp> = (0..n).map(|i| Fp::new((mask >> i) & 1)).collect();
                let ones = (0..n).filter(|i| (mask >> i) & 1 == 1).count();
                let expect = if 2 * ones > n { Fp::ONE } else { Fp::ZERO };
                assert_eq!(eval1(&c, &[input]), expect, "n={n} mask={mask:b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_reference_rejected() {
        let mut b = CircuitBuilder::new(1, &[1]);
        let x = b.input(0, 0);
        let _ = b.add(x, 99);
    }

    #[test]
    #[should_panic(expected = "has no input")]
    fn unknown_input_rejected() {
        let mut b = CircuitBuilder::new(1, &[1]);
        let _ = b.input(0, 5);
    }

    #[test]
    fn output_all_declares_for_everyone() {
        let mut b = CircuitBuilder::new(3, &[0, 0, 0]);
        let c1 = b.constant(Fp::new(9));
        b.output_all(c1);
        let c = b.build();
        let mut rng = StdRng::seed_from_u64(0);
        let out = c.eval(&[vec![], vec![], vec![]], &mut rng);
        for p in 0..3 {
            assert_eq!(out.outputs[p], vec![Fp::new(9)]);
        }
    }
}
