//! Finite-field arithmetic and coding-theory primitives for the
//! mediator-implementation protocols.
//!
//! Everything in the cheap-talk constructions of Abraham–Dolev–Geffner–Halpern
//! (PODC 2019) ultimately bottoms out in Shamir secret sharing and robust
//! polynomial reconstruction over a finite field. This crate provides:
//!
//! * [`Fp`] — the prime field `GF(2^61 - 1)` (a Mersenne prime, so reduction
//!   is two adds and a compare; products fit in `u128`).
//! * [`Poly`] — dense univariate polynomials with evaluation, interpolation,
//!   Euclidean division and GCD.
//! * [`grid`] — barycentric Lagrange weights for the fixed share grid
//!   `x = 1..=n` (cached per `n`, batch-inverted): the fast interpolation
//!   path every reconstruction in the sharing layer runs on.
//! * [`rs`] — Reed–Solomon encoding and **Berlekamp–Welch robust decoding**,
//!   the exact primitive whose `n ≥ deg + 2e + 1` requirement produces the
//!   paper's `n > 4(k+t)` threshold (Theorem 4.1). The decoder solves its
//!   linear systems in a flat reused scratch matrix with batch-inverted
//!   pivots (see the module docs).
//! * [`BigUint`] — a minimal arbitrary-precision unsigned integer, used only
//!   by the Lemma 6.8 scheduler-class counting (factorials like `(4rn)!`).
//!
//! # Example
//!
//! ```
//! use mediator_field::{Fp, Poly};
//!
//! let p = Poly::from_coeffs(vec![Fp::new(3), Fp::new(0), Fp::new(1)]); // 3 + x^2
//! assert_eq!(p.eval(Fp::new(2)), Fp::new(7));
//! ```

pub mod bigint;
pub mod gf;
pub mod grid;
pub mod poly;
pub mod rs;

pub use bigint::BigUint;
pub use gf::Fp;
pub use poly::Poly;
pub use rs::{decode_robust, decode_robust_indices, encode, interpolate_exact, RsError};
