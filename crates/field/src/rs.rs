//! Reed–Solomon encoding and Berlekamp–Welch robust decoding.
//!
//! Robust decoding is the primitive behind every resilience threshold in the
//! paper: reconstructing a degree-`d` polynomial from `n` claimed evaluations
//! of which up to `e` may be adversarial requires `n ≥ d + 2e + 1`. In the
//! cheap-talk protocol of Theorem 4.1 the output wire is shared at degree
//! `2(k+t)` and up to `k+t` shares may lie, which is exactly where
//! `n > 4(k+t)` comes from.
//!
//! Performance: one decode may attempt several error-locator degrees `e`,
//! and each attempt solves an `n × (deg+2e+2)` linear system. The solver
//! works in a **flat row-major scratch matrix** allocated once per decode
//! and refilled per attempt (the seed allocated a fresh `Vec<Vec<Fp>>`
//! per attempt), runs forward elimination with cross-multiplied row
//! updates — no per-pivot inversion — and back-substitutes with all pivot
//! inverses obtained in a *single* batched inversion ([`Fp::batch_inv`]).

use crate::gf::Fp;
use crate::grid;
use crate::poly::Poly;
use std::fmt;

/// Errors produced by [`decode_robust`] / [`interpolate_exact`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsError {
    /// Fewer evaluation points than the information-theoretic minimum.
    NotEnoughPoints { have: usize, need: usize },
    /// No polynomial of the requested degree is consistent with the points
    /// under the claimed error bound (decoding ambiguity or > e corruptions).
    DecodingFailed,
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::NotEnoughPoints { have, need } => {
                write!(f, "not enough evaluation points: have {have}, need {need}")
            }
            RsError::DecodingFailed => {
                write!(f, "robust decoding failed (too many corrupted shares)")
            }
        }
    }
}

impl std::error::Error for RsError {}

/// Encodes `poly` at points `1..=n` (the share vector convention).
pub fn encode(poly: &Poly, n: usize) -> Vec<Fp> {
    poly.eval_shares(n)
}

/// Exact interpolation: requires all points to be consistent with a single
/// polynomial of degree ≤ `deg`, otherwise fails.
///
/// This is the *crash-tolerant* reconstruction used by the ε-protocols: no
/// lies are corrected, they are only detected.
///
/// # Errors
///
/// [`RsError::NotEnoughPoints`] if fewer than `deg + 1` points are given;
/// [`RsError::DecodingFailed`] if the points are inconsistent.
pub fn interpolate_exact(points: &[(Fp, Fp)], deg: usize) -> Result<Poly, RsError> {
    if points.len() < deg + 1 {
        return Err(RsError::NotEnoughPoints {
            have: points.len(),
            need: deg + 1,
        });
    }
    let p = Poly::interpolate(&points[..deg + 1]);
    if p.degree().map_or(0, |d| d) > deg {
        return Err(RsError::DecodingFailed);
    }
    for &(x, y) in &points[deg + 1..] {
        if p.eval(x) != y {
            return Err(RsError::DecodingFailed);
        }
    }
    Ok(p)
}

/// Share-grid variant of [`interpolate_exact`]: point `i` is
/// `(idxs[i] + 1, ys[i])`. Hits the cached barycentric weights of
/// [`grid`], which is what every reconstruction in the sharing layer
/// actually interpolates over.
///
/// # Errors
///
/// As [`interpolate_exact`].
///
/// # Panics
///
/// Panics if `idxs` and `ys` have different lengths, or if the first
/// `deg + 1` indices contain a duplicate (later entries are consistency
/// witnesses, checked as ordinary evaluation points).
pub fn interpolate_exact_indices(idxs: &[usize], ys: &[Fp], deg: usize) -> Result<Poly, RsError> {
    assert_eq!(idxs.len(), ys.len(), "one y per share index");
    if idxs.len() < deg + 1 {
        return Err(RsError::NotEnoughPoints {
            have: idxs.len(),
            need: deg + 1,
        });
    }
    let p = grid::interpolate_indices(&idxs[..deg + 1], &ys[..deg + 1]);
    if p.degree().map_or(0, |d| d) > deg {
        return Err(RsError::DecodingFailed);
    }
    for (&i, &y) in idxs[deg + 1..].iter().zip(&ys[deg + 1..]) {
        if p.eval(Fp::new(i as u64 + 1)) != y {
            return Err(RsError::DecodingFailed);
        }
    }
    Ok(p)
}

/// Berlekamp–Welch robust decoding.
///
/// Given `n` claimed evaluations `(x_i, y_i)` of a degree-≤`deg` polynomial
/// of which at most `max_errors` are wrong, recovers the polynomial provided
/// `n ≥ deg + 2·max_errors + 1`. Returns the decoded polynomial together with
/// the indices (into `points`) of the corrupted shares.
///
/// # Errors
///
/// [`RsError::NotEnoughPoints`] if `n < deg + 2·max_errors + 1`;
/// [`RsError::DecodingFailed`] if more than `max_errors` points are corrupt.
///
/// # Example
///
/// ```
/// use mediator_field::{Fp, Poly, rs};
/// let p = Poly::from_coeffs(vec![Fp::new(9), Fp::new(4)]); // 9 + 4x, deg 1
/// let mut pts: Vec<(Fp, Fp)> = (1..=5u64).map(|i| (Fp::new(i), p.eval(Fp::new(i)))).collect();
/// pts[2].1 = Fp::new(123456); // one corruption
/// let (q, bad) = rs::decode_robust(&pts, 1, 1).unwrap();
/// assert_eq!(q, p);
/// assert_eq!(bad, vec![2]);
/// ```
pub fn decode_robust(
    points: &[(Fp, Fp)],
    deg: usize,
    max_errors: usize,
) -> Result<(Poly, Vec<usize>), RsError> {
    let n = points.len();
    let need = deg + 2 * max_errors + 1;
    if n < need {
        return Err(RsError::NotEnoughPoints { have: n, need });
    }
    if max_errors == 0 {
        return interpolate_exact(points, deg).map(|p| (p, Vec::new()));
    }

    // Try decreasing error counts e = max_errors, ..., 0. Trying the largest
    // first is fine: the Berlekamp–Welch system with slack still recovers the
    // codeword when fewer errors occurred, because E(x) picks up spurious
    // roots that cancel in Q/E. We verify the result against the error bound.
    // The whole workspace is allocated once and reused across attempts.
    let mut scratch = DecodeScratch::for_attempt(deg, max_errors);
    for e in (0..=max_errors).rev() {
        if let Some(result) = try_decode(&mut scratch, points, deg, e) {
            let (p, bad) = result;
            if bad.len() <= max_errors {
                return Ok((p, bad));
            }
        }
    }
    Err(RsError::DecodingFailed)
}

/// Reusable buffers for one [`decode_robust`] call: the flat row-major
/// system matrix plus every intermediate vector an attempt needs, so a
/// failed attempt costs no allocations at all and a successful one
/// allocates only its returned polynomial and bad-index list.
struct DecodeScratch {
    /// Row-major linear system (`unknowns × (unknowns + 1)` cells used).
    matrix: Vec<Fp>,
    /// Solution vector of the linear system.
    sol: Vec<Fp>,
    /// Pivot positions of the current elimination.
    pivots: Vec<(u32, u32)>,
    /// Pivot values / batched inverses.
    pivot_vals: Vec<Fp>,
    pivot_invs: Vec<Fp>,
    /// Long-division state: remainder (dividend) and quotient.
    rem: Vec<Fp>,
    quot: Vec<Fp>,
}

impl DecodeScratch {
    fn for_attempt(deg: usize, max_errors: usize) -> Self {
        let max_unknowns = deg + 2 * max_errors + 1;
        DecodeScratch {
            matrix: vec![Fp::ZERO; max_unknowns * (max_unknowns + 1)],
            sol: Vec::with_capacity(max_unknowns),
            pivots: Vec::with_capacity(max_unknowns),
            pivot_vals: Vec::with_capacity(max_unknowns),
            pivot_invs: Vec::with_capacity(max_unknowns),
            rem: Vec::with_capacity(max_unknowns),
            quot: Vec::with_capacity(deg + 1),
        }
    }
}

/// Share-grid variant of [`decode_robust`]: point `i` is
/// `(idxs[i] + 1, ys[i])`, and the returned bad-share positions index into
/// `idxs`. The exact-interpolation fast path (`max_errors == 0`) runs on
/// the cached grid weights.
///
/// # Errors
///
/// As [`decode_robust`].
///
/// # Panics
///
/// Panics if `idxs` and `ys` have different lengths.
pub fn decode_robust_indices(
    idxs: &[usize],
    ys: &[Fp],
    deg: usize,
    max_errors: usize,
) -> Result<(Poly, Vec<usize>), RsError> {
    assert_eq!(idxs.len(), ys.len(), "one y per share index");
    let n = idxs.len();
    let need = deg + 2 * max_errors + 1;
    if n < need {
        return Err(RsError::NotEnoughPoints { have: n, need });
    }
    if max_errors == 0 {
        return interpolate_exact_indices(idxs, ys, deg).map(|p| (p, Vec::new()));
    }
    let points: Vec<(Fp, Fp)> = idxs
        .iter()
        .zip(ys)
        .map(|(&i, &y)| (Fp::new(i as u64 + 1), y))
        .collect();
    decode_robust(&points, deg, max_errors)
}

/// One Berlekamp–Welch attempt with exactly-`e` error-locator degree.
///
/// Solve for Q (deg ≤ deg+e) and monic E (deg = e) with Q(x_i) = y_i E(x_i).
/// Unknowns: q_0..q_{deg+e}, e_0..e_{e-1}  (e_e = 1). Total deg+2e+1.
/// `scratch` provides the system's backing store (row-major, reused across
/// attempts; only the leading `unknowns * (unknowns + 1)` cells are used).
///
/// The system is built from the **first `unknowns` points** only (a square
/// system). That loses nothing: with at most `e` errors among any
/// `deg + 2e + 1` points, every nonzero Berlekamp–Welch solution yields
/// the same `Q/E` — the unique codeword — and the subsequent global
/// verification (over *all* points) rejects anything else, exactly as it
/// rejected spurious full-system solutions.
fn try_decode(
    ws: &mut DecodeScratch,
    points: &[(Fp, Fp)],
    deg: usize,
    e: usize,
) -> Option<(Poly, Vec<usize>)> {
    let n = points.len();
    let nq = deg + e + 1; // number of Q coefficients
    let unknowns = nq + e;
    if n < unknowns {
        return None;
    }

    // Build the linear system: for each of the first `unknowns` points,
    //   sum_j q_j x_i^j - y_i sum_{j<e} e_j x_i^j = y_i x_i^e
    let rows = unknowns;
    let stride = unknowns + 1;
    let m = &mut ws.matrix[..rows * stride];
    for (i, &(x, y)) in points.iter().take(rows).enumerate() {
        let row = &mut m[i * stride..(i + 1) * stride];
        let mut xp = Fp::ONE;
        for cell in row.iter_mut().take(nq) {
            *cell = xp;
            xp *= x;
        }
        // Reuse the power table just written: row[j] = x^j for j < nq, and
        // e < nq always, so the E-columns and the rhs need no new powers.
        for j in 0..e {
            row[nq + j] = -(y * row[j]);
        }
        row[unknowns] = y * row[e];
    }

    if !solve_linear_into(ws, rows, stride, unknowns) {
        return None;
    }

    // Q / E by monic long division, in the reused buffers: Q has the first
    // nq solution cells, E the remaining e plus a forced leading ONE.
    // deg Q ≤ deg + e and deg E = e, so the quotient has deg + 1 cells.
    ws.rem.clear();
    ws.rem.extend_from_slice(&ws.sol[..nq]);
    let qlen = deg + 1;
    ws.quot.clear();
    ws.quot.resize(qlen, Fp::ZERO);
    for k in (0..qlen).rev() {
        // Divisor = [sol[nq..nq+e] | ONE]; its leading coefficient is ONE,
        // so the quotient coefficient is the current remainder head.
        let coef = ws.rem[k + e];
        ws.quot[k] = coef;
        if coef.is_zero() {
            continue;
        }
        for j in 0..e {
            let d = ws.sol[nq + j];
            ws.rem[k + j] -= coef * d;
        }
        // The leading ONE cancels the head exactly.
        ws.rem[k + e] = Fp::ZERO;
    }
    if ws.rem[..e].iter().any(|c| !c.is_zero()) {
        return None; // E does not divide Q
    }
    // deg(quot) ≤ deg by construction, matching the degree bound.

    // Identify corrupted indices and verify consistency everywhere else.
    let quot = &ws.quot;
    let mut bad = Vec::new();
    for (i, &(x, y)) in points.iter().enumerate() {
        let mut acc = Fp::ZERO;
        for &c in quot.iter().rev() {
            acc = acc * x + c;
        }
        if acc != y {
            bad.push(i);
        }
    }
    Some((Poly::from_coeffs(ws.quot.clone()), bad))
}

/// Gaussian elimination over Fp on the workspace's flat row-major matrix
/// (`rows` rows of `stride` cells, `unknowns` coefficient columns plus the
/// rhs). On success, `ws.sol` holds one solution of the (possibly
/// underdetermined) system with free variables at zero; returns `false`
/// if the system is inconsistent.
///
/// Forward elimination uses cross-multiplied row updates
/// (`row' = pivot·row − factor·pivot_row`) so no pivot is inverted during
/// the sweep; back-substitution then inverts all pivots in one batched
/// inversion. Every intermediate lives in the workspace — zero
/// allocations.
fn solve_linear_into(ws: &mut DecodeScratch, rows: usize, stride: usize, unknowns: usize) -> bool {
    let DecodeScratch {
        matrix,
        sol,
        pivots,
        pivot_vals,
        pivot_invs,
        ..
    } = ws;
    let m = &mut matrix[..rows * stride];
    pivots.clear();
    let mut pivot_row = 0usize;
    for col in 0..unknowns {
        // Find a pivot.
        let Some(r) = (pivot_row..rows).find(|&r| !m[r * stride + col].is_zero()) else {
            continue;
        };
        if r != pivot_row {
            // Swap the remaining (col..) segments of the two rows.
            let (a, b) = m.split_at_mut(r * stride);
            a[pivot_row * stride + col..pivot_row * stride + stride]
                .swap_with_slice(&mut b[col..stride]);
        }
        let piv_at = pivot_row * stride;
        for r2 in pivot_row + 1..rows {
            let row_at = r2 * stride;
            let factor = m[row_at + col];
            if factor.is_zero() {
                continue;
            }
            let piv = m[piv_at + col];
            m[row_at + col] = Fp::ZERO;
            // Cross-multiplied update, one fused reduction per cell.
            let (head, tail) = m.split_at_mut(row_at);
            let pivot_row_cells = &head[piv_at + col + 1..piv_at + stride];
            let target_cells = &mut tail[col + 1..stride];
            for (t, &p) in target_cells.iter_mut().zip(pivot_row_cells) {
                *t = Fp::mul_sub(piv, *t, factor, p);
            }
        }
        pivots.push((pivot_row as u32, col as u32));
        pivot_row += 1;
        if pivot_row == rows {
            break;
        }
    }
    // Rows below the last pivot have all-zero coefficients; a nonzero rhs
    // there means the system is inconsistent.
    for r in pivot_row..rows {
        debug_assert!(m[r * stride..r * stride + unknowns]
            .iter()
            .all(|c| c.is_zero()));
        if !m[r * stride + unknowns].is_zero() {
            return false;
        }
    }
    // Back-substitution, free variables at zero, all pivots inverted at once.
    pivot_vals.clear();
    pivot_vals.extend(
        pivots
            .iter()
            .map(|&(r, c)| m[r as usize * stride + c as usize]),
    );
    pivot_invs.clear();
    pivot_invs.resize(pivot_vals.len(), Fp::ZERO);
    Fp::batch_inv_into(pivot_vals, pivot_invs);
    sol.clear();
    sol.resize(unknowns, Fp::ZERO);
    for (&(r, c), &inv) in pivots.iter().zip(pivot_invs.iter()).rev() {
        let (r, c) = (r as usize, c as usize);
        let row = &m[r * stride..(r + 1) * stride];
        let acc = row[unknowns] - Fp::dot(&row[c + 1..unknowns], &sol[c + 1..unknowns]);
        sol[c] = acc * inv;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn share_points(p: &Poly, n: usize) -> Vec<(Fp, Fp)> {
        (1..=n as u64)
            .map(|i| (Fp::new(i), p.eval(Fp::new(i))))
            .collect()
    }

    #[test]
    fn decode_no_errors() {
        let mut rng = StdRng::seed_from_u64(10);
        let p = Poly::random_with_secret(Fp::new(5), 3, &mut rng);
        let pts = share_points(&p, 10);
        let (q, bad) = decode_robust(&pts, 3, 3).unwrap();
        assert_eq!(q, p);
        assert!(bad.is_empty());
    }

    #[test]
    fn decode_corrects_up_to_e_errors() {
        let mut rng = StdRng::seed_from_u64(11);
        for deg in 0..4usize {
            for e in 0..3usize {
                let n = deg + 2 * e + 1;
                let p = Poly::random_with_secret(Fp::random(&mut rng), deg, &mut rng);
                let mut pts = share_points(&p, n);
                // Corrupt e distinct random positions.
                let mut idxs: Vec<usize> = (0..n).collect();
                for i in 0..e {
                    let j = rng.gen_range(i..n);
                    idxs.swap(i, j);
                }
                let mut expect_bad: Vec<usize> = idxs[..e].to_vec();
                expect_bad.sort_unstable();
                for &i in &expect_bad {
                    pts[i].1 += Fp::new(1 + rng.gen_range(0..1000));
                }
                let (q, bad) = decode_robust(&pts, deg, e)
                    .unwrap_or_else(|err| panic!("deg={deg} e={e}: {err}"));
                assert_eq!(q, p, "deg={deg} e={e}");
                assert_eq!(bad, expect_bad, "deg={deg} e={e}");
            }
        }
    }

    #[test]
    fn decode_robust_indices_matches_point_form() {
        let mut rng = StdRng::seed_from_u64(15);
        let deg = 3;
        let e = 2;
        let p = Poly::random_with_secret(Fp::new(41), deg, &mut rng);
        // A non-contiguous subset of the share grid, as OEC sees it.
        let idxs: Vec<usize> = vec![0, 1, 3, 4, 6, 7, 8, 10, 11, 12];
        let mut ys: Vec<Fp> = idxs
            .iter()
            .map(|&i| p.eval(Fp::new(i as u64 + 1)))
            .collect();
        ys[2] += Fp::new(5);
        ys[7] += Fp::new(9);
        let pts: Vec<(Fp, Fp)> = idxs
            .iter()
            .zip(&ys)
            .map(|(&i, &y)| (Fp::new(i as u64 + 1), y))
            .collect();
        let a = decode_robust_indices(&idxs, &ys, deg, e).unwrap();
        let b = decode_robust(&pts, deg, e).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.0, p);
        // And the exact path with no corruption.
        let clean: Vec<Fp> = idxs
            .iter()
            .map(|&i| p.eval(Fp::new(i as u64 + 1)))
            .collect();
        assert_eq!(
            interpolate_exact_indices(&idxs, &clean, deg).unwrap(),
            p,
            "grid exact path"
        );
    }

    #[test]
    fn decode_fails_beyond_error_budget() {
        let mut rng = StdRng::seed_from_u64(12);
        let deg = 2;
        let e = 2;
        let n = deg + 2 * e + 1; // 7
        let p = Poly::random_with_secret(Fp::new(1), deg, &mut rng);
        let mut pts = share_points(&p, n);
        // Corrupt e+1 = 3 shares: decoding must not silently return a wrong
        // polynomial claiming ≤ e errors. (It may fail, or it may return p
        // itself only if the corruptions happen to still be closest — with
        // random corruption values, returning exactly p is impossible since
        // 3 > e.)
        for pt in pts.iter_mut().take(e + 1) {
            pt.1 += Fp::new(1 + rng.gen_range(0..1000));
        }
        match decode_robust(&pts, deg, e) {
            Err(RsError::DecodingFailed) => {}
            Ok((q, bad)) => {
                // If something decoded, it must be a genuinely consistent
                // codeword within the error budget — but p differs from it in
                // 3 places, so q != p is acceptable only if bad.len() <= e.
                assert!(bad.len() <= e);
                assert_ne!(q, p);
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn decode_requires_enough_points() {
        let pts = vec![(Fp::new(1), Fp::new(1)); 3];
        let err = decode_robust(&pts, 2, 1).unwrap_err();
        assert_eq!(err, RsError::NotEnoughPoints { have: 3, need: 5 });
    }

    #[test]
    fn ambiguity_at_exactly_4f_is_possible() {
        // The sharpness experiment behind Theorem 4.1: with n = deg + 2e
        // points (one short), two different degree-`deg` polynomials can each
        // be within distance e of the received word. We build such a word.
        let deg = 2; // = 2f with f=1
        let e = 1;
        let n = deg + 2 * e; // 4 = 4f, one less than the 4f+1 needed
        let p1 = Poly::from_coeffs(vec![Fp::new(10), Fp::new(1), Fp::new(1)]);
        // p2 agrees with p1 on n - 2e = deg points and differs elsewhere:
        let pts_shared: Vec<(Fp, Fp)> = (1..=deg as u64)
            .map(|i| (Fp::new(i), p1.eval(Fp::new(i))))
            .collect();
        let mut pts2 = pts_shared.clone();
        pts2.push((Fp::new(100), Fp::new(999)));
        let p2 = Poly::interpolate(&pts2);
        assert_ne!(p1, p2);
        // Received word: p1 on points 1..deg+e, p2 on the rest — within
        // distance e of both codewords.
        let mut word = Vec::new();
        for i in 1..=n as u64 {
            let x = Fp::new(i);
            let y = if i <= (deg + e) as u64 {
                p1.eval(x)
            } else {
                p2.eval(x)
            };
            word.push((x, y));
        }
        // decode_robust refuses to run (NotEnoughPoints): the threshold is real.
        assert_eq!(
            decode_robust(&word, deg, e).unwrap_err(),
            RsError::NotEnoughPoints {
                have: n,
                need: n + 1
            }
        );
        // And indeed both polynomials are within distance e of the word.
        let d1 = word.iter().filter(|&&(x, y)| p1.eval(x) != y).count();
        let d2 = word.iter().filter(|&&(x, y)| p2.eval(x) != y).count();
        assert!(d1 <= e && d2 <= e);
    }

    #[test]
    fn exact_interpolation_detects_inconsistency() {
        let mut rng = StdRng::seed_from_u64(13);
        let p = Poly::random_with_secret(Fp::new(7), 2, &mut rng);
        let mut pts = share_points(&p, 5);
        assert!(interpolate_exact(&pts, 2).is_ok());
        pts[4].1 += Fp::ONE;
        assert_eq!(
            interpolate_exact(&pts, 2).unwrap_err(),
            RsError::DecodingFailed
        );
        // The grid path fails identically.
        let idxs: Vec<usize> = (0..5).collect();
        let ys: Vec<Fp> = pts.iter().map(|&(_, y)| y).collect();
        assert_eq!(
            interpolate_exact_indices(&idxs, &ys, 2).unwrap_err(),
            RsError::DecodingFailed
        );
    }

    #[test]
    fn exact_interpolation_needs_deg_plus_one() {
        let pts = vec![(Fp::new(1), Fp::new(1))];
        assert_eq!(
            interpolate_exact(&pts, 2).unwrap_err(),
            RsError::NotEnoughPoints { have: 1, need: 3 }
        );
    }

    #[test]
    fn encode_then_decode_roundtrip_many() {
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..10 {
            let deg = rng.gen_range(0..5);
            let p = Poly::random_with_secret(Fp::random(&mut rng), deg, &mut rng);
            let shares = encode(&p, deg + 5);
            let pts: Vec<(Fp, Fp)> = shares
                .iter()
                .enumerate()
                .map(|(i, &y)| (Fp::new(i as u64 + 1), y))
                .collect();
            let (q, _) = decode_robust(&pts, deg, 2).unwrap();
            assert_eq!(q, p);
        }
    }
}
