//! Reed–Solomon encoding and Berlekamp–Welch robust decoding.
//!
//! Robust decoding is the primitive behind every resilience threshold in the
//! paper: reconstructing a degree-`d` polynomial from `n` claimed evaluations
//! of which up to `e` may be adversarial requires `n ≥ d + 2e + 1`. In the
//! cheap-talk protocol of Theorem 4.1 the output wire is shared at degree
//! `2(k+t)` and up to `k+t` shares may lie, which is exactly where
//! `n > 4(k+t)` comes from.

use crate::gf::Fp;
use crate::poly::Poly;
use std::fmt;

/// Errors produced by [`decode_robust`] / [`interpolate_exact`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsError {
    /// Fewer evaluation points than the information-theoretic minimum.
    NotEnoughPoints { have: usize, need: usize },
    /// No polynomial of the requested degree is consistent with the points
    /// under the claimed error bound (decoding ambiguity or > e corruptions).
    DecodingFailed,
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::NotEnoughPoints { have, need } => {
                write!(f, "not enough evaluation points: have {have}, need {need}")
            }
            RsError::DecodingFailed => {
                write!(f, "robust decoding failed (too many corrupted shares)")
            }
        }
    }
}

impl std::error::Error for RsError {}

/// Encodes `poly` at points `1..=n` (the share vector convention).
pub fn encode(poly: &Poly, n: usize) -> Vec<Fp> {
    poly.eval_shares(n)
}

/// Exact interpolation: requires all points to be consistent with a single
/// polynomial of degree ≤ `deg`, otherwise fails.
///
/// This is the *crash-tolerant* reconstruction used by the ε-protocols: no
/// lies are corrected, they are only detected.
///
/// # Errors
///
/// [`RsError::NotEnoughPoints`] if fewer than `deg + 1` points are given;
/// [`RsError::DecodingFailed`] if the points are inconsistent.
pub fn interpolate_exact(points: &[(Fp, Fp)], deg: usize) -> Result<Poly, RsError> {
    if points.len() < deg + 1 {
        return Err(RsError::NotEnoughPoints {
            have: points.len(),
            need: deg + 1,
        });
    }
    let p = Poly::interpolate(&points[..deg + 1]);
    if p.degree().map_or(0, |d| d) > deg {
        return Err(RsError::DecodingFailed);
    }
    for &(x, y) in &points[deg + 1..] {
        if p.eval(x) != y {
            return Err(RsError::DecodingFailed);
        }
    }
    Ok(p)
}

/// Berlekamp–Welch robust decoding.
///
/// Given `n` claimed evaluations `(x_i, y_i)` of a degree-≤`deg` polynomial
/// of which at most `max_errors` are wrong, recovers the polynomial provided
/// `n ≥ deg + 2·max_errors + 1`. Returns the decoded polynomial together with
/// the indices (into `points`) of the corrupted shares.
///
/// # Errors
///
/// [`RsError::NotEnoughPoints`] if `n < deg + 2·max_errors + 1`;
/// [`RsError::DecodingFailed`] if more than `max_errors` points are corrupt.
///
/// # Example
///
/// ```
/// use mediator_field::{Fp, Poly, rs};
/// let p = Poly::from_coeffs(vec![Fp::new(9), Fp::new(4)]); // 9 + 4x, deg 1
/// let mut pts: Vec<(Fp, Fp)> = (1..=5u64).map(|i| (Fp::new(i), p.eval(Fp::new(i)))).collect();
/// pts[2].1 = Fp::new(123456); // one corruption
/// let (q, bad) = rs::decode_robust(&pts, 1, 1).unwrap();
/// assert_eq!(q, p);
/// assert_eq!(bad, vec![2]);
/// ```
pub fn decode_robust(
    points: &[(Fp, Fp)],
    deg: usize,
    max_errors: usize,
) -> Result<(Poly, Vec<usize>), RsError> {
    let n = points.len();
    let need = deg + 2 * max_errors + 1;
    if n < need {
        return Err(RsError::NotEnoughPoints { have: n, need });
    }
    if max_errors == 0 {
        return interpolate_exact(points, deg).map(|p| (p, Vec::new()));
    }

    // Try decreasing error counts e = max_errors, ..., 0. Trying the largest
    // first is fine: the Berlekamp–Welch system with slack still recovers the
    // codeword when fewer errors occurred, because E(x) picks up spurious
    // roots that cancel in Q/E. We verify the result against the error bound.
    for e in (0..=max_errors).rev() {
        if let Some(result) = try_decode(points, deg, e) {
            let (p, bad) = result;
            if bad.len() <= max_errors {
                return Ok((p, bad));
            }
        }
    }
    Err(RsError::DecodingFailed)
}

/// One Berlekamp–Welch attempt with exactly-`e` error-locator degree.
///
/// Solve for Q (deg ≤ deg+e) and monic E (deg = e) with Q(x_i) = y_i E(x_i).
/// Unknowns: q_0..q_{deg+e}, e_0..e_{e-1}  (e_e = 1). Total deg+2e+1.
#[allow(clippy::needless_range_loop)] // Vandermonde row construction is index-driven
fn try_decode(points: &[(Fp, Fp)], deg: usize, e: usize) -> Option<(Poly, Vec<usize>)> {
    let n = points.len();
    let nq = deg + e + 1; // number of Q coefficients
    let unknowns = nq + e;
    if n < unknowns {
        return None;
    }

    // Build the linear system: for each i,
    //   sum_j q_j x_i^j - y_i sum_{j<e} e_j x_i^j = y_i x_i^e
    let mut m = vec![vec![Fp::ZERO; unknowns + 1]; n];
    for (i, &(x, y)) in points.iter().enumerate() {
        let mut xp = Fp::ONE;
        for j in 0..nq {
            m[i][j] = xp;
            xp *= x;
        }
        let mut xp = Fp::ONE;
        for j in 0..e {
            m[i][nq + j] = -(y * xp);
            xp *= x;
        }
        // rhs: y * x^e
        m[i][unknowns] = y * x.pow(e as u64);
    }

    let sol = solve_linear(&mut m, unknowns)?;

    let q = Poly::from_coeffs(sol[..nq].to_vec());
    let mut ecoeffs = sol[nq..].to_vec();
    ecoeffs.push(Fp::ONE); // monic
    let epoly = Poly::from_coeffs(ecoeffs);
    if epoly.is_zero() {
        return None;
    }
    let (p, rem) = q.div_rem(&epoly);
    if !rem.is_zero() {
        return None;
    }
    if p.degree().map_or(0, |d| d) > deg {
        return None;
    }
    // Identify corrupted indices and verify consistency everywhere else.
    let mut bad = Vec::new();
    for (i, &(x, y)) in points.iter().enumerate() {
        if p.eval(x) != y {
            bad.push(i);
        }
    }
    Some((p, bad))
}

/// Gaussian elimination over Fp; returns one solution of the (possibly
/// underdetermined) system, or `None` if inconsistent.
#[allow(clippy::needless_range_loop)] // Gaussian elimination is index-driven
fn solve_linear(m: &mut [Vec<Fp>], unknowns: usize) -> Option<Vec<Fp>> {
    let rows = m.len();
    let mut pivot_row = 0usize;
    let mut pivot_cols = Vec::new();
    for col in 0..unknowns {
        // Find a pivot.
        let Some(r) = (pivot_row..rows).find(|&r| !m[r][col].is_zero()) else {
            continue;
        };
        m.swap(pivot_row, r);
        let inv = m[pivot_row][col].inv().expect("pivot nonzero");
        for j in col..=unknowns {
            m[pivot_row][j] *= inv;
        }
        for r2 in 0..rows {
            if r2 != pivot_row && !m[r2][col].is_zero() {
                let factor = m[r2][col];
                for j in col..=unknowns {
                    m[r2][j] = m[r2][j] - factor * m[pivot_row][j];
                }
            }
        }
        pivot_cols.push((pivot_row, col));
        pivot_row += 1;
        if pivot_row == rows {
            break;
        }
    }
    // Check consistency of the remaining rows.
    for r in pivot_row..rows {
        if m[r][..unknowns].iter().all(|c| c.is_zero()) && !m[r][unknowns].is_zero() {
            return None;
        }
    }
    // Free variables get zero.
    let mut sol = vec![Fp::ZERO; unknowns];
    for &(r, c) in &pivot_cols {
        sol[c] = m[r][unknowns];
    }
    Some(sol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn share_points(p: &Poly, n: usize) -> Vec<(Fp, Fp)> {
        (1..=n as u64)
            .map(|i| (Fp::new(i), p.eval(Fp::new(i))))
            .collect()
    }

    #[test]
    fn decode_no_errors() {
        let mut rng = StdRng::seed_from_u64(10);
        let p = Poly::random_with_secret(Fp::new(5), 3, &mut rng);
        let pts = share_points(&p, 10);
        let (q, bad) = decode_robust(&pts, 3, 3).unwrap();
        assert_eq!(q, p);
        assert!(bad.is_empty());
    }

    #[test]
    fn decode_corrects_up_to_e_errors() {
        let mut rng = StdRng::seed_from_u64(11);
        for deg in 0..4usize {
            for e in 0..3usize {
                let n = deg + 2 * e + 1;
                let p = Poly::random_with_secret(Fp::random(&mut rng), deg, &mut rng);
                let mut pts = share_points(&p, n);
                // Corrupt e distinct random positions.
                let mut idxs: Vec<usize> = (0..n).collect();
                for i in 0..e {
                    let j = rng.gen_range(i..n);
                    idxs.swap(i, j);
                }
                let mut expect_bad: Vec<usize> = idxs[..e].to_vec();
                expect_bad.sort_unstable();
                for &i in &expect_bad {
                    pts[i].1 += Fp::new(1 + rng.gen_range(0..1000));
                }
                let (q, bad) = decode_robust(&pts, deg, e)
                    .unwrap_or_else(|err| panic!("deg={deg} e={e}: {err}"));
                assert_eq!(q, p, "deg={deg} e={e}");
                assert_eq!(bad, expect_bad, "deg={deg} e={e}");
            }
        }
    }

    #[test]
    fn decode_fails_beyond_error_budget() {
        let mut rng = StdRng::seed_from_u64(12);
        let deg = 2;
        let e = 2;
        let n = deg + 2 * e + 1; // 7
        let p = Poly::random_with_secret(Fp::new(1), deg, &mut rng);
        let mut pts = share_points(&p, n);
        // Corrupt e+1 = 3 shares: decoding must not silently return a wrong
        // polynomial claiming ≤ e errors. (It may fail, or it may return p
        // itself only if the corruptions happen to still be closest — with
        // random corruption values, returning exactly p is impossible since
        // 3 > e.)
        for pt in pts.iter_mut().take(e + 1) {
            pt.1 += Fp::new(1 + rng.gen_range(0..1000));
        }
        match decode_robust(&pts, deg, e) {
            Err(RsError::DecodingFailed) => {}
            Ok((q, bad)) => {
                // If something decoded, it must be a genuinely consistent
                // codeword within the error budget — but p differs from it in
                // 3 places, so q != p is acceptable only if bad.len() <= e.
                assert!(bad.len() <= e);
                assert_ne!(q, p);
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn decode_requires_enough_points() {
        let pts = vec![(Fp::new(1), Fp::new(1)); 3];
        let err = decode_robust(&pts, 2, 1).unwrap_err();
        assert_eq!(err, RsError::NotEnoughPoints { have: 3, need: 5 });
    }

    #[test]
    fn ambiguity_at_exactly_4f_is_possible() {
        // The sharpness experiment behind Theorem 4.1: with n = deg + 2e
        // points (one short), two different degree-`deg` polynomials can each
        // be within distance e of the received word. We build such a word.
        let deg = 2; // = 2f with f=1
        let e = 1;
        let n = deg + 2 * e; // 4 = 4f, one less than the 4f+1 needed
        let p1 = Poly::from_coeffs(vec![Fp::new(10), Fp::new(1), Fp::new(1)]);
        // p2 agrees with p1 on n - 2e = deg points and differs elsewhere:
        let pts_shared: Vec<(Fp, Fp)> = (1..=deg as u64)
            .map(|i| (Fp::new(i), p1.eval(Fp::new(i))))
            .collect();
        let mut pts2 = pts_shared.clone();
        pts2.push((Fp::new(100), Fp::new(999)));
        let p2 = Poly::interpolate(&pts2);
        assert_ne!(p1, p2);
        // Received word: p1 on points 1..deg+e, p2 on the rest — within
        // distance e of both codewords.
        let mut word = Vec::new();
        for i in 1..=n as u64 {
            let x = Fp::new(i);
            let y = if i <= (deg + e) as u64 {
                p1.eval(x)
            } else {
                p2.eval(x)
            };
            word.push((x, y));
        }
        // decode_robust refuses to run (NotEnoughPoints): the threshold is real.
        assert_eq!(
            decode_robust(&word, deg, e).unwrap_err(),
            RsError::NotEnoughPoints {
                have: n,
                need: n + 1
            }
        );
        // And indeed both polynomials are within distance e of the word.
        let d1 = word.iter().filter(|&&(x, y)| p1.eval(x) != y).count();
        let d2 = word.iter().filter(|&&(x, y)| p2.eval(x) != y).count();
        assert!(d1 <= e && d2 <= e);
    }

    #[test]
    fn exact_interpolation_detects_inconsistency() {
        let mut rng = StdRng::seed_from_u64(13);
        let p = Poly::random_with_secret(Fp::new(7), 2, &mut rng);
        let mut pts = share_points(&p, 5);
        assert!(interpolate_exact(&pts, 2).is_ok());
        pts[4].1 += Fp::ONE;
        assert_eq!(
            interpolate_exact(&pts, 2).unwrap_err(),
            RsError::DecodingFailed
        );
    }

    #[test]
    fn exact_interpolation_needs_deg_plus_one() {
        let pts = vec![(Fp::new(1), Fp::new(1))];
        assert_eq!(
            interpolate_exact(&pts, 2).unwrap_err(),
            RsError::NotEnoughPoints { have: 1, need: 3 }
        );
    }

    #[test]
    fn encode_then_decode_roundtrip_many() {
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..10 {
            let deg = rng.gen_range(0..5);
            let p = Poly::random_with_secret(Fp::random(&mut rng), deg, &mut rng);
            let shares = encode(&p, deg + 5);
            let pts: Vec<(Fp, Fp)> = shares
                .iter()
                .enumerate()
                .map(|(i, &y)| (Fp::new(i as u64 + 1), y))
                .collect();
            let (q, _) = decode_robust(&pts, deg, 2).unwrap();
            assert_eq!(q, p);
        }
    }
}
