//! Barycentric Lagrange machinery for the **share grid** `x = 1..=n`.
//!
//! Every sharing in this workspace evaluates polynomials at the fixed
//! points `x_i = i + 1` (player `i`'s share), so interpolation almost never
//! sees arbitrary field elements — it sees small-integer grid indices. That
//! structure pays twice:
//!
//! * the barycentric denominators `d_i = ∏_{j≠i}(x_i − x_j)` are products
//!   of small integers, and for the *full* grid they collapse to the
//!   factorial formula `d_i = (−1)^{n−1−i} · i! · (n−1−i)!` — cached here
//!   per `n`, computed once per process instead of once per reconstruction;
//! * all inversions (one per weight) batch into a single field inversion
//!   via Montgomery's trick ([`Fp::batch_inv`]).
//!
//! [`interpolate_indices`] combines the weights with one master-polynomial
//! synthetic division per point: O(n²) multiplications and exactly one
//! field inversion for a full interpolation — the seed implementation
//! rebuilt each Lagrange basis polynomial from scratch (O(n³)) and paid an
//! exponentiation-inversion per point.

use crate::gf::Fp;
use crate::poly::Poly;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Cached full-grid weights: `n` → `[1/d_i]` for the grid `x = 1..=n`.
fn full_grid_cache() -> &'static Mutex<BTreeMap<usize, Arc<Vec<Fp>>>> {
    static CACHE: OnceLock<Mutex<BTreeMap<usize, Arc<Vec<Fp>>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Inverted barycentric denominators for the **full** grid `x = 1..=n`,
/// cached per `n`: `weights[i] = 1 / ∏_{j≠i}(x_i − x_j)` with
/// `x_i = i + 1`.
pub fn full_grid_weights(n: usize) -> Arc<Vec<Fp>> {
    if let Some(w) = full_grid_cache().lock().expect("weights cache").get(&n) {
        return Arc::clone(w);
    }
    // d_i = (−1)^{n−1−i} · i! · (n−1−i)!  (0-indexed i, x_i = i+1).
    let mut fact = vec![Fp::ONE; n.max(1)];
    for i in 1..n {
        fact[i] = fact[i - 1] * Fp::new(i as u64);
    }
    let denoms: Vec<Fp> = (0..n)
        .map(|i| {
            let d = fact[i] * fact[n - 1 - i];
            if (n - 1 - i) % 2 == 1 {
                -d
            } else {
                d
            }
        })
        .collect();
    let weights = Arc::new(Fp::batch_inv(&denoms));
    full_grid_cache()
        .lock()
        .expect("weights cache")
        .insert(n, Arc::clone(&weights));
    weights
}

/// Inverted barycentric denominators for an arbitrary subset of the grid:
/// `weights[i] = 1 / ∏_{j≠i}(x_i − x_j)` with `x_i = idxs[i] + 1`.
/// Contiguous-from-zero index sets hit the per-`n` cache.
///
/// # Panics
///
/// Panics if two indices coincide (duplicate share points).
pub fn lagrange_weights(idxs: &[usize]) -> Arc<Vec<Fp>> {
    let contiguous = idxs.iter().enumerate().all(|(i, &idx)| idx == i);
    if contiguous {
        return full_grid_weights(idxs.len());
    }
    let denoms: Vec<Fp> = idxs
        .iter()
        .enumerate()
        .map(|(a, &i)| {
            let mut d = Fp::ONE;
            for (b, &j) in idxs.iter().enumerate() {
                if b != a {
                    // A duplicated index zeroes the product, which the
                    // distinctness assertion below then rejects.
                    d *= Fp::from_i64(i as i64 - j as i64);
                }
            }
            d
        })
        .collect();
    assert!(
        denoms.iter().all(|d| !d.is_zero()),
        "interpolation points must be distinct"
    );
    Arc::new(Fp::batch_inv(&denoms))
}

/// Interpolates the unique polynomial of degree `< idxs.len()` through the
/// share points `(idxs[i] + 1, ys[i])`, in coefficient form.
///
/// # Panics
///
/// Panics if the lengths differ or two indices coincide.
pub fn interpolate_indices(idxs: &[usize], ys: &[Fp]) -> Poly {
    assert_eq!(idxs.len(), ys.len(), "one y per share index");
    let n = idxs.len();
    if n == 0 {
        return Poly::zero();
    }
    let weights = lagrange_weights(idxs);
    let x_of = |i: usize| Fp::new(idxs[i] as u64 + 1);
    let master = Poly::master_coeffs(n, x_of);
    Poly::interpolate_with_master(&master, x_of, |i| ys[i], &weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_grid_weights_match_direct_products() {
        for n in 1..10usize {
            let w = full_grid_weights(n);
            for i in 0..n {
                let mut d = Fp::ONE;
                for j in 0..n {
                    if j != i {
                        d *= Fp::from_i64(i as i64 - j as i64);
                    }
                }
                assert_eq!(w[i], d.inv().unwrap(), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn subset_weights_match_direct_products() {
        let idxs = [0usize, 2, 5, 6, 9];
        let w = lagrange_weights(&idxs);
        for (a, &i) in idxs.iter().enumerate() {
            let mut d = Fp::ONE;
            for &j in &idxs {
                if j != i {
                    d *= Fp::from_i64(i as i64 - j as i64);
                }
            }
            assert_eq!(w[a], d.inv().unwrap());
        }
    }

    #[test]
    fn interpolate_indices_matches_generic_interpolation() {
        let mut rng = StdRng::seed_from_u64(3);
        for deg in 0..8usize {
            let p = Poly::random_with_secret(Fp::new(99), deg, &mut rng);
            // Non-contiguous subset of the grid.
            let idxs: Vec<usize> = (0..=deg).map(|i| i * 2 + 1).collect();
            let ys: Vec<Fp> = idxs
                .iter()
                .map(|&i| p.eval(Fp::new(i as u64 + 1)))
                .collect();
            let q = interpolate_indices(&idxs, &ys);
            assert_eq!(p, q, "deg {deg}");
            // Contiguous prefix (cached path).
            let idxs: Vec<usize> = (0..=deg).collect();
            let ys: Vec<Fp> = idxs
                .iter()
                .map(|&i| p.eval(Fp::new(i as u64 + 1)))
                .collect();
            assert_eq!(interpolate_indices(&idxs, &ys), p, "deg {deg} contiguous");
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_indices_rejected() {
        let _ = lagrange_weights(&[1, 3, 1]);
    }

    #[test]
    fn empty_interpolation_is_zero() {
        assert!(interpolate_indices(&[], &[]).is_zero());
    }
}
