//! Dense univariate polynomials over [`Fp`].
//!
//! Provides the operations the sharing and decoding layers need: evaluation,
//! Lagrange interpolation, Euclidean division, and multiplication. Degrees in
//! this codebase are tiny (at most a few hundred), so the quadratic algorithms
//! are the right choice — no FFT.

use crate::gf::Fp;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense univariate polynomial `c0 + c1 x + c2 x^2 + ...` over `GF(2^61-1)`.
///
/// The invariant is that the leading coefficient is nonzero (the zero
/// polynomial is represented by an empty coefficient vector).
///
/// # Example
///
/// ```
/// use mediator_field::{Fp, Poly};
/// let p = Poly::from_coeffs(vec![Fp::new(1), Fp::new(2)]); // 1 + 2x
/// assert_eq!(p.eval(Fp::new(10)), Fp::new(21));
/// assert_eq!(p.degree(), Some(1));
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Poly {
    coeffs: Vec<Fp>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: Fp) -> Self {
        Poly::from_coeffs(vec![c])
    }

    /// Builds a polynomial from low-to-high coefficients, trimming leading zeros.
    pub fn from_coeffs(coeffs: Vec<Fp>) -> Self {
        let mut p = Poly { coeffs };
        p.trim();
        p
    }

    /// Samples a uniformly random polynomial of degree at most `deg` whose
    /// constant term is `secret` — the Shamir dealing polynomial.
    pub fn random_with_secret<R: Rng + ?Sized>(secret: Fp, deg: usize, rng: &mut R) -> Self {
        let mut coeffs = Vec::with_capacity(deg + 1);
        coeffs.push(secret);
        for _ in 0..deg {
            coeffs.push(Fp::random(rng));
        }
        Poly::from_coeffs(coeffs)
    }

    fn trim(&mut self) {
        while self.coeffs.last().is_some_and(|c| c.is_zero()) {
            self.coeffs.pop();
        }
    }

    /// The coefficients, low-to-high (empty for the zero polynomial).
    pub fn coeffs(&self) -> &[Fp] {
        &self.coeffs
    }

    /// The degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Returns `true` if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Evaluates at `x` by Horner's rule.
    pub fn eval(&self, x: Fp) -> Fp {
        let mut acc = Fp::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Evaluates at the points `1, 2, ..., n` — the standard share vector.
    pub fn eval_shares(&self, n: usize) -> Vec<Fp> {
        (1..=n as u64).map(|i| self.eval(Fp::new(i))).collect()
    }

    /// Lagrange interpolation through `(x_i, y_i)` pairs with distinct `x_i`.
    ///
    /// O(n²) multiplications and a *single* field inversion: the master
    /// polynomial `M(x) = ∏(x − x_i)` is built once, each Lagrange basis
    /// falls out of it by synthetic division, the denominators are `M'`
    /// evaluations, and their inverses batch via Montgomery's trick. (The
    /// seed rebuilt every basis from its linear factors — O(n³) — and paid
    /// one exponentiation-inversion per point.) For share-grid points,
    /// [`crate::grid::interpolate_indices`] is faster still: its weights
    /// are cached.
    ///
    /// # Panics
    ///
    /// Panics if two `x_i` coincide.
    pub fn interpolate(points: &[(Fp, Fp)]) -> Self {
        let n = points.len();
        if n == 0 {
            return Poly::zero();
        }
        let master = Poly::master_coeffs(n, |i| points[i].0);
        // Denominators d_i = ∏_{j≠i}(x_i − x_j) = M'(x_i); a duplicated
        // point is a double root of M, making its derivative vanish there.
        let deriv = Poly::from_coeffs(
            (0..n)
                .map(|j| Fp::new(j as u64 + 1) * master[j + 1])
                .collect(),
        );
        let denoms: Vec<Fp> = points.iter().map(|&(x, _)| deriv.eval(x)).collect();
        assert!(
            denoms.iter().all(|d| !d.is_zero()),
            "interpolation points must be distinct"
        );
        let weights = Fp::batch_inv(&denoms);
        Poly::interpolate_with_master(&master, |i| points[i].0, |i| points[i].1, &weights)
    }

    /// The master polynomial `M(x) = ∏ (x − x_i)` over `n` points given by
    /// `x_of`, low-to-high coefficients (shared by [`Poly::interpolate`]
    /// and the grid kernel).
    pub(crate) fn master_coeffs(n: usize, x_of: impl Fn(usize) -> Fp) -> Vec<Fp> {
        let mut master = vec![Fp::ZERO; n + 1];
        master[0] = Fp::ONE;
        for k in 0..n {
            let xi = x_of(k);
            master[k + 1] = master[k];
            for j in (1..=k).rev() {
                master[j] = master[j - 1] - xi * master[j];
            }
            master[0] = -(xi * master[0]);
        }
        master
    }

    /// The shared interpolation core: given the master polynomial over the
    /// points and the inverted barycentric denominators (`weights`),
    /// accumulates `Σ (y_i · w_i) · M(x)/(x − x_i)` with one synthetic
    /// division per point. Both [`Poly::interpolate`] (derivative-based
    /// weights) and [`crate::grid::interpolate_indices`] (cached grid
    /// weights) bottom out here.
    pub(crate) fn interpolate_with_master(
        master: &[Fp],
        x_of: impl Fn(usize) -> Fp,
        y_of: impl Fn(usize) -> Fp,
        weights: &[Fp],
    ) -> Poly {
        let n = weights.len();
        debug_assert_eq!(master.len(), n + 1);
        let mut acc = vec![Fp::ZERO; n];
        let mut basis = vec![Fp::ZERO; n];
        for (i, &w) in weights.iter().enumerate() {
            let scale = y_of(i) * w;
            if scale.is_zero() {
                continue;
            }
            let xi = x_of(i);
            let mut carry = master[n];
            for j in (0..n).rev() {
                basis[j] = carry;
                carry = master[j] + xi * carry;
            }
            debug_assert!(carry.is_zero(), "x_i must be a root of the master poly");
            for (a, &b) in acc.iter_mut().zip(basis.iter()) {
                *a += b * scale;
            }
        }
        Poly::from_coeffs(acc)
    }

    /// Multiplies every coefficient by `s`.
    pub fn scale(&self, s: Fp) -> Self {
        Poly::from_coeffs(self.coeffs.iter().map(|&c| c * s).collect())
    }

    /// Euclidean division: returns `(quotient, remainder)` with
    /// `self = q * divisor + r` and `deg r < deg divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is the zero polynomial.
    pub fn div_rem(&self, divisor: &Poly) -> (Poly, Poly) {
        assert!(!divisor.is_zero(), "polynomial division by zero");
        let dd = divisor.coeffs.len();
        if self.coeffs.len() < dd {
            return (Poly::zero(), self.clone());
        }
        // Monic divisors (the common case: Berlekamp–Welch error locators)
        // skip the leading-coefficient inversion entirely.
        let lead = divisor.coeffs[dd - 1];
        let lead_inv = if lead == Fp::ONE {
            Fp::ONE
        } else {
            lead.inv().expect("leading coeff nonzero")
        };
        let mut rem = self.coeffs.clone();
        let qlen = rem.len() - dd + 1;
        let mut quot = vec![Fp::ZERO; qlen];
        for k in (0..qlen).rev() {
            let coef = rem[k + dd - 1] * lead_inv;
            quot[k] = coef;
            if coef.is_zero() {
                continue;
            }
            for (j, &dc) in divisor.coeffs.iter().enumerate() {
                rem[k + j] -= coef * dc;
            }
        }
        rem.truncate(dd - 1);
        (Poly::from_coeffs(quot), Poly::from_coeffs(rem))
    }
}

impl fmt::Debug for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "Poly(0)");
        }
        write!(f, "Poly(")?;
        for (i, c) in self.coeffs.iter().enumerate() {
            if i > 0 {
                write!(f, " + {c}·x^{i}")?;
            } else {
                write!(f, "{c}")?;
            }
        }
        write!(f, ")")
    }
}

impl Add for &Poly {
    type Output = Poly;
    fn add(self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = vec![Fp::ZERO; n];
        for (i, &c) in self.coeffs.iter().enumerate() {
            out[i] += c;
        }
        for (i, &c) in rhs.coeffs.iter().enumerate() {
            out[i] += c;
        }
        Poly::from_coeffs(out)
    }
}

impl Sub for &Poly {
    type Output = Poly;
    fn sub(self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = vec![Fp::ZERO; n];
        for (i, &c) in self.coeffs.iter().enumerate() {
            out[i] += c;
        }
        for (i, &c) in rhs.coeffs.iter().enumerate() {
            out[i] -= c;
        }
        Poly::from_coeffs(out)
    }
}

impl Mul for &Poly {
    type Output = Poly;
    fn mul(self, rhs: &Poly) -> Poly {
        if self.is_zero() || rhs.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![Fp::ZERO; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Poly::from_coeffs(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn poly(cs: &[u64]) -> Poly {
        Poly::from_coeffs(cs.iter().map(|&c| Fp::new(c)).collect())
    }

    #[test]
    fn zero_polynomial_basics() {
        let z = Poly::zero();
        assert!(z.is_zero());
        assert_eq!(z.degree(), None);
        assert_eq!(z.eval(Fp::new(99)), Fp::ZERO);
    }

    #[test]
    fn trim_removes_leading_zeros() {
        let p = Poly::from_coeffs(vec![Fp::new(1), Fp::ZERO, Fp::ZERO]);
        assert_eq!(p.degree(), Some(0));
    }

    #[test]
    fn eval_horner_quadratic() {
        let p = poly(&[3, 2, 1]); // 3 + 2x + x^2
        assert_eq!(p.eval(Fp::new(2)), Fp::new(11));
    }

    #[test]
    fn eval_shares_uses_points_1_to_n() {
        let p = poly(&[5, 1]); // 5 + x
        assert_eq!(p.eval_shares(3), vec![Fp::new(6), Fp::new(7), Fp::new(8)]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = poly(&[1, 2, 3]);
        let b = poly(&[7, 0, 0, 9]);
        let s = &a + &b;
        assert_eq!(&s - &b, a);
    }

    #[test]
    fn mul_matches_known_product() {
        // (1 + x)(1 - x) = 1 - x^2
        let a = poly(&[1, 1]);
        let b = Poly::from_coeffs(vec![Fp::ONE, -Fp::ONE]);
        let prod = &a * &b;
        assert_eq!(prod, Poly::from_coeffs(vec![Fp::ONE, Fp::ZERO, -Fp::ONE]));
    }

    #[test]
    fn interpolate_recovers_polynomial() {
        let mut rng = StdRng::seed_from_u64(1);
        for deg in 0..8usize {
            let p = Poly::random_with_secret(Fp::new(777), deg, &mut rng);
            let pts: Vec<(Fp, Fp)> = (1..=deg as u64 + 1)
                .map(|i| (Fp::new(i), p.eval(Fp::new(i))))
                .collect();
            let q = Poly::interpolate(&pts);
            assert_eq!(p, q, "degree {deg}");
        }
    }

    #[test]
    fn interpolate_constant_term_is_secret() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = Poly::random_with_secret(Fp::new(424242), 3, &mut rng);
        let pts: Vec<(Fp, Fp)> = (1..=4u64)
            .map(|i| (Fp::new(i), p.eval(Fp::new(i))))
            .collect();
        let q = Poly::interpolate(&pts);
        assert_eq!(q.eval(Fp::ZERO), Fp::new(424242));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn interpolate_rejects_duplicate_points() {
        let pts = vec![(Fp::new(1), Fp::new(2)), (Fp::new(1), Fp::new(3))];
        let _ = Poly::interpolate(&pts);
    }

    #[test]
    fn div_rem_reconstructs() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let a = Poly::random_with_secret(Fp::random(&mut rng), 7, &mut rng);
            let b = Poly::random_with_secret(Fp::random(&mut rng), 3, &mut rng);
            if b.is_zero() {
                continue;
            }
            let (q, r) = a.div_rem(&b);
            let back = &(&q * &b) + &r;
            assert_eq!(back, a);
            assert!(r.degree().is_none_or(|d| d < b.degree().unwrap()));
        }
    }

    #[test]
    fn div_rem_smaller_dividend() {
        let a = poly(&[1]);
        let b = poly(&[0, 0, 1]);
        let (q, r) = a.div_rem(&b);
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    fn random_with_secret_has_requested_secret() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = Poly::random_with_secret(Fp::new(31337), 5, &mut rng);
        assert_eq!(p.eval(Fp::ZERO), Fp::new(31337));
    }

    #[test]
    fn scale_multiplies_evaluations() {
        let p = poly(&[1, 2, 3]);
        let s = Fp::new(9);
        let q = p.scale(s);
        for x in 0..5u64 {
            assert_eq!(q.eval(Fp::new(x)), p.eval(Fp::new(x)) * s);
        }
    }
}
