//! The prime field `GF(p)` with `p = 2^61 - 1` (a Mersenne prime).
//!
//! The modulus is large enough that random linear-combination checks have
//! negligible collision probability (`< 2^-60`), and small enough that a
//! product of two elements fits in a `u128` with cheap Mersenne reduction.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// The field modulus `p = 2^61 - 1`.
pub const MODULUS: u64 = (1u64 << 61) - 1;

/// An element of the prime field `GF(2^61 - 1)`.
///
/// The canonical representative is always kept in `0..MODULUS`.
///
/// # Example
///
/// ```
/// use mediator_field::Fp;
/// let a = Fp::new(5);
/// let b = Fp::new(7);
/// assert_eq!((a * b).as_u64(), 35);
/// assert_eq!((a - b) + b, a);
/// assert_eq!(a * a.inv().unwrap(), Fp::ONE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct Fp(u64);

impl Fp {
    /// The additive identity.
    pub const ZERO: Fp = Fp(0);
    /// The multiplicative identity.
    pub const ONE: Fp = Fp(1);

    /// Creates a field element, reducing `v` modulo `p`.
    #[inline]
    pub fn new(v: u64) -> Self {
        Fp(v % MODULUS)
    }

    /// Creates a field element from a signed integer (negative values wrap).
    #[inline]
    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Fp::new(v as u64)
        } else {
            -Fp::new(v.unsigned_abs())
        }
    }

    /// Returns the canonical representative in `0..p`.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is the additive identity.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Mersenne reduction of a `u128` product into `0..p`.
    #[inline]
    fn reduce128(x: u128) -> u64 {
        // Split into low 61 bits and high bits; since 2^61 ≡ 1 (mod p),
        // x = hi*2^61 + lo ≡ hi + lo.
        let lo = (x & (MODULUS as u128)) as u64;
        let hi = x >> 61;
        let mut r = lo as u128 + hi;
        // One more fold covers the full u128 range.
        r = (r & MODULUS as u128) + (r >> 61);
        let mut r = r as u64;
        if r >= MODULUS {
            r -= MODULUS;
        }
        r
    }

    /// Raises `self` to the power `e` by square-and-multiply.
    pub fn pow(self, mut e: u64) -> Self {
        let mut base = self;
        let mut acc = Fp::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            base *= base;
            e >>= 1;
        }
        acc
    }

    /// Returns the multiplicative inverse, or `None` for zero.
    ///
    /// Uses Fermat's little theorem (`a^(p-2)`), which is constant-time-ish
    /// and has no edge cases besides zero.
    pub fn inv(self) -> Option<Self> {
        if self.is_zero() {
            None
        } else {
            Some(self.pow(MODULUS - 2))
        }
    }

    /// Samples a uniformly random field element.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Rejection sampling over 61 bits keeps the distribution exactly
        // uniform (bias would otherwise be ~2^-61, but exactness is free).
        loop {
            let v = rng.gen::<u64>() & ((1u64 << 61) - 1);
            if v < MODULUS {
                return Fp(v);
            }
        }
    }

    /// Samples a uniformly random *nonzero* field element.
    pub fn random_nonzero<R: Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let v = Self::random(rng);
            if !v.is_zero() {
                return v;
            }
        }
    }
}

impl fmt::Debug for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp({})", self.0)
    }
}

impl fmt::Display for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Fp {
    fn from(v: u64) -> Self {
        Fp::new(v)
    }
}

impl From<u32> for Fp {
    fn from(v: u32) -> Self {
        Fp::new(v as u64)
    }
}

impl Add for Fp {
    type Output = Fp;
    #[inline]
    fn add(self, rhs: Fp) -> Fp {
        let mut s = self.0 + rhs.0; // < 2^62, no overflow
        if s >= MODULUS {
            s -= MODULUS;
        }
        Fp(s)
    }
}

impl Sub for Fp {
    type Output = Fp;
    #[inline]
    fn sub(self, rhs: Fp) -> Fp {
        let s = if self.0 >= rhs.0 {
            self.0 - rhs.0
        } else {
            self.0 + MODULUS - rhs.0
        };
        Fp(s)
    }
}

impl Mul for Fp {
    type Output = Fp;
    #[inline]
    fn mul(self, rhs: Fp) -> Fp {
        Fp(Fp::reduce128(self.0 as u128 * rhs.0 as u128))
    }
}

impl Div for Fp {
    type Output = Fp;
    /// # Panics
    /// Panics if `rhs` is zero.
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // field division IS mul by inverse
    fn div(self, rhs: Fp) -> Fp {
        self * rhs.inv().expect("division by zero in GF(2^61-1)")
    }
}

impl Neg for Fp {
    type Output = Fp;
    #[inline]
    fn neg(self) -> Fp {
        if self.0 == 0 {
            self
        } else {
            Fp(MODULUS - self.0)
        }
    }
}

impl AddAssign for Fp {
    fn add_assign(&mut self, rhs: Fp) {
        *self = *self + rhs;
    }
}
impl SubAssign for Fp {
    fn sub_assign(&mut self, rhs: Fp) {
        *self = *self - rhs;
    }
}
impl MulAssign for Fp {
    fn mul_assign(&mut self, rhs: Fp) {
        *self = *self * rhs;
    }
}
impl DivAssign for Fp {
    fn div_assign(&mut self, rhs: Fp) {
        *self = *self / rhs;
    }
}

impl Sum for Fp {
    fn sum<I: Iterator<Item = Fp>>(iter: I) -> Fp {
        iter.fold(Fp::ZERO, |a, b| a + b)
    }
}

impl Product for Fp {
    fn product<I: Iterator<Item = Fp>>(iter: I) -> Fp {
        iter.fold(Fp::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn modulus_is_mersenne_61() {
        assert_eq!(MODULUS, 2305843009213693951);
    }

    #[test]
    fn add_wraps_at_modulus() {
        assert_eq!(Fp::new(MODULUS - 1) + Fp::ONE, Fp::ZERO);
    }

    #[test]
    fn sub_wraps_below_zero() {
        assert_eq!(Fp::ZERO - Fp::ONE, Fp::new(MODULUS - 1));
    }

    #[test]
    fn new_reduces_large_values() {
        assert_eq!(Fp::new(MODULUS), Fp::ZERO);
        assert_eq!(Fp::new(MODULUS + 5), Fp::new(5));
        assert_eq!(Fp::new(u64::MAX), Fp::new(u64::MAX % MODULUS));
    }

    #[test]
    fn from_i64_handles_negatives() {
        assert_eq!(Fp::from_i64(-1), -Fp::ONE);
        assert_eq!(Fp::from_i64(-7) + Fp::new(7), Fp::ZERO);
        assert_eq!(Fp::from_i64(42), Fp::new(42));
    }

    #[test]
    fn mul_reduce_large_operands() {
        let a = Fp::new(MODULUS - 1); // = -1
        assert_eq!(a * a, Fp::ONE);
        let b = Fp::new(MODULUS - 2); // = -2
        assert_eq!(a * b, Fp::new(2));
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let a = Fp::new(12345);
        let mut acc = Fp::ONE;
        for e in 0..20u64 {
            assert_eq!(a.pow(e), acc);
            acc *= a;
        }
    }

    #[test]
    fn inverse_of_zero_is_none() {
        assert!(Fp::ZERO.inv().is_none());
    }

    #[test]
    fn inverse_roundtrip_random() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let a = Fp::random_nonzero(&mut rng);
            assert_eq!(a * a.inv().unwrap(), Fp::ONE);
        }
    }

    #[test]
    fn neg_is_additive_inverse() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..100 {
            let a = Fp::random(&mut rng);
            assert_eq!(a + (-a), Fp::ZERO);
        }
    }

    #[test]
    fn division_matches_inverse() {
        let a = Fp::new(999);
        let b = Fp::new(13);
        assert_eq!(a / b * b, a);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Fp::ONE / Fp::ZERO;
    }

    #[test]
    fn sum_and_product_impls() {
        let xs = [Fp::new(1), Fp::new(2), Fp::new(3)];
        assert_eq!(xs.iter().copied().sum::<Fp>(), Fp::new(6));
        assert_eq!(xs.iter().copied().product::<Fp>(), Fp::new(6));
    }

    #[test]
    fn random_is_in_range_and_deterministic() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let a = Fp::random(&mut r1);
            let b = Fp::random(&mut r2);
            assert_eq!(a, b);
            assert!(a.as_u64() < MODULUS);
        }
    }

    #[test]
    fn fermat_little_theorem_sample() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            let a = Fp::random_nonzero(&mut rng);
            assert_eq!(a.pow(MODULUS - 1), Fp::ONE);
        }
    }
}
