//! The prime field `GF(p)` with `p = 2^61 - 1` (a Mersenne prime).
//!
//! The modulus is large enough that random linear-combination checks have
//! negligible collision probability (`< 2^-60`), and small enough that a
//! product of two elements fits in a `u128` with cheap Mersenne reduction.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// The field modulus `p = 2^61 - 1`.
pub const MODULUS: u64 = (1u64 << 61) - 1;

/// An element of the prime field `GF(2^61 - 1)`.
///
/// The canonical representative is always kept in `0..MODULUS`.
///
/// # Example
///
/// ```
/// use mediator_field::Fp;
/// let a = Fp::new(5);
/// let b = Fp::new(7);
/// assert_eq!((a * b).as_u64(), 35);
/// assert_eq!((a - b) + b, a);
/// assert_eq!(a * a.inv().unwrap(), Fp::ONE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct Fp(u64);

impl Fp {
    /// The additive identity.
    pub const ZERO: Fp = Fp(0);
    /// The multiplicative identity.
    pub const ONE: Fp = Fp(1);

    /// Creates a field element, reducing `v` modulo `p`.
    ///
    /// Uses the same Mersenne fold as the multiplication path (`2^61 ≡ 1`,
    /// so high bits fold onto low bits) instead of a hardware division —
    /// `Fp::new` sits on share-grid loops (`x = 1..n`) all over the
    /// decoding kernel.
    #[inline]
    pub fn new(v: u64) -> Self {
        let r = (v & MODULUS) + (v >> 61);
        // r ≤ (2^61 - 1) + 7: one conditional subtraction canonicalises.
        Fp(if r >= MODULUS { r - MODULUS } else { r })
    }

    /// Creates a field element from a signed integer (negative values wrap).
    #[inline]
    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Fp::new(v as u64)
        } else {
            -Fp::new(v.unsigned_abs())
        }
    }

    /// Returns the canonical representative in `0..p`.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is the additive identity.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Mersenne reduction of a `u128` product into `0..p`.
    #[inline]
    fn reduce128(x: u128) -> u64 {
        // Split into low 61 bits and high bits; since 2^61 ≡ 1 (mod p),
        // x = hi*2^61 + lo ≡ hi + lo.
        let lo = (x & (MODULUS as u128)) as u64;
        let hi = x >> 61;
        let mut r = lo as u128 + hi;
        // One more fold covers the full u128 range.
        r = (r & MODULUS as u128) + (r >> 61);
        let mut r = r as u64;
        if r >= MODULUS {
            r -= MODULUS;
        }
        r
    }

    /// Fused `a·b − c·d` with a **single** Mersenne reduction.
    ///
    /// The row updates of Gaussian elimination (`pivot·mᵢⱼ − factor·pᵢⱼ`)
    /// are exactly this shape; fusing halves the reduction work on the
    /// decode kernel's innermost loop. `c·d` is subtracted by multiplying
    /// with the additive complement: both products are < 2¹²², so their
    /// sum fits a `u128` with room to spare.
    #[inline]
    pub fn mul_sub(a: Fp, b: Fp, c: Fp, d: Fp) -> Fp {
        // MODULUS − d.0 ≡ −d, and equals MODULUS when d = 0 — harmless,
        // since c·MODULUS ≡ 0.
        let t = a.0 as u128 * b.0 as u128 + c.0 as u128 * (MODULUS - d.0) as u128;
        Fp(Fp::reduce128(t))
    }

    /// Inner product `Σ aᵢ·bᵢ` with deferred reduction: products accumulate
    /// in a `u128` and fold only every 32 terms, so a length-`n` dot costs
    /// `n` multiplications and `⌈n/32⌉ + 1` reductions. Back-substitution
    /// and Horner-free evaluation sums are this shape.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn dot(xs: &[Fp], ys: &[Fp]) -> Fp {
        assert_eq!(xs.len(), ys.len(), "dot-product length mismatch");
        let mut acc: u128 = 0;
        for (chunk_x, chunk_y) in xs.chunks(32).zip(ys.chunks(32)) {
            for (&x, &y) in chunk_x.iter().zip(chunk_y) {
                // Each term < 2¹²²; 32 of them < 2¹²⁷.
                acc += x.0 as u128 * y.0 as u128;
            }
            // Partial fold keeps the accumulator small for the next chunk.
            acc = (acc & ((1u128 << 61) - 1)) + (acc >> 61);
        }
        Fp(Fp::reduce128(acc))
    }

    /// Raises `self` to the power `e` by square-and-multiply.
    pub fn pow(self, mut e: u64) -> Self {
        let mut base = self;
        let mut acc = Fp::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            base *= base;
            e >>= 1;
        }
        acc
    }

    /// Returns the multiplicative inverse, or `None` for zero.
    ///
    /// Uses Fermat's little theorem (`a^(p-2)`) via a fixed addition chain
    /// exploiting the Mersenne exponent structure: `p − 2 = 2⁶¹ − 3` has
    /// binary form `1⁵⁹01`, so `a^(2^k − 1)` ladders (doubling the run of
    /// ones with one multiply per rung) reach it in ~70 multiplications
    /// instead of the ~120 of plain square-and-multiply. Constant-time-ish
    /// and no edge cases besides zero.
    pub fn inv(self) -> Option<Self> {
        if self.is_zero() {
            return None;
        }
        // e_k := a^(2^k − 1), built by e_{j+k} = e_j^(2^k) · e_k.
        let sq = |x: Fp, times: u32| {
            let mut r = x;
            for _ in 0..times {
                r *= r;
            }
            r
        };
        let a = self;
        let e2 = sq(a, 1) * a; // a^3
        let e4 = sq(e2, 2) * e2;
        let e8 = sq(e4, 4) * e4;
        let e16 = sq(e8, 8) * e8;
        let e32 = sq(e16, 16) * e16;
        let e48 = sq(e32, 16) * e16;
        let e56 = sq(e48, 8) * e8;
        let e58 = sq(e56, 2) * e2;
        let e59 = sq(e58, 1) * a;
        // p − 2 = (2^59 − 1)·4 + 1.
        Some(sq(e59, 2) * a)
    }

    /// Inverts a whole slice with Montgomery's trick: one field inversion
    /// plus `3(n-1)` multiplications, instead of one `p-2` exponentiation
    /// per element. Zeros map to zero (they have no inverse); nonzero
    /// entries satisfy `batch_inv(xs)[i] == xs[i].inv().unwrap()`.
    ///
    /// This is the workhorse behind the barycentric interpolation weights
    /// and the Gaussian-elimination pivots in [`crate::rs`].
    pub fn batch_inv(xs: &[Fp]) -> Vec<Fp> {
        let mut out = vec![Fp::ONE; xs.len()];
        Fp::batch_inv_into(xs, &mut out);
        out
    }

    /// In-place variant of [`Fp::batch_inv`] writing into a caller-owned
    /// buffer (must be the same length as `xs`); lets hot loops reuse the
    /// allocation.
    pub fn batch_inv_into(xs: &[Fp], out: &mut [Fp]) {
        assert_eq!(xs.len(), out.len(), "batch_inv buffer length mismatch");
        // Prefix products of the nonzero entries; zeros are skipped so one
        // bad share cannot poison the whole batch.
        let mut acc = Fp::ONE;
        for (o, &x) in out.iter_mut().zip(xs) {
            *o = acc;
            if !x.is_zero() {
                acc *= x;
            }
        }
        // acc is a product of nonzero elements (or ONE), hence invertible.
        let mut inv = acc.inv().unwrap_or(Fp::ONE);
        for (o, &x) in out.iter_mut().zip(xs).rev() {
            if x.is_zero() {
                *o = Fp::ZERO;
            } else {
                *o *= inv;
                inv *= x;
            }
        }
    }

    /// Samples a uniformly random field element.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Rejection sampling over 61 bits keeps the distribution exactly
        // uniform (bias would otherwise be ~2^-61, but exactness is free).
        loop {
            let v = rng.gen::<u64>() & ((1u64 << 61) - 1);
            if v < MODULUS {
                return Fp(v);
            }
        }
    }

    /// Samples a uniformly random *nonzero* field element.
    pub fn random_nonzero<R: Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let v = Self::random(rng);
            if !v.is_zero() {
                return v;
            }
        }
    }
}

impl fmt::Debug for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp({})", self.0)
    }
}

impl fmt::Display for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Fp {
    fn from(v: u64) -> Self {
        Fp::new(v)
    }
}

impl From<u32> for Fp {
    fn from(v: u32) -> Self {
        Fp::new(v as u64)
    }
}

impl Add for Fp {
    type Output = Fp;
    #[inline]
    fn add(self, rhs: Fp) -> Fp {
        let mut s = self.0 + rhs.0; // < 2^62, no overflow
        if s >= MODULUS {
            s -= MODULUS;
        }
        Fp(s)
    }
}

impl Sub for Fp {
    type Output = Fp;
    #[inline]
    fn sub(self, rhs: Fp) -> Fp {
        let s = if self.0 >= rhs.0 {
            self.0 - rhs.0
        } else {
            self.0 + MODULUS - rhs.0
        };
        Fp(s)
    }
}

impl Mul for Fp {
    type Output = Fp;
    #[inline]
    fn mul(self, rhs: Fp) -> Fp {
        Fp(Fp::reduce128(self.0 as u128 * rhs.0 as u128))
    }
}

impl Div for Fp {
    type Output = Fp;
    /// # Panics
    /// Panics if `rhs` is zero.
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // field division IS mul by inverse
    fn div(self, rhs: Fp) -> Fp {
        self * rhs.inv().expect("division by zero in GF(2^61-1)")
    }
}

impl Neg for Fp {
    type Output = Fp;
    #[inline]
    fn neg(self) -> Fp {
        if self.0 == 0 {
            self
        } else {
            Fp(MODULUS - self.0)
        }
    }
}

impl AddAssign for Fp {
    fn add_assign(&mut self, rhs: Fp) {
        *self = *self + rhs;
    }
}
impl SubAssign for Fp {
    fn sub_assign(&mut self, rhs: Fp) {
        *self = *self - rhs;
    }
}
impl MulAssign for Fp {
    fn mul_assign(&mut self, rhs: Fp) {
        *self = *self * rhs;
    }
}
impl DivAssign for Fp {
    fn div_assign(&mut self, rhs: Fp) {
        *self = *self / rhs;
    }
}

impl Sum for Fp {
    fn sum<I: Iterator<Item = Fp>>(iter: I) -> Fp {
        iter.fold(Fp::ZERO, |a, b| a + b)
    }
}

impl Product for Fp {
    fn product<I: Iterator<Item = Fp>>(iter: I) -> Fp {
        iter.fold(Fp::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn modulus_is_mersenne_61() {
        assert_eq!(MODULUS, 2305843009213693951);
    }

    #[test]
    fn add_wraps_at_modulus() {
        assert_eq!(Fp::new(MODULUS - 1) + Fp::ONE, Fp::ZERO);
    }

    #[test]
    fn sub_wraps_below_zero() {
        assert_eq!(Fp::ZERO - Fp::ONE, Fp::new(MODULUS - 1));
    }

    #[test]
    fn new_reduces_large_values() {
        assert_eq!(Fp::new(MODULUS), Fp::ZERO);
        assert_eq!(Fp::new(MODULUS + 5), Fp::new(5));
        assert_eq!(Fp::new(u64::MAX), Fp::new(u64::MAX % MODULUS));
    }

    #[test]
    fn from_i64_handles_negatives() {
        assert_eq!(Fp::from_i64(-1), -Fp::ONE);
        assert_eq!(Fp::from_i64(-7) + Fp::new(7), Fp::ZERO);
        assert_eq!(Fp::from_i64(42), Fp::new(42));
    }

    #[test]
    fn mul_reduce_large_operands() {
        let a = Fp::new(MODULUS - 1); // = -1
        assert_eq!(a * a, Fp::ONE);
        let b = Fp::new(MODULUS - 2); // = -2
        assert_eq!(a * b, Fp::new(2));
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let a = Fp::new(12345);
        let mut acc = Fp::ONE;
        for e in 0..20u64 {
            assert_eq!(a.pow(e), acc);
            acc *= a;
        }
    }

    #[test]
    fn inverse_of_zero_is_none() {
        assert!(Fp::ZERO.inv().is_none());
    }

    #[test]
    fn inverse_roundtrip_random() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let a = Fp::random_nonzero(&mut rng);
            assert_eq!(a * a.inv().unwrap(), Fp::ONE);
        }
    }

    #[test]
    fn neg_is_additive_inverse() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..100 {
            let a = Fp::random(&mut rng);
            assert_eq!(a + (-a), Fp::ZERO);
        }
    }

    #[test]
    fn division_matches_inverse() {
        let a = Fp::new(999);
        let b = Fp::new(13);
        assert_eq!(a / b * b, a);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Fp::ONE / Fp::ZERO;
    }

    #[test]
    fn sum_and_product_impls() {
        let xs = [Fp::new(1), Fp::new(2), Fp::new(3)];
        assert_eq!(xs.iter().copied().sum::<Fp>(), Fp::new(6));
        assert_eq!(xs.iter().copied().product::<Fp>(), Fp::new(6));
    }

    #[test]
    fn random_is_in_range_and_deterministic() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let a = Fp::random(&mut r1);
            let b = Fp::random(&mut r2);
            assert_eq!(a, b);
            assert!(a.as_u64() < MODULUS);
        }
    }

    #[test]
    fn mul_sub_matches_separate_ops() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..200 {
            let (a, b, c, d) = (
                Fp::random(&mut rng),
                Fp::random(&mut rng),
                Fp::random(&mut rng),
                Fp::random(&mut rng),
            );
            assert_eq!(Fp::mul_sub(a, b, c, d), a * b - c * d);
        }
        assert_eq!(Fp::mul_sub(Fp::ONE, Fp::ONE, Fp::ZERO, Fp::ZERO), Fp::ONE);
        let big = Fp::new(MODULUS - 1);
        assert_eq!(Fp::mul_sub(big, big, big, big), Fp::ZERO);
    }

    #[test]
    fn dot_matches_naive_sum() {
        let mut rng = StdRng::seed_from_u64(32);
        for len in [0usize, 1, 31, 32, 33, 100] {
            let xs: Vec<Fp> = (0..len).map(|_| Fp::random(&mut rng)).collect();
            let ys: Vec<Fp> = (0..len).map(|_| Fp::random(&mut rng)).collect();
            let naive: Fp = xs.iter().zip(&ys).map(|(&x, &y)| x * y).sum();
            assert_eq!(Fp::dot(&xs, &ys), naive, "len {len}");
        }
    }

    #[test]
    fn new_fold_matches_division_on_edges() {
        for v in [
            0u64,
            1,
            MODULUS - 1,
            MODULUS,
            MODULUS + 1,
            2 * MODULUS,
            2 * MODULUS + 3,
            u64::MAX - 1,
            u64::MAX,
        ] {
            assert_eq!(Fp::new(v).as_u64(), v % MODULUS, "v={v}");
        }
    }

    #[test]
    fn batch_inv_matches_scalar_inv() {
        let mut rng = StdRng::seed_from_u64(21);
        let xs: Vec<Fp> = (0..50).map(|_| Fp::random_nonzero(&mut rng)).collect();
        let invs = Fp::batch_inv(&xs);
        for (x, i) in xs.iter().zip(&invs) {
            assert_eq!(*i, x.inv().unwrap());
        }
    }

    #[test]
    fn batch_inv_skips_zeros() {
        let xs = [Fp::new(2), Fp::ZERO, Fp::new(3), Fp::ZERO];
        let invs = Fp::batch_inv(&xs);
        assert_eq!(invs[0], Fp::new(2).inv().unwrap());
        assert_eq!(invs[1], Fp::ZERO);
        assert_eq!(invs[2], Fp::new(3).inv().unwrap());
        assert_eq!(invs[3], Fp::ZERO);
        assert!(Fp::batch_inv(&[]).is_empty());
        assert_eq!(Fp::batch_inv(&[Fp::ZERO]), vec![Fp::ZERO]);
    }

    #[test]
    fn fermat_little_theorem_sample() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            let a = Fp::random_nonzero(&mut rng);
            assert_eq!(a.pow(MODULUS - 1), Fp::ONE);
        }
    }
}
