//! A minimal arbitrary-precision unsigned integer.
//!
//! Only what the Lemma 6.8 scheduler-class counting needs: construction from
//! `u64`, multiplication by `u64`, full multiplication, comparison, factorial,
//! power, division by another `BigUint` (for `(4rn)!/(r!)^{2n}`), and a base-2
//! logarithm estimate. Little-endian base-2^32 limbs keep the carry logic in
//! `u64` without any `unsafe`.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Arbitrary-precision unsigned integer (little-endian `u32` limbs).
///
/// # Example
///
/// ```
/// use mediator_field::BigUint;
/// let f10 = BigUint::factorial(10);
/// assert_eq!(f10, BigUint::from(3628800u64));
/// assert!(BigUint::factorial(25) > BigUint::from(u64::MAX));
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct BigUint {
    /// Invariant: no trailing zero limbs (zero is the empty vector).
    limbs: Vec<u32>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Returns `true` for the value zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    fn trim(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `n!` by repeated multiplication.
    pub fn factorial(n: u64) -> Self {
        let mut acc = BigUint::one();
        for i in 2..=n {
            acc = acc.mul_u64(i);
        }
        acc
    }

    /// Multiplies by a `u64` scalar.
    pub fn mul_u64(&self, m: u64) -> Self {
        if m == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let (lo, hi) = (m as u32 as u64, m >> 32);
        let a = self.mul_u32(lo as u32);
        if hi == 0 {
            return a;
        }
        let b = self.mul_u32(hi as u32).shl_limbs(1);
        a.add(&b)
    }

    fn mul_u32(&self, m: u32) -> Self {
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u64;
        for &l in &self.limbs {
            let v = l as u64 * m as u64 + carry;
            out.push(v as u32);
            carry = v >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        let mut r = BigUint { limbs: out };
        r.trim();
        r
    }

    fn shl_limbs(&self, k: usize) -> Self {
        if self.is_zero() {
            return BigUint::zero();
        }
        let mut limbs = vec![0u32; k];
        limbs.extend_from_slice(&self.limbs);
        BigUint { limbs }
    }

    /// Adds two big integers.
    pub fn add(&self, rhs: &Self) -> Self {
        let n = self.limbs.len().max(rhs.limbs.len());
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = 0u64;
        for i in 0..n {
            let a = *self.limbs.get(i).unwrap_or(&0) as u64;
            let b = *rhs.limbs.get(i).unwrap_or(&0) as u64;
            let v = a + b + carry;
            out.push(v as u32);
            carry = v >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        let mut r = BigUint { limbs: out };
        r.trim();
        r
    }

    /// Full multiplication (schoolbook; operands here are small).
    pub fn mul(&self, rhs: &Self) -> Self {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let v = a as u64 * b as u64 + out[i + j] + carry;
                out[i + j] = v & 0xFFFF_FFFF;
                carry = v >> 32;
            }
            let mut k = i + rhs.limbs.len();
            while carry > 0 {
                let v = out[k] + carry;
                out[k] = v & 0xFFFF_FFFF;
                carry = v >> 32;
                k += 1;
            }
        }
        let mut r = BigUint {
            limbs: out.into_iter().map(|v| v as u32).collect(),
        };
        r.trim();
        r
    }

    /// `self^e` by square-and-multiply.
    pub fn pow(&self, mut e: u64) -> Self {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mul(&base);
            }
            base = base.mul(&base);
            e >>= 1;
        }
        acc
    }

    /// Floor division by another big integer.
    ///
    /// Long division limb-by-limb on bits; operands in this codebase are a
    /// few thousand bits at most, so the simple algorithm is fine.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div(&self, rhs: &Self) -> Self {
        assert!(!rhs.is_zero(), "BigUint division by zero");
        if self < rhs {
            return BigUint::zero();
        }
        let bits = self.bit_len();
        let mut quotient = BigUint::zero();
        let mut rem = BigUint::zero();
        for i in (0..bits).rev() {
            rem = rem.shl1();
            if self.bit(i) {
                rem = rem.add(&BigUint::one());
            }
            quotient = quotient.shl1();
            if &rem >= rhs {
                rem = rem.sub(rhs);
                quotient = quotient.add(&BigUint::one());
            }
        }
        quotient
    }

    fn shl1(&self) -> Self {
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u32;
        for &l in &self.limbs {
            out.push((l << 1) | carry);
            carry = l >> 31;
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut r = BigUint { limbs: out };
        r.trim();
        r
    }

    /// Subtraction; `rhs` must not exceed `self`.
    ///
    /// # Panics
    ///
    /// Panics on underflow.
    pub fn sub(&self, rhs: &Self) -> Self {
        assert!(self >= rhs, "BigUint subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i] as i64;
            let b = *rhs.limbs.get(i).unwrap_or(&0) as i64;
            let mut v = a - b - borrow;
            if v < 0 {
                v += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(v as u32);
        }
        let mut r = BigUint { limbs: out };
        r.trim();
        r
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 32, i % 32);
        self.limbs.get(limb).is_some_and(|&l| (l >> off) & 1 == 1)
    }

    /// Approximate base-2 logarithm (`bit_len - 1` plus a fractional part
    /// from the top 53 bits). Returns negative infinity for zero.
    pub fn log2(&self) -> f64 {
        if self.is_zero() {
            return f64::NEG_INFINITY;
        }
        let bl = self.bit_len();
        // Take the top ≤ 53 bits as a float mantissa.
        let take = bl.min(53);
        let mut mant = 0u64;
        for i in ((bl - take)..bl).rev() {
            mant = (mant << 1) | self.bit(i) as u64;
        }
        (mant as f64).log2() + (bl - take) as f64
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        let mut r = BigUint {
            limbs: vec![v as u32, (v >> 32) as u32],
        };
        r.trim();
        r
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bit_len() <= 64 {
            let mut v = 0u64;
            for (i, &l) in self.limbs.iter().enumerate() {
                v |= (l as u64) << (32 * i);
            }
            write!(f, "BigUint({v})")
        } else {
            write!(f, "BigUint(~2^{:.1})", self.log2())
        }
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bit_len() <= 64 {
            let mut v = 0u64;
            for (i, &l) in self.limbs.iter().enumerate() {
                v |= (l as u64) << (32 * i);
            }
            write!(f, "{v}")
        } else {
            write!(f, "≈2^{:.1}", self.log2())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_factorials_exact() {
        let expect: [u64; 11] = [1, 1, 2, 6, 24, 120, 720, 5040, 40320, 362880, 3628800];
        for (n, &e) in expect.iter().enumerate() {
            assert_eq!(BigUint::factorial(n as u64), BigUint::from(e), "{n}!");
        }
    }

    #[test]
    fn factorial_20_fits_u64() {
        assert_eq!(
            BigUint::factorial(20),
            BigUint::from(2432902008176640000u64)
        );
    }

    #[test]
    fn comparison_orders_by_magnitude() {
        assert!(BigUint::factorial(30) > BigUint::factorial(29));
        assert!(BigUint::from(0u64) < BigUint::one());
        assert_eq!(
            BigUint::from(5u64).cmp(&BigUint::from(5u64)),
            Ordering::Equal
        );
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = BigUint::factorial(25);
        let b = BigUint::factorial(20);
        assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = BigUint::one().sub(&BigUint::from(2u64));
    }

    #[test]
    fn mul_matches_factorial_identity() {
        // 10! * 11 = 11!
        assert_eq!(BigUint::factorial(10).mul_u64(11), BigUint::factorial(11));
        assert_eq!(
            BigUint::factorial(10).mul(&BigUint::from(11u64)),
            BigUint::factorial(11)
        );
    }

    #[test]
    fn div_factorials() {
        // 12! / 10! = 132
        let q = BigUint::factorial(12).div(&BigUint::factorial(10));
        assert_eq!(q, BigUint::from(132u64));
    }

    #[test]
    fn div_rounds_down() {
        let q = BigUint::from(7u64).div(&BigUint::from(2u64));
        assert_eq!(q, BigUint::from(3u64));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = BigUint::one().div(&BigUint::zero());
    }

    #[test]
    fn pow_small() {
        assert_eq!(BigUint::from(3u64).pow(4), BigUint::from(81u64));
        assert_eq!(BigUint::from(2u64).pow(70).bit_len(), 71);
    }

    #[test]
    fn log2_close_to_lgamma() {
        // log2(100!) = 524.765...
        let l = BigUint::factorial(100).log2();
        assert!((l - 524.765).abs() < 0.01, "log2(100!) = {l}");
    }

    #[test]
    fn bit_len_and_bits() {
        let v = BigUint::from(0b1011u64);
        assert_eq!(v.bit_len(), 4);
        assert!(v.bit(0) && v.bit(1) && !v.bit(2) && v.bit(3));
    }

    #[test]
    fn mul_u64_with_high_bits() {
        let big = u64::MAX;
        let a = BigUint::from(big).mul_u64(big);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        let expect = BigUint::from(2u64)
            .pow(128)
            .sub(&BigUint::from(2u64).pow(65))
            .add(&BigUint::one());
        assert_eq!(a, expect);
    }
}
