//! Property-based tests: field axioms, polynomial identities, and robust
//! decoding under arbitrary corruption patterns.

use mediator_field::{rs, BigUint, Fp, Poly};
use proptest::prelude::*;

fn arb_fp() -> impl Strategy<Value = Fp> {
    any::<u64>().prop_map(Fp::new)
}

fn arb_poly(max_deg: usize) -> impl Strategy<Value = Poly> {
    proptest::collection::vec(arb_fp(), 1..=max_deg + 1).prop_map(Poly::from_coeffs)
}

proptest! {
    #[test]
    fn field_addition_commutes(a in arb_fp(), b in arb_fp()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn field_multiplication_commutes_and_associates(a in arb_fp(), b in arb_fp(), c in arb_fp()) {
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn field_distributive_law(a in arb_fp(), b in arb_fp(), c in arb_fp()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn field_additive_inverse(a in arb_fp()) {
        prop_assert_eq!(a + (-a), Fp::ZERO);
        prop_assert_eq!(a - a, Fp::ZERO);
    }

    #[test]
    fn field_multiplicative_inverse(a in arb_fp()) {
        if !a.is_zero() {
            prop_assert_eq!(a * a.inv().unwrap(), Fp::ONE);
        }
    }

    #[test]
    fn pow_adds_exponents(a in arb_fp(), e1 in 0u64..64, e2 in 0u64..64) {
        prop_assert_eq!(a.pow(e1) * a.pow(e2), a.pow(e1 + e2));
    }

    /// Montgomery's trick agrees with Fermat inversion on every nonzero
    /// entry, for arbitrary mixes of zero and nonzero inputs.
    #[test]
    fn batch_inv_matches_scalar_inv(xs in proptest::collection::vec(any::<u64>(), 0..40)) {
        let xs: Vec<Fp> = xs.into_iter().map(Fp::new).collect();
        let invs = Fp::batch_inv(&xs);
        prop_assert_eq!(invs.len(), xs.len());
        for (x, got) in xs.iter().zip(&invs) {
            match x.inv() {
                Some(inv) => prop_assert_eq!(*got, inv),
                None => prop_assert_eq!(*got, Fp::ZERO),
            }
        }
    }

    #[test]
    fn poly_add_is_pointwise(p in arb_poly(6), q in arb_poly(6), x in arb_fp()) {
        let sum = &p + &q;
        prop_assert_eq!(sum.eval(x), p.eval(x) + q.eval(x));
    }

    #[test]
    fn poly_mul_is_pointwise(p in arb_poly(5), q in arb_poly(5), x in arb_fp()) {
        let prod = &p * &q;
        prop_assert_eq!(prod.eval(x), p.eval(x) * q.eval(x));
    }

    #[test]
    fn poly_div_rem_identity(p in arb_poly(8), q in arb_poly(4)) {
        if !q.is_zero() {
            let (quot, rem) = p.div_rem(&q);
            let back = &(&quot * &q) + &rem;
            prop_assert_eq!(back, p);
        }
    }

    #[test]
    fn interpolation_roundtrip(p in arb_poly(6)) {
        let deg = p.degree().unwrap_or(0);
        let pts: Vec<(Fp, Fp)> = (1..=deg as u64 + 1)
            .map(|i| (Fp::new(i), p.eval(Fp::new(i))))
            .collect();
        let q = Poly::interpolate(&pts);
        prop_assert_eq!(p, q);
    }

    /// The headline robustness property: for any degree ≤ 4, any error count
    /// e ≤ 2, any subset of corrupted positions and any corruption values,
    /// Berlekamp–Welch recovers the true polynomial from deg + 2e + 1 points.
    #[test]
    fn robust_decode_recovers_under_arbitrary_corruption(
        secret in arb_fp(),
        deg in 0usize..4,
        e in 0usize..3,
        corrupt_sel in proptest::collection::vec(any::<u16>(), 3),
        deltas in proptest::collection::vec(1u64..1_000_000, 3),
        coeff_seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(coeff_seed);
        let p = Poly::random_with_secret(secret, deg, &mut rng);
        let n = deg + 2 * e + 1;
        let mut pts: Vec<(Fp, Fp)> = (1..=n as u64)
            .map(|i| (Fp::new(i), p.eval(Fp::new(i))))
            .collect();
        // Pick e distinct positions to corrupt.
        let mut positions: Vec<usize> = (0..n).collect();
        for (i, sel) in corrupt_sel.iter().enumerate().take(e) {
            let j = i + (*sel as usize) % (n - i);
            positions.swap(i, j);
        }
        for (i, &pos) in positions.iter().take(e).enumerate() {
            pts[pos].1 += Fp::new(deltas[i]);
        }
        let (q, bad) = rs::decode_robust(&pts, deg, e).expect("decode");
        prop_assert_eq!(q, p);
        prop_assert_eq!(bad.len(), e.min(bad.len() + e - bad.len())); // bad ⊆ corrupted
    }

    #[test]
    fn biguint_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let prod = BigUint::from(a).mul(&BigUint::from(b));
        let expect = a as u128 * b as u128;
        let lo = BigUint::from(expect as u64);
        let hi = BigUint::from((expect >> 64) as u64);
        let reference = hi.mul(&BigUint::from(u64::MAX)).add(&hi).add(&lo);
        prop_assert_eq!(prod, reference);
    }

    #[test]
    fn biguint_add_sub_roundtrip(a in any::<u64>(), b in any::<u64>()) {
        let x = BigUint::from(a);
        let y = BigUint::from(b);
        prop_assert_eq!(x.add(&y).sub(&y), x);
    }

    #[test]
    fn biguint_div_is_floor_division(a in any::<u64>(), b in 1u64..u64::MAX) {
        let q = BigUint::from(a).div(&BigUint::from(b));
        prop_assert_eq!(q, BigUint::from(a / b));
    }
}
