//! Outgoing-message plumbing shared by the state machines.
//!
//! The canonical definitions now live in [`mediator_sim::sansio`] — the
//! shared sans-IO driving contract — so every runtime (the full `World` and
//! the legacy [`Net`](crate::harness::Net) test driver) speaks the same
//! shapes. This module re-exports them under their historical paths.

pub use mediator_sim::sansio::{map_batch, Dest, Outgoing};
