//! Outgoing-message plumbing shared by the state machines.
//!
//! The canonical definitions now live in [`mediator_sim::sansio`] — the
//! shared sans-IO driving contract — so every runtime (the full `World` and
//! the legacy [`Net`](crate::harness::Net) test driver) speaks the same
//! shapes. This module re-exports them under their historical paths.
//!
//! [`Payload`] is the broadcast fan-out companion: `route_batch` clones a
//! [`Dest::All`] message once per destination, so `Vec<Fp>`-bearing wire
//! types wrap their heavy part in `Payload` to make each copy a refcount
//! bump (see e.g. `mediator_vss::DetectMsg::Open`). State machines generic
//! over a value type get the same effect by instantiating `V = Payload<…>`
//! — an `RbcState<Payload<Vec<Fp>>>` broadcasts one shared buffer to all
//! `n` players.

pub use mediator_sim::sansio::{map_batch, Dest, Outgoing, Payload};
