//! Outgoing-message plumbing shared by the state machines.

use serde::{Deserialize, Serialize};

/// Where an outgoing message goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dest {
    /// Point-to-point to one process.
    One(usize),
    /// To every process, **including the sender** (a process "receiving" its
    /// own broadcast keeps the state machines uniform; the embedding layer
    /// may shortcut the self-copy).
    All,
}

/// An outgoing message from a state machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outgoing<M> {
    /// Destination.
    pub dest: Dest,
    /// Payload.
    pub msg: M,
}

impl<M> Outgoing<M> {
    /// Convenience constructor for a broadcast.
    pub fn all(msg: M) -> Self {
        Outgoing { dest: Dest::All, msg }
    }

    /// Convenience constructor for a point-to-point message.
    pub fn to(dst: usize, msg: M) -> Self {
        Outgoing { dest: Dest::One(dst), msg }
    }

    /// Maps the payload, keeping the destination (used to wrap sub-protocol
    /// messages with instance tags).
    pub fn map<N>(self, f: impl FnOnce(M) -> N) -> Outgoing<N> {
        Outgoing { dest: self.dest, msg: f(self.msg) }
    }
}

/// Maps a whole batch of outgoing messages (instance-tag wrapping).
pub fn map_batch<M, N>(batch: Vec<Outgoing<M>>, mut f: impl FnMut(M) -> N) -> Vec<Outgoing<N>> {
    batch.into_iter().map(|o| o.map(&mut f)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_destination() {
        let o = Outgoing::to(3, 7u32).map(|v| v + 1);
        assert_eq!(o.dest, Dest::One(3));
        assert_eq!(o.msg, 8);
        let b = map_batch(vec![Outgoing::all(1u8), Outgoing::to(0, 2u8)], |v| v as u16 * 10);
        assert_eq!(b[0].msg, 10);
        assert_eq!(b[1].msg, 20);
    }
}
