//! [`SansIo`] drivers for the broadcast-layer state machines.
//!
//! Each peer bundles one player's state machine with the input it
//! contributes at start, so the generic
//! [`SansIoProcess`](mediator_sim::sansio::SansIoProcess) adapter (or the
//! [`run_machines`](mediator_sim::sansio::run_machines) runner) can drive
//! it inside a full `World` — under every scheduler, with traces, the
//! starvation bound, and behaviour-closure failure injection.
//!
//! Termination discipline (`is_done`): a peer only reports done when its
//! protocol's own rule says it is safe to stop participating — RBC after
//! delivery (its Echo/Ready contribution is already on the wire, and Ready
//! amplification carries any late peer over the line), ABA when the Bracha
//! `2t+1`-Done gadget fires, ACS when the subset is output *and* every
//! constituent agreement instance has halted (stopping earlier could strand
//! peers below the `n − t` quorum of a still-running round).

use crate::aba::{AbaMsg, AbaState};
use crate::acs::{AcsMsg, AcsState};
use crate::rbc::{RbcMsg, RbcState};
use mediator_sim::sansio::{Outgoing, SansIo};
use rand::rngs::StdRng;
use std::collections::BTreeMap;

/// One player in one reliable-broadcast instance. The dealer carries the
/// value to broadcast; everyone else is purely reactive.
#[derive(Debug, Clone)]
pub struct RbcPeer<V> {
    state: RbcState<V>,
    input: Option<V>,
}

impl<V: Clone + Ord> RbcPeer<V> {
    /// Creates the peer for `me`; `value` must be `Some` iff `me == dealer`.
    pub fn new(n: usize, t: usize, dealer: usize, me: usize, value: Option<V>) -> Self {
        assert_eq!(
            value.is_some(),
            me == dealer,
            "exactly the dealer supplies a value"
        );
        RbcPeer {
            state: RbcState::new(n, t, dealer),
            input: value,
        }
    }
}

impl<V: Clone + Ord> SansIo for RbcPeer<V> {
    type Msg = RbcMsg<V>;
    type Output = V;

    fn on_start(&mut self, _rng: &mut StdRng) -> Vec<Outgoing<RbcMsg<V>>> {
        match self.input.take() {
            Some(v) => self.state.start(v),
            None => Vec::new(),
        }
    }

    fn on_message(
        &mut self,
        from: usize,
        msg: RbcMsg<V>,
        _rng: &mut StdRng,
    ) -> (Vec<Outgoing<RbcMsg<V>>>, Option<V>) {
        self.state.on_message(from, msg)
    }

    fn is_done(&self) -> bool {
        self.state.is_delivered()
    }
}

/// One player in one binary-agreement instance, carrying its input vote.
#[derive(Debug, Clone)]
pub struct AbaPeer {
    state: AbaState,
    input: Option<bool>,
}

impl AbaPeer {
    /// Creates the peer around a pre-built [`AbaState`] (the coin source is
    /// the caller's choice) and the player's input vote.
    pub fn new(state: AbaState, input: bool) -> Self {
        AbaPeer {
            state,
            input: Some(input),
        }
    }
}

impl SansIo for AbaPeer {
    type Msg = AbaMsg;
    type Output = bool;

    fn on_start(&mut self, _rng: &mut StdRng) -> Vec<Outgoing<AbaMsg>> {
        match self.input.take() {
            Some(v) => self.state.start(v),
            None => Vec::new(),
        }
    }

    fn on_message(
        &mut self,
        from: usize,
        msg: AbaMsg,
        _rng: &mut StdRng,
    ) -> (Vec<Outgoing<AbaMsg>>, Option<bool>) {
        self.state.on_message(from, msg)
    }

    fn is_done(&self) -> bool {
        self.state.is_halted()
    }
}

/// One player in an agreement-on-common-subset execution, carrying the value
/// it contributes.
#[derive(Debug, Clone)]
pub struct AcsPeer<V> {
    state: AcsState<V>,
    input: Option<V>,
}

impl<V: Clone + Ord> AcsPeer<V> {
    /// Creates the peer for player `me` contributing `value`; all agreement
    /// instances share the ideal coin seeded with `coin_seed`.
    pub fn new(n: usize, t: usize, me: usize, coin_seed: u64, value: V) -> Self {
        AcsPeer {
            state: AcsState::new(n, t, me, coin_seed),
            input: Some(value),
        }
    }
}

impl<V: Clone + Ord> SansIo for AcsPeer<V> {
    type Msg = AcsMsg<V>;
    type Output = BTreeMap<usize, V>;

    fn on_start(&mut self, _rng: &mut StdRng) -> Vec<Outgoing<AcsMsg<V>>> {
        match self.input.take() {
            Some(v) => self.state.start(v),
            None => Vec::new(),
        }
    }

    fn on_message(
        &mut self,
        from: usize,
        msg: AcsMsg<V>,
        _rng: &mut StdRng,
    ) -> (Vec<Outgoing<AcsMsg<V>>>, Option<BTreeMap<usize, V>>) {
        self.state.on_message(from, msg)
    }

    fn is_done(&self) -> bool {
        self.state.is_finished()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coin::IdealCoin;
    use mediator_sim::sansio::run_machines;
    use mediator_sim::{SchedulerKind, TerminationKind};

    fn schedulers() -> Vec<SchedulerKind> {
        vec![
            SchedulerKind::Random,
            SchedulerKind::Fifo,
            SchedulerKind::Lifo,
            SchedulerKind::TargetedDelay(vec![0]),
        ]
    }

    #[test]
    fn rbc_under_world_delivers_for_all_schedulers() {
        for kind in schedulers() {
            for seed in 0..4 {
                let machines: Vec<RbcPeer<u64>> = (0..4)
                    .map(|me| RbcPeer::new(4, 1, 0, me, (me == 0).then_some(42)))
                    .collect();
                let (outcome, outputs) =
                    run_machines(machines, Vec::new(), kind.build().as_mut(), seed, 200_000);
                assert_eq!(outcome.termination, TerminationKind::Quiescent, "{kind:?}");
                for (i, o) in outputs.iter().enumerate() {
                    assert_eq!(*o, Some(42), "player {i} under {kind:?} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn rbc_broadcasts_shared_payloads_without_deep_copies() {
        use crate::outgoing::Payload;
        // A Vec<Fp>-sized value: instantiating V = Payload<…> makes every
        // Echo/Ready broadcast a refcount bump instead of a vector clone.
        let value: Payload<Vec<u64>> = Payload::new((0..256).collect());
        for seed in 0..3 {
            let machines: Vec<RbcPeer<Payload<Vec<u64>>>> = (0..4)
                .map(|me| RbcPeer::new(4, 1, 0, me, (me == 0).then(|| value.clone())))
                .collect();
            let (outcome, outputs) = run_machines(
                machines,
                Vec::new(),
                SchedulerKind::Random.build().as_mut(),
                seed,
                200_000,
            );
            assert_eq!(outcome.termination, TerminationKind::Quiescent);
            for o in outputs.iter() {
                assert_eq!(o.as_ref(), Some(&value), "seed {seed}");
            }
        }
    }

    #[test]
    fn aba_under_world_agrees_for_all_schedulers() {
        for kind in schedulers() {
            for seed in 0..4 {
                let machines: Vec<AbaPeer> = (0..4)
                    .map(|_| {
                        AbaPeer::new(AbaState::new(4, 1, 0, Box::new(IdealCoin::new(9))), true)
                    })
                    .collect();
                let (_, outputs) =
                    run_machines(machines, Vec::new(), kind.build().as_mut(), seed, 500_000);
                for (i, o) in outputs.iter().enumerate() {
                    assert_eq!(*o, Some(true), "player {i} under {kind:?} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn acs_under_world_outputs_common_subset() {
        for kind in schedulers() {
            for seed in 0..3 {
                let machines: Vec<AcsPeer<u64>> = (0..4)
                    .map(|me| AcsPeer::new(4, 1, me, 7, 100 + me as u64))
                    .collect();
                let (outcome, outputs) =
                    run_machines(machines, Vec::new(), kind.build().as_mut(), seed, 1_000_000);
                assert_eq!(outcome.termination, TerminationKind::Quiescent, "{kind:?}");
                let first = outputs[0].clone().expect("output");
                assert!(first.len() >= 3, "|S| >= n - t");
                for o in &outputs {
                    assert_eq!(o.as_ref(), Some(&first), "{kind:?} seed {seed}");
                }
            }
        }
    }
}
