//! Bracha reliable broadcast (`t < n/3`).
//!
//! Guarantees, for `n > 3t` with at most `t` byzantine players:
//!
//! * **Validity** — if the dealer is honest and broadcasts `v`, every honest
//!   player eventually delivers `v`.
//! * **Agreement** — if any honest player delivers `v`, every honest player
//!   eventually delivers `v` (even with a byzantine dealer).
//! * **Integrity** — honest players deliver at most once.
//!
//! The classic echo/ready structure: the dealer sends `Init(v)`; players
//! echo; `⌈(n+t+1)/2⌉` echoes (or `t+1` readies) trigger `Ready(v)`;
//! `2t+1` readies deliver.

use crate::outgoing::Outgoing;
use serde::{Deserialize, Serialize};

/// Reliable-broadcast wire messages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RbcMsg<V> {
    /// Dealer's initial value.
    Init(V),
    /// Echo of the dealer's value.
    Echo(V),
    /// Ready to deliver.
    Ready(V),
}

/// One player's state in one reliable-broadcast instance.
///
/// Drive with [`RbcState::start`] (dealer only) and [`RbcState::on_message`];
/// the latter returns messages to send plus `Some(value)` exactly once, when
/// the instance delivers.
#[derive(Debug, Clone)]
pub struct RbcState<V> {
    n: usize,
    t: usize,
    dealer: usize,
    echoed: bool,
    ready_sent: bool,
    delivered: bool,
    /// Echo senders per value (values collapse via Ord).
    echoes: Vec<(V, VoterSet)>,
    readies: Vec<(V, VoterSet)>,
}

/// A dense bitset of voter ids with a maintained count: vote recording is
/// one word-OR instead of a `BTreeSet` node allocation — this sits on the
/// per-delivery hot path of every broadcast instance in the system.
#[derive(Debug, Clone, Default)]
struct VoterSet {
    words: Vec<u64>,
    count: usize,
}

impl VoterSet {
    /// Records voter `i`; returns the number of distinct voters so far.
    fn insert(&mut self, i: usize) -> usize {
        let w = i / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let bit = 1u64 << (i % 64);
        if self.words[w] & bit == 0 {
            self.words[w] |= bit;
            self.count += 1;
        }
        self.count
    }
}

impl<V: Clone + Ord> RbcState<V> {
    /// Creates the state for one instance with the given `dealer`.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3t` and `dealer < n`.
    pub fn new(n: usize, t: usize, dealer: usize) -> Self {
        assert!(n > 3 * t, "Bracha RBC requires n > 3t (n={n}, t={t})");
        assert!(dealer < n);
        RbcState {
            n,
            t,
            dealer,
            echoed: false,
            ready_sent: false,
            delivered: false,
            echoes: Vec::new(),
            readies: Vec::new(),
        }
    }

    /// Echo threshold `⌈(n+t+1)/2⌉`.
    fn echo_threshold(&self) -> usize {
        (self.n + self.t) / 2 + 1
    }

    /// Dealer's kick-off: broadcast `Init(v)`.
    pub fn start(&mut self, value: V) -> Vec<Outgoing<RbcMsg<V>>> {
        vec![Outgoing::all(RbcMsg::Init(value))]
    }

    /// Processes a message from `from`; returns outgoing messages and the
    /// delivered value, if delivery happens now.
    pub fn on_message(
        &mut self,
        from: usize,
        msg: RbcMsg<V>,
    ) -> (Vec<Outgoing<RbcMsg<V>>>, Option<V>) {
        let mut out = Vec::new();
        let mut delivered = None;
        match msg {
            RbcMsg::Init(v) => {
                // Only the dealer's first Init counts.
                if from == self.dealer && !self.echoed {
                    self.echoed = true;
                    out.push(Outgoing::all(RbcMsg::Echo(v)));
                }
            }
            RbcMsg::Echo(v) => {
                let count = insert_vote(&mut self.echoes, &v, from);
                if count >= self.echo_threshold() && !self.ready_sent {
                    self.ready_sent = true;
                    out.push(Outgoing::all(RbcMsg::Ready(v)));
                }
            }
            RbcMsg::Ready(v) => {
                let count = insert_vote(&mut self.readies, &v, from);
                if count > self.t && !self.ready_sent {
                    self.ready_sent = true;
                    out.push(Outgoing::all(RbcMsg::Ready(v.clone())));
                }
                if count > 2 * self.t && !self.delivered {
                    self.delivered = true;
                    delivered = Some(v);
                }
            }
        }
        (out, delivered)
    }

    /// Whether this instance has delivered.
    pub fn is_delivered(&self) -> bool {
        self.delivered
    }

    /// The dealer of this instance.
    pub fn dealer(&self) -> usize {
        self.dealer
    }
}

/// Records a vote; returns the number of distinct voters for this value.
fn insert_vote<V: Clone + Ord>(votes: &mut Vec<(V, VoterSet)>, v: &V, from: usize) -> usize {
    if let Some((_, set)) = votes.iter_mut().find(|(val, _)| val == v) {
        set.insert(from)
    } else {
        let mut set = VoterSet::default();
        set.insert(from);
        votes.push((v.clone(), set));
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Net;

    /// Runs one RBC instance over the harness with `byz` byzantine players
    /// (who follow `behavior`). Returns delivered values per honest player.
    fn run_rbc(
        n: usize,
        t: usize,
        dealer: usize,
        byz: &[usize],
        seed: u64,
        behavior: crate::harness::Behavior<RbcMsg<u64>>,
    ) -> Vec<Option<u64>> {
        let mut states: Vec<RbcState<u64>> = (0..n).map(|_| RbcState::new(n, t, dealer)).collect();
        let mut delivered: Vec<Option<u64>> = vec![None; n];
        let mut net = Net::new(n, byz.to_vec(), seed, behavior);
        if !byz.contains(&dealer) {
            let batch = states[dealer].start(42);
            net.push_batch(dealer, batch);
        } else {
            // Byzantine dealer behaviour is injected via `behavior` on a
            // dummy kick (handled by the test).
        }
        net.run(|to, from, msg, net| {
            let (out, dv) = states[to].on_message(from, msg);
            if let Some(v) = dv {
                delivered[to] = Some(v);
            }
            net.push_batch(to, out);
        });
        delivered
    }

    #[test]
    fn honest_dealer_everyone_delivers() {
        for seed in 0..5 {
            let delivered = run_rbc(4, 1, 0, &[], seed, Box::new(|_, _, _| Vec::new()));
            for d in &delivered {
                assert_eq!(*d, Some(42));
            }
        }
    }

    #[test]
    fn silent_byzantine_player_does_not_block() {
        for seed in 0..5 {
            let delivered = run_rbc(4, 1, 0, &[3], seed, Box::new(|_, _, _| Vec::new()));
            for (i, d) in delivered.iter().enumerate() {
                if i != 3 {
                    assert_eq!(*d, Some(42), "player {i}");
                }
            }
        }
    }

    #[test]
    fn equivocating_echoer_cannot_split() {
        // Byzantine player 3 echoes a different value to everyone, but with
        // n=4, t=1 the echo threshold is 3: one liar cannot reach it for a
        // fake value, and the true value still gathers 3 echoes.
        let behavior: crate::harness::Behavior<RbcMsg<u64>> =
            Box::new(|_me, _from, msg| match msg {
                RbcMsg::Init(_) => (0..4).map(|p| (p, RbcMsg::Echo(999))).collect(),
                _ => Vec::new(),
            });
        for seed in 0..5 {
            let delivered = run_rbc(4, 1, 0, &[3], seed, behavior.clone_box());
            for (i, d) in delivered.iter().enumerate() {
                if i != 3 {
                    assert_eq!(*d, Some(42), "player {i} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn byzantine_dealer_split_brain_succeeds_at_n_3t() {
        // Sharpness: with n = 3t (n=3, t=1) the echo threshold is 3 ...
        // RbcState::new rejects it. This documents the boundary.
        let r = std::panic::catch_unwind(|| RbcState::<u64>::new(3, 1, 0));
        assert!(r.is_err(), "n = 3t must be rejected");
    }

    #[test]
    fn agreement_with_equivocating_dealer() {
        // Byzantine dealer sends Init(1) to {0,1} and Init(2) to {2}. With
        // n=4,t=1 honest players may deliver nothing, but they must never
        // deliver *different* values.
        let n = 4;
        let behavior: crate::harness::Behavior<RbcMsg<u64>> = Box::new(|_, _, _| Vec::new());
        for seed in 0..10 {
            let mut states: Vec<RbcState<u64>> = (0..n).map(|_| RbcState::new(n, 1, 3)).collect();
            let mut delivered: Vec<Option<u64>> = vec![None; n];
            let mut net = Net::new(n, vec![3], seed, behavior.clone_box());
            // Dealer 3 equivocates:
            net.push(3, 0, RbcMsg::Init(1));
            net.push(3, 1, RbcMsg::Init(1));
            net.push(3, 2, RbcMsg::Init(2));
            net.run(|to, from, msg, net| {
                let (out, dv) = states[to].on_message(from, msg);
                if let Some(v) = dv {
                    delivered[to] = Some(v);
                }
                net.push_batch(to, out);
            });
            let vals: Vec<u64> = delivered.iter().take(3).flatten().copied().collect();
            // All delivered values agree.
            assert!(
                vals.windows(2).all(|w| w[0] == w[1]),
                "seed {seed}: {vals:?}"
            );
        }
    }

    #[test]
    fn ready_amplification_delivers_late_starter() {
        // Even a player that missed all echoes delivers from 2t+1 readies.
        let n = 4;
        let mut s: RbcState<u64> = RbcState::new(n, 1, 0);
        let (_out, d) = s.on_message(1, RbcMsg::Ready(7));
        assert!(d.is_none());
        let (out, d) = s.on_message(2, RbcMsg::Ready(7));
        // t+1 = 2 readies: relays Ready itself.
        assert!(out.iter().any(|o| matches!(o.msg, RbcMsg::Ready(7))));
        assert!(d.is_none());
        let (_, d) = s.on_message(3, RbcMsg::Ready(7));
        // 2t+1 = 3 readies: delivers.
        assert_eq!(d, Some(7));
        assert!(s.is_delivered());
    }

    #[test]
    fn duplicate_votes_do_not_double_count() {
        let n = 4;
        let mut s: RbcState<u64> = RbcState::new(n, 1, 0);
        for _ in 0..10 {
            let (_, d) = s.on_message(1, RbcMsg::Ready(7));
            assert!(d.is_none(), "one voter repeated must never reach 2t+1");
        }
    }

    #[test]
    fn message_complexity_is_quadratic() {
        // n players: 1 init broadcast + ≤ n echo broadcasts + ≤ n ready
        // broadcasts → O(n^2) point-to-point messages.
        let n = 7;
        let t = 2;
        let mut states: Vec<RbcState<u64>> = (0..n).map(|_| RbcState::new(n, t, 0)).collect();
        let mut count = 0u64;
        let behavior: crate::harness::Behavior<RbcMsg<u64>> = Box::new(|_, _, _| Vec::new());
        let mut net = Net::new(n, vec![], 0, behavior);
        net.push_batch(0, states[0].start(5));
        net.run(|to, from, msg, net| {
            count += 1;
            let (out, _) = states[to].on_message(from, msg);
            net.push_batch(to, out);
        });
        // (1 + n + n) broadcasts, each n messages.
        assert!(count <= ((1 + 2 * n) * n) as u64, "count={count}");
        assert!(count >= (n * n) as u64, "count={count}");
    }
}
