//! Asynchronous broadcast and agreement primitives: the BCG/BKR substrate.
//!
//! The cheap-talk constructions (Theorems 4.1–4.5) run secure multiparty
//! computation in the style of Ben-Or–Canetti–Goldreich '93 and
//! Ben-Or–Kelmer–Rabin '94, which are built from three primitives, all
//! implemented here as **sans-IO state machines** (pure transition functions
//! returning outgoing messages), so they can be unit-tested standalone and
//! composed inside the MPC engine:
//!
//! * [`rbc`] — Bracha reliable broadcast (`t < n/3`): if the dealer is
//!   honest everyone delivers its value; if any honest player delivers `v`,
//!   every honest player delivers `v`.
//! * [`aba`] — randomized binary Byzantine agreement (`t < n/3`), in the
//!   Mostéfaoui–Moumen–Raynal style (BV-broadcast + common coin), with a
//!   Bracha-style termination gadget. The coin is pluggable ([`coin`]):
//!   an ideal setup coin (substituting BCG's AVSS-based coin — see
//!   DESIGN.md) or purely local coins for the ablation experiment.
//! * [`acs`] — BKR agreement on a common subset: every honest player ends
//!   with the *same* set of ≥ n−t parties whose broadcasts all honest
//!   players have delivered. This is what makes "wait for n−t inputs"
//!   consistent across honest players in the input phase of the MPC.
//!
//! All three machines are driveable two ways: [`driver`] wraps them as
//! [`mediator_sim::sansio::SansIo`] peers so the full `mediator-sim` `World`
//! (every scheduler, traces, failure injection) can run them, and
//! [`harness`] keeps the original deterministic single-threaded `Net` driver
//! as a compatibility shim for lightweight unit tests. The driver-parity
//! property suite (`tests/driver_parity.rs`) pins the two runtimes to each
//! other.

pub mod aba;
pub mod acs;
pub mod coin;
pub mod driver;
pub mod harness;
pub mod outgoing;
pub mod rbc;

pub use aba::{AbaMsg, AbaState};
pub use acs::{AcsMsg, AcsState};
pub use coin::{CoinSource, IdealCoin, LocalCoin};
pub use driver::{AbaPeer, AcsPeer, RbcPeer};
pub use outgoing::{Dest, Outgoing, Payload};
pub use rbc::{RbcMsg, RbcState};
