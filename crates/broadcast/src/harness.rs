//! A deterministic lightweight test driver for the sans-IO state machines.
//!
//! **Compatibility shim.** Delivers queued messages one at a time in
//! seeded-random order, routing deliveries to byzantine players through a
//! [`Behavior`] closure instead of the honest handler. This driver predates
//! the shared sans-IO contract; new code should wrap its state machine in
//! [`mediator_sim::sansio::SansIoProcess`] (or use the [`crate::driver`]
//! peers with [`mediator_sim::sansio::run_machines`]) and run it under the
//! full `World` with a real scheduler. `Net` remains for unit tests that
//! want a minimal driver and for the driver-parity property suite that pins
//! the two runtimes to each other.

use crate::outgoing::Outgoing;
use mediator_sim::sansio::route_batch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub use mediator_sim::sansio::{Behavior, BehaviorFn};

/// Collects messages emitted by a handler during one delivery.
#[derive(Debug)]
pub struct Sink<M> {
    n: usize,
    buf: Vec<(usize, usize, M)>,
}

impl<M: Clone> Sink<M> {
    /// Queues a batch of outgoing messages from `from`, expanding broadcasts.
    pub fn push_batch(&mut self, from: usize, batch: Vec<Outgoing<M>>) {
        let buf = &mut self.buf;
        route_batch(self.n, batch, |dst, msg| buf.push((from, dst, msg)));
    }

    /// Queues a single point-to-point message.
    pub fn push(&mut self, from: usize, to: usize, msg: M) {
        self.buf.push((from, to, msg));
    }
}

/// The driver: a queue of in-flight `(from, to, msg)` triples.
pub struct Net<M> {
    n: usize,
    byz: Vec<usize>,
    queue: Vec<(usize, usize, M)>,
    rng: StdRng,
    behavior: Behavior<M>,
    /// Total messages delivered (for complexity assertions).
    pub delivered: u64,
    /// Safety cap on deliveries.
    pub max_deliveries: u64,
}

impl<M: Clone> Net<M> {
    /// Creates a driver for `n` players, of which `byz` are byzantine and
    /// follow `behavior` whenever a message is delivered to them.
    pub fn new(n: usize, byz: Vec<usize>, seed: u64, behavior: Behavior<M>) -> Self {
        Net {
            n,
            byz,
            queue: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            behavior,
            delivered: 0,
            max_deliveries: 2_000_000,
        }
    }

    /// Queues one message.
    pub fn push(&mut self, from: usize, to: usize, msg: M) {
        self.queue.push((from, to, msg));
    }

    /// Queues a batch from `from`, expanding broadcasts.
    pub fn push_batch(&mut self, from: usize, batch: Vec<Outgoing<M>>) {
        let queue = &mut self.queue;
        route_batch(self.n, batch, |dst, msg| queue.push((from, dst, msg)));
    }

    /// Drains the queue in seeded-random order. `handler(to, from, msg,
    /// sink)` is invoked for deliveries to honest players; deliveries to
    /// byzantine players go through the behaviour closure.
    ///
    /// # Panics
    ///
    /// Panics if `max_deliveries` is exceeded (livelock guard).
    pub fn run(&mut self, mut handler: impl FnMut(usize, usize, M, &mut Sink<M>)) {
        while !self.queue.is_empty() {
            assert!(
                self.delivered < self.max_deliveries,
                "harness livelock: {} deliveries",
                self.delivered
            );
            let i = self.rng.gen_range(0..self.queue.len());
            let (from, to, msg) = self.queue.swap_remove(i);
            self.delivered += 1;
            if self.byz.contains(&to) {
                let injected = (self.behavior)(to, from, &msg);
                for (dst, m) in injected {
                    self.queue.push((to, dst, m));
                }
            } else {
                let mut sink = Sink {
                    n: self.n,
                    buf: Vec::new(),
                };
                handler(to, from, msg, &mut sink);
                self.queue.append(&mut sink.buf);
            }
        }
    }

    /// Number of players.
    pub fn n(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_expansion_and_delivery_order_determinism() {
        let behavior: Behavior<u32> = Box::new(|_, _, _| Vec::new());
        let mut order1 = Vec::new();
        let mut net = Net::new(3, vec![], 5, behavior.clone_box());
        net.push_batch(0, vec![Outgoing::all(1u32), Outgoing::to(2, 2u32)]);
        net.run(|to, from, msg, _| order1.push((to, from, msg)));
        assert_eq!(order1.len(), 4); // 3 broadcast copies + 1 p2p

        let mut order2 = Vec::new();
        let mut net = Net::new(3, vec![], 5, behavior.clone_box());
        net.push_batch(0, vec![Outgoing::all(1u32), Outgoing::to(2, 2u32)]);
        net.run(|to, from, msg, _| order2.push((to, from, msg)));
        assert_eq!(order1, order2, "same seed, same order");
    }

    #[test]
    fn byzantine_player_intercepts() {
        // Player 1 is byzantine: echoes everything back to 0 doubled.
        let behavior: Behavior<u32> = Box::new(|_me, from, msg| vec![(from, msg * 2)]);
        let mut seen = Vec::new();
        let mut net = Net::new(2, vec![1], 0, behavior);
        net.push(0, 1, 21);
        net.run(|to, _from, msg, _| {
            assert_eq!(to, 0);
            seen.push(msg);
        });
        assert_eq!(seen, vec![42]);
    }

    #[test]
    fn handler_can_fan_out() {
        let behavior: Behavior<u32> = Box::new(|_, _, _| Vec::new());
        let mut net = Net::new(4, vec![], 1, behavior);
        net.push(0, 1, 3);
        let mut count = 0;
        net.run(|_to, _from, msg, sink| {
            count += 1;
            if msg > 0 {
                sink.push_batch(1, vec![Outgoing::all(msg - 1)]);
            }
        });
        // 1 + 4 + 4*4 + ... bounded since msg decreases to 0.
        assert!(count > 1);
    }
}
