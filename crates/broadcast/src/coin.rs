//! Common-coin sources for randomized agreement.
//!
//! BCG obtain a common coin from verifiable secret sharing; re-deriving that
//! construction is orthogonal to the mediator results, so the default here is
//! an **ideal setup coin**: a deterministic function of `(seed, instance,
//! round)` shared by all players (the substitution is recorded in DESIGN.md).
//! A purely local coin is provided for the ablation experiment — agreement
//! still terminates with probability 1, just in more rounds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;

/// A source of per-round coin flips for binary agreement.
pub trait CoinSource: Debug + Send {
    /// The coin for `(instance, round)`.
    fn flip(&mut self, instance: u64, round: u64) -> bool;
    /// Clones into a fresh box.
    fn clone_box(&self) -> Box<dyn CoinSource>;
}

impl Clone for Box<dyn CoinSource> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// An ideal common coin: every holder of the same seed sees the same flips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdealCoin {
    seed: u64,
}

impl IdealCoin {
    /// Creates a coin with the given shared setup seed.
    pub fn new(seed: u64) -> Self {
        IdealCoin { seed }
    }
}

/// SplitMix64 finalizer — a solid statistical mixer for a u64.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl CoinSource for IdealCoin {
    fn flip(&mut self, instance: u64, round: u64) -> bool {
        let h = mix(self.seed ^ mix(instance ^ mix(round)));
        h & 1 == 1
    }
    fn clone_box(&self) -> Box<dyn CoinSource> {
        Box::new(*self)
    }
}

/// A purely local coin: each player flips independently (Ben-Or style).
/// Agreement remains correct; expected round count grows (the ablation in
/// experiment E11 measures by how much).
#[derive(Debug, Clone)]
pub struct LocalCoin {
    rng: StdRng,
}

impl LocalCoin {
    /// Creates a local coin seeded per player (each player must use a
    /// different seed, or it degenerates into the ideal coin).
    pub fn new(seed: u64) -> Self {
        LocalCoin {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl CoinSource for LocalCoin {
    fn flip(&mut self, _instance: u64, _round: u64) -> bool {
        self.rng.gen()
    }
    fn clone_box(&self) -> Box<dyn CoinSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_coin_is_common_and_deterministic() {
        let mut a = IdealCoin::new(7);
        let mut b = IdealCoin::new(7);
        for inst in 0..10 {
            for round in 0..10 {
                assert_eq!(a.flip(inst, round), b.flip(inst, round));
            }
        }
    }

    #[test]
    fn ideal_coin_depends_on_all_inputs() {
        let mut a = IdealCoin::new(7);
        let mut b = IdealCoin::new(8);
        let flips_a: Vec<bool> = (0..64).map(|r| a.flip(0, r)).collect();
        let flips_b: Vec<bool> = (0..64).map(|r| b.flip(0, r)).collect();
        assert_ne!(flips_a, flips_b, "different seeds should diverge");
        // Roughly balanced.
        let ones = flips_a.iter().filter(|&&x| x).count();
        assert!((16..=48).contains(&ones), "biased coin: {ones}/64");
    }

    #[test]
    fn local_coins_diverge_across_players() {
        let mut a = LocalCoin::new(1);
        let mut b = LocalCoin::new(2);
        let fa: Vec<bool> = (0..64).map(|r| a.flip(0, r)).collect();
        let fb: Vec<bool> = (0..64).map(|r| b.flip(0, r)).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn boxed_clone_works() {
        let c: Box<dyn CoinSource> = Box::new(IdealCoin::new(3));
        let mut c2 = c.clone();
        assert_eq!(c2.flip(1, 1), IdealCoin::new(3).flip(1, 1));
    }
}
