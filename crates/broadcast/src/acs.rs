//! BKR agreement on a common subset (ACS).
//!
//! Every player reliably-broadcasts a value; `n` binary-agreement instances
//! then decide *whose* broadcasts make it into the common subset. Honest
//! players vote 1 for instance `j` when they deliver `j`'s broadcast, and
//! vote 0 on all not-yet-started instances once `n − t` instances have
//! decided 1. Guarantees for `n > 3t`:
//!
//! * all honest players output the **same** subset `S` with `|S| ≥ n − t`;
//! * for every `j ∈ S`, all honest players hold `j`'s broadcast value
//!   (ABA validity: deciding 1 means some honest voted 1, which means it
//!   delivered the broadcast, which by RBC agreement everyone then does);
//! * every honest player's own value is a candidate (if the player is
//!   scheduled fairly its broadcast completes and its instance gets 1-votes).
//!
//! This is the mechanism that makes "wait for n−t inputs" *consistent* in
//! the asynchronous MPC input phase — without it, different honest players
//! would proceed with different input sets.

use crate::aba::{AbaMsg, AbaState};
use crate::coin::{CoinSource, IdealCoin};
use crate::outgoing::{map_batch, Outgoing};
use crate::rbc::{RbcMsg, RbcState};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// ACS wire messages: instance-tagged sub-protocol messages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AcsMsg<V> {
    /// A reliable-broadcast message of `dealer`'s instance.
    Rbc {
        /// Whose broadcast this belongs to.
        dealer: usize,
        /// The inner RBC message.
        inner: RbcMsg<V>,
    },
    /// A binary-agreement message of instance `instance`.
    Aba {
        /// Which party's membership is being decided.
        instance: usize,
        /// The inner ABA message.
        inner: AbaMsg,
    },
}

/// One step's result: outgoing messages plus the final common subset, if it
/// is emitted now (exactly once per player), as a map `party → value`.
pub type AcsStep<V> = (Vec<Outgoing<AcsMsg<V>>>, Option<BTreeMap<usize, V>>);

/// One player's state in an agreement-on-common-subset execution.
#[derive(Debug, Clone)]
pub struct AcsState<V> {
    n: usize,
    t: usize,
    me: usize,
    rbc: Vec<RbcState<V>>,
    aba: Vec<AbaState>,
    values: Vec<Option<V>>,
    decisions: Vec<Option<bool>>,
    voted_zero: bool,
    output_emitted: bool,
}

impl<V: Clone + Ord> AcsState<V> {
    /// Creates the state for player `me`; all agreement instances share the
    /// ideal coin seeded with `coin_seed`.
    pub fn new(n: usize, t: usize, me: usize, coin_seed: u64) -> Self {
        Self::with_coin(n, t, me, &IdealCoin::new(coin_seed))
    }

    /// As [`AcsState::new`] with an explicit coin source.
    pub fn with_coin(n: usize, t: usize, me: usize, coin: &dyn CoinSource) -> Self {
        assert!(n > 3 * t, "ACS requires n > 3t (n={n}, t={t})");
        AcsState {
            n,
            t,
            me,
            rbc: (0..n).map(|d| RbcState::new(n, t, d)).collect(),
            aba: (0..n)
                .map(|j| AbaState::new(n, t, j as u64, coin.clone_box()))
                .collect(),
            values: vec![None; n],
            decisions: vec![None; n],
            voted_zero: false,
            output_emitted: false,
        }
    }

    /// Starts by broadcasting this player's `value`.
    pub fn start(&mut self, value: V) -> Vec<Outgoing<AcsMsg<V>>> {
        let me = self.me;
        let batch = self.rbc[me].start(value);
        map_batch(batch, |inner| AcsMsg::Rbc { dealer: me, inner })
    }

    /// The delivered broadcast value of party `j`, if known.
    pub fn value_of(&self, j: usize) -> Option<&V> {
        self.values[j].as_ref()
    }

    /// Processes a message; returns outgoing messages plus the final common
    /// subset (emitted exactly once) as a map `party → value`.
    pub fn on_message(&mut self, from: usize, msg: AcsMsg<V>) -> AcsStep<V> {
        let mut out = Vec::new();
        match msg {
            AcsMsg::Rbc { dealer, inner } => {
                if dealer >= self.n {
                    return (out, None); // malformed tag: drop
                }
                let (batch, delivered) = self.rbc[dealer].on_message(from, inner);
                out.extend(map_batch(batch, |inner| AcsMsg::Rbc { dealer, inner }));
                if let Some(v) = delivered {
                    self.values[dealer] = Some(v);
                    if !self.aba[dealer].is_started() {
                        let batch = self.aba[dealer].start(true);
                        out.extend(map_batch(batch, |inner| AcsMsg::Aba {
                            instance: dealer,
                            inner,
                        }));
                    }
                }
            }
            AcsMsg::Aba { instance, inner } => {
                if instance >= self.n {
                    return (out, None);
                }
                let (batch, decided) = self.aba[instance].on_message(from, inner);
                out.extend(map_batch(batch, |inner| AcsMsg::Aba { instance, inner }));
                if let Some(d) = decided {
                    self.decisions[instance] = Some(d);
                    self.maybe_vote_zero(&mut out);
                }
            }
        }
        let output = self.try_output();
        (out, output)
    }

    /// Once n−t instances decided 1, vote 0 everywhere we haven't voted.
    fn maybe_vote_zero(&mut self, out: &mut Vec<Outgoing<AcsMsg<V>>>) {
        if self.voted_zero {
            return;
        }
        let ones = self.decisions.iter().filter(|d| **d == Some(true)).count();
        if ones < self.n - self.t {
            return;
        }
        self.voted_zero = true;
        for j in 0..self.n {
            if !self.aba[j].is_started() {
                let batch = self.aba[j].start(false);
                out.extend(map_batch(batch, |inner| AcsMsg::Aba { instance: j, inner }));
            }
        }
    }

    /// Whether this player has output its subset **and** every constituent
    /// agreement instance has halted via its termination gadget — the point
    /// at which it is safe to stop routing messages to this player without
    /// endangering peers still below quorum (the `SansIo::is_done` rule for
    /// [`AcsPeer`](crate::driver::AcsPeer)).
    pub fn is_finished(&self) -> bool {
        self.output_emitted && self.aba.iter().all(|a| a.is_halted())
    }

    /// Output when every instance has decided and every member's value is
    /// delivered.
    fn try_output(&mut self) -> Option<BTreeMap<usize, V>> {
        if self.output_emitted {
            return None;
        }
        if self.decisions.iter().any(|d| d.is_none()) {
            return None;
        }
        let mut subset = BTreeMap::new();
        for j in 0..self.n {
            if self.decisions[j] == Some(true) {
                match &self.values[j] {
                    Some(v) => {
                        subset.insert(j, v.clone());
                    }
                    None => return None, // value still in flight
                }
            }
        }
        self.output_emitted = true;
        Some(subset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{Behavior, Net};

    fn no_op() -> Behavior<AcsMsg<u64>> {
        Box::new(|_, _, _| Vec::new())
    }

    fn run_acs(
        n: usize,
        t: usize,
        byz: &[usize],
        seed: u64,
        behavior: Behavior<AcsMsg<u64>>,
    ) -> (Vec<Option<BTreeMap<usize, u64>>>, u64) {
        let mut states: Vec<AcsState<u64>> = (0..n).map(|i| AcsState::new(n, t, i, 7)).collect();
        let mut outputs: Vec<Option<BTreeMap<usize, u64>>> = vec![None; n];
        let mut net = Net::new(n, byz.to_vec(), seed, behavior);
        for (i, state) in states.iter_mut().enumerate() {
            if !byz.contains(&i) {
                let batch = state.start(100 + i as u64);
                net.push_batch(i, batch);
            }
        }
        net.run(|to, from, msg, sink| {
            let (out, done) = states[to].on_message(from, msg);
            if let Some(s) = done {
                outputs[to] = Some(s);
            }
            sink.push_batch(to, out);
        });
        (outputs, net.delivered)
    }

    #[test]
    fn all_honest_agree_on_full_subset() {
        for seed in 0..5 {
            let (outputs, _) = run_acs(4, 1, &[], seed, no_op());
            let first = outputs[0].clone().expect("output");
            assert!(first.len() >= 3, "|S| ≥ n−t");
            for o in &outputs {
                assert_eq!(o.as_ref(), Some(&first), "seed {seed}");
            }
            for (&j, &v) in &first {
                assert_eq!(v, 100 + j as u64);
            }
        }
    }

    #[test]
    fn silent_party_is_excluded_but_acs_completes() {
        for seed in 0..5 {
            let (outputs, _) = run_acs(4, 1, &[2], seed, no_op());
            let first = outputs[0].clone().expect("output despite silent party");
            assert!(first.len() >= 3);
            assert!(
                !first.contains_key(&2),
                "silent party cannot be in S (no RBC)"
            );
            for (i, o) in outputs.iter().enumerate() {
                if i != 2 {
                    assert_eq!(o.as_ref(), Some(&first), "seed {seed} player {i}");
                }
            }
        }
    }

    #[test]
    fn subset_size_lower_bound_holds_across_seeds() {
        for seed in 0..10 {
            let (outputs, _) = run_acs(7, 2, &[5, 6], seed, no_op());
            let s = outputs[0].clone().expect("output");
            assert!(s.len() >= 5, "n−t = 5, got {}", s.len());
        }
    }

    #[test]
    fn values_of_members_are_held_by_everyone() {
        for seed in 0..5 {
            let n = 5;
            let (outputs, _) = run_acs(n, 1, &[], seed, no_op());
            let s = outputs[0].clone().unwrap();
            for o in outputs.iter().flatten() {
                for &j in s.keys() {
                    assert!(o.contains_key(&j));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "n > 3t")]
    fn rejects_insufficient_n() {
        let _ = AcsState::<u64>::new(6, 2, 0, 0);
    }

    #[test]
    fn message_complexity_reported() {
        // ACS = n RBCs + n ABAs: O(n^3)-ish point-to-point messages. This
        // records the measurement the E5 experiment scales.
        let (_, delivered4) = run_acs(4, 1, &[], 0, no_op());
        let (_, delivered7) = run_acs(7, 2, &[], 0, no_op());
        assert!(delivered7 > delivered4);
    }
}
