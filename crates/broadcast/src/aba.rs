//! Randomized binary Byzantine agreement (`t < n/3`).
//!
//! Structure (Mostéfaoui–Moumen–Raynal): each round runs a *binary-value
//! broadcast* (`BVal` with `t+1`-relay and `2t+1`-acceptance) to filter out
//! values proposed only by byzantine players, then an `Aux` exchange to
//! collect `n − t` opinions over the accepted values, then a common coin.
//! A singleton opinion set `{v}` sets the estimate to `v` and decides when
//! `v` equals the coin; otherwise the estimate becomes the coin.
//!
//! Guarantees with `n > 3t`:
//!
//! * **Validity** — the decision is some honest player's input.
//! * **Agreement** — no two honest players decide differently.
//! * **Termination** — with probability 1 (expected O(1) rounds with a
//!   common coin; finite but longer with local coins).
//!
//! A Bracha-style `Done` gadget (relay at `t+1`, halt at `2t+1`) lets
//! processes stop participating.

use crate::coin::CoinSource;
use crate::outgoing::Outgoing;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Agreement wire messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbaMsg {
    /// Binary-value broadcast vote for `v` in `round`.
    BVal { round: u64, v: bool },
    /// Opinion carrying an accepted value in `round`.
    Aux { round: u64, v: bool },
    /// Decision announcement (termination gadget).
    Done { v: bool },
}

#[derive(Debug, Clone, Default)]
struct RoundState {
    bval_recv: [BTreeSet<usize>; 2],
    bval_sent: [bool; 2],
    bin_values: [bool; 2],
    aux_recv: [BTreeSet<usize>; 2],
    aux_sent: bool,
    completed: bool,
}

/// One player's state in one binary-agreement instance.
#[derive(Debug, Clone)]
pub struct AbaState {
    n: usize,
    t: usize,
    instance: u64,
    coin: Box<dyn CoinSource>,
    est: bool,
    round: u64,
    rounds: BTreeMap<u64, RoundState>,
    decided: Option<bool>,
    done_sent: bool,
    done_recv: [BTreeSet<usize>; 2],
    halted: bool,
    started: bool,
    /// Livelock guard: panics past this round (see [`AbaState::on_message`]).
    pub max_rounds: u64,
}

impl AbaState {
    /// Creates the state for one instance.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3t`.
    pub fn new(n: usize, t: usize, instance: u64, coin: Box<dyn CoinSource>) -> Self {
        assert!(n > 3 * t, "ABA requires n > 3t (n={n}, t={t})");
        AbaState {
            n,
            t,
            instance,
            coin,
            est: false,
            round: 0,
            rounds: BTreeMap::new(),
            decided: None,
            done_sent: false,
            done_recv: [BTreeSet::new(), BTreeSet::new()],
            halted: false,
            started: false,
            max_rounds: 10_000,
        }
    }

    /// Begins the instance with the player's input vote.
    pub fn start(&mut self, input: bool) -> Vec<Outgoing<AbaMsg>> {
        assert!(!self.started, "ABA instance started twice");
        self.started = true;
        self.est = input;
        self.round = 1;
        let mut out = Vec::new();
        self.send_bval(1, input, &mut out);
        out
    }

    /// The decision, if reached.
    pub fn decided(&self) -> Option<bool> {
        self.decided
    }

    /// Whether the termination gadget has fired (safe to stop routing).
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Whether [`AbaState::start`] has been called.
    pub fn is_started(&self) -> bool {
        self.started
    }

    fn send_bval(&mut self, round: u64, v: bool, out: &mut Vec<Outgoing<AbaMsg>>) {
        let rs = self.rounds.entry(round).or_default();
        if !rs.bval_sent[v as usize] {
            rs.bval_sent[v as usize] = true;
            out.push(Outgoing::all(AbaMsg::BVal { round, v }));
        }
    }

    /// Processes a message; returns outgoing messages and the decision if it
    /// is reached *now* (reported once).
    ///
    /// # Panics
    ///
    /// Panics if the instance exceeds `max_rounds` (livelock guard for
    /// adversarial-scheduler experiments; never reached under fair
    /// schedulers).
    pub fn on_message(
        &mut self,
        from: usize,
        msg: AbaMsg,
    ) -> (Vec<Outgoing<AbaMsg>>, Option<bool>) {
        let mut out = Vec::new();
        if self.halted {
            return (out, None);
        }
        let decided_before = self.decided;
        match msg {
            AbaMsg::BVal { round, v } => {
                let t = self.t;
                let rs = self.rounds.entry(round).or_default();
                rs.bval_recv[v as usize].insert(from);
                let count = rs.bval_recv[v as usize].len();
                if count > t {
                    self.send_bval(round, v, &mut out);
                }
                let rs = self.rounds.entry(round).or_default();
                if count > 2 * t && !rs.bin_values[v as usize] {
                    rs.bin_values[v as usize] = true;
                    if !rs.aux_sent {
                        rs.aux_sent = true;
                        out.push(Outgoing::all(AbaMsg::Aux { round, v }));
                    }
                }
            }
            AbaMsg::Aux { round, v } => {
                let rs = self.rounds.entry(round).or_default();
                rs.aux_recv[v as usize].insert(from);
            }
            AbaMsg::Done { v } => {
                self.done_recv[v as usize].insert(from);
                let count = self.done_recv[v as usize].len();
                if count > self.t && !self.done_sent {
                    // Adopt and announce: at least one honest player decided v.
                    self.decided = Some(v);
                    self.done_sent = true;
                    out.push(Outgoing::all(AbaMsg::Done { v }));
                }
                if count > 2 * self.t {
                    self.decided = Some(v);
                    self.halted = true;
                }
            }
        }
        if self.started {
            self.try_complete_rounds(&mut out);
        }
        let newly = match (decided_before, self.decided) {
            (None, Some(v)) => Some(v),
            _ => None,
        };
        (out, newly)
    }

    /// Advances the current round as long as its completion condition holds.
    fn try_complete_rounds(&mut self, out: &mut Vec<Outgoing<AbaMsg>>) {
        loop {
            if self.halted {
                return;
            }
            assert!(
                self.round < self.max_rounds,
                "ABA livelock: exceeded {} rounds",
                self.max_rounds
            );
            let round = self.round;
            let t = self.t;
            let n = self.n;
            let rs = self.rounds.entry(round).or_default();
            if rs.completed {
                return; // shouldn't happen; defensive
            }
            // Completion: ≥ n−t AUX senders whose values are accepted.
            let mut senders: BTreeSet<usize> = BTreeSet::new();
            let mut vals: Vec<bool> = Vec::new();
            for v in [false, true] {
                if rs.bin_values[v as usize] && !rs.aux_recv[v as usize].is_empty() {
                    senders.extend(rs.aux_recv[v as usize].iter());
                    vals.push(v);
                }
            }
            if senders.len() < n - t || vals.is_empty() {
                return;
            }
            rs.completed = true;
            let c = self.coin.flip(self.instance, round);
            if vals.len() == 1 {
                let v = vals[0];
                self.est = v;
                if v == c && self.decided.is_none() {
                    self.decided = Some(v);
                    if !self.done_sent {
                        self.done_sent = true;
                        out.push(Outgoing::all(AbaMsg::Done { v }));
                    }
                }
            } else {
                self.est = c;
            }
            // Enter the next round.
            self.round += 1;
            let (r, e) = (self.round, self.est);
            self.send_bval(r, e, out);
            // Messages for the next round may already be buffered; loop to
            // re-evaluate its completion with no new input.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coin::{IdealCoin, LocalCoin};
    use crate::harness::{Behavior, Net};

    /// Runs one ABA instance; returns (decisions, deliveries).
    fn run_aba(
        n: usize,
        t: usize,
        inputs: &[bool],
        byz: &[usize],
        seed: u64,
        local_coin: bool,
        behavior: Behavior<AbaMsg>,
    ) -> (Vec<Option<bool>>, u64) {
        let mut states: Vec<AbaState> = (0..n)
            .map(|i| {
                let coin: Box<dyn CoinSource> = if local_coin {
                    Box::new(LocalCoin::new(1000 + i as u64))
                } else {
                    Box::new(IdealCoin::new(99))
                };
                AbaState::new(n, t, 0, coin)
            })
            .collect();
        let mut decisions: Vec<Option<bool>> = vec![None; n];
        let mut net = Net::new(n, byz.to_vec(), seed, behavior);
        for i in 0..n {
            if !byz.contains(&i) {
                let batch = states[i].start(inputs[i]);
                net.push_batch(i, batch);
            }
        }
        net.run(|to, from, msg, sink| {
            let (out, d) = states[to].on_message(from, msg);
            if let Some(v) = d {
                decisions[to] = Some(v);
            }
            sink.push_batch(to, out);
        });
        (decisions, net.delivered)
    }

    fn no_op() -> Behavior<AbaMsg> {
        Box::new(|_, _, _| Vec::new())
    }

    #[test]
    fn unanimous_inputs_decide_that_value() {
        for seed in 0..5 {
            for v in [false, true] {
                let (d, _) = run_aba(4, 1, &[v; 4], &[], seed, false, no_op());
                for di in &d {
                    assert_eq!(*di, Some(v), "seed {seed} v {v}");
                }
            }
        }
    }

    #[test]
    fn mixed_inputs_agree_on_something_valid() {
        for seed in 0..10 {
            let inputs = [true, false, true, false, true, false, true];
            let (d, _) = run_aba(7, 2, &inputs, &[], seed, false, no_op());
            let first = d[0].expect("decided");
            for di in &d {
                assert_eq!(*di, Some(first), "agreement, seed {seed}");
            }
        }
    }

    #[test]
    fn tolerates_silent_byzantine() {
        for seed in 0..5 {
            let (d, _) = run_aba(4, 1, &[true; 4], &[2], seed, false, no_op());
            for (i, di) in d.iter().enumerate() {
                if i != 2 {
                    assert_eq!(*di, Some(true), "seed {seed} player {i}");
                }
            }
        }
    }

    #[test]
    fn tolerates_contrarian_byzantine_votes() {
        // Byzantine player floods BVal/Aux votes for the opposite value.
        // (It must not message itself: self-deliveries re-trigger the
        // behaviour and model a mailbox loop, not a protocol attack.)
        let behavior: Behavior<AbaMsg> = Box::new(|me, _from, msg| match *msg {
            AbaMsg::BVal { round, v } => (0..4)
                .filter(|&p| p != me)
                .flat_map(|p| {
                    vec![
                        (p, AbaMsg::BVal { round, v: !v }),
                        (p, AbaMsg::Aux { round, v: !v }),
                    ]
                })
                .collect(),
            _ => Vec::new(),
        });
        for seed in 0..10 {
            let (d, _) = run_aba(4, 1, &[true; 4], &[3], seed, false, behavior.clone_box());
            // Validity: all honest had input true; one byzantine cannot get
            // false accepted (needs 2t+1 = 3 BVal senders).
            for (i, di) in d.iter().enumerate() {
                if i != 3 {
                    assert_eq!(*di, Some(true), "seed {seed} player {i}");
                }
            }
        }
    }

    #[test]
    fn local_coin_still_terminates() {
        for seed in 0..5 {
            let inputs = [true, false, false, true];
            let (d, _) = run_aba(4, 1, &inputs, &[], seed, true, no_op());
            let first = d[0].expect("decided with local coins");
            for di in &d {
                assert_eq!(*di, Some(first));
            }
        }
    }

    #[test]
    fn coin_ablation_both_variants_terminate() {
        // The E11 ablation in miniature: disagreeing inputs, measure
        // deliveries. With a benign random network and n=4, local coins are
        // only mildly worse than the common coin (the asymptotic gap needs an
        // adversarial scheduler); here we check both terminate and stay
        // within a sane factor of each other. The bench measures the ratio.
        let mut common = 0u64;
        let mut local = 0u64;
        let runs = 20;
        for seed in 0..runs {
            let inputs = [true, false, true, false];
            common += run_aba(4, 1, &inputs, &[], seed, false, no_op()).1;
            local += run_aba(4, 1, &inputs, &[], seed, true, no_op()).1;
        }
        assert!(common > 0 && local > 0);
        assert!(
            local < 50 * common,
            "local-coin cost exploded: {local} vs {common}"
        );
    }

    #[test]
    fn done_gadget_halts_states() {
        let n = 4;
        let mut s = AbaState::new(n, 1, 0, Box::new(IdealCoin::new(0)));
        let _ = s.start(true);
        // 2t+1 = 3 Done(v) messages halt even a fresh state.
        let (_, d1) = s.on_message(0, AbaMsg::Done { v: false });
        assert!(d1.is_none());
        let (out2, d2) = s.on_message(1, AbaMsg::Done { v: false });
        // t+1 = 2: adopt and announce.
        assert_eq!(d2, Some(false));
        assert!(out2
            .iter()
            .any(|o| matches!(o.msg, AbaMsg::Done { v: false })));
        let (_, _) = s.on_message(2, AbaMsg::Done { v: false });
        assert!(s.is_halted());
        assert_eq!(s.decided(), Some(false));
    }

    #[test]
    #[should_panic(expected = "n > 3t")]
    fn rejects_insufficient_n() {
        let _ = AbaState::new(3, 1, 0, Box::new(IdealCoin::new(0)));
    }

    #[test]
    #[should_panic(expected = "started twice")]
    fn rejects_double_start() {
        let mut s = AbaState::new(4, 1, 0, Box::new(IdealCoin::new(0)));
        let _ = s.start(true);
        let _ = s.start(false);
    }
}
