//! Failure injection for the agreement substrate: byzantine dealers,
//! forged votes, and flooding — the attacks the `t < n/3` thresholds are
//! priced against.
//!
//! These suites run under the full `mediator-sim` `World` through the
//! shared sans-IO adapter, so every attack is exercised against real
//! adversarial schedulers (not just the legacy harness's uniform-random
//! delivery). Byzantine players are [`ByzantineProcess`]es: reactive
//! behaviour closures plus, for equivocating dealers, a deviant kickoff.

use mediator_bcast::driver::{AbaPeer, AcsPeer, RbcPeer};
use mediator_bcast::{AbaMsg, AbaState, AcsMsg, AcsState, IdealCoin, RbcMsg};
use mediator_sim::sansio::{run_machines, Behavior, ByzantineProcess};
use mediator_sim::SchedulerKind;

fn no_op<M: 'static>() -> Behavior<M> {
    Box::new(|_, _, _| Vec::new())
}

/// The scheduler battery every attack runs against.
fn schedulers() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::Random,
        SchedulerKind::Fifo,
        SchedulerKind::Lifo,
        SchedulerKind::TargetedDelay(vec![1]),
    ]
}

fn rbc_peers(n: usize, t: usize, dealer: usize, value: u64) -> Vec<RbcPeer<u64>> {
    (0..n)
        .map(|me| RbcPeer::new(n, t, dealer, me, (me == dealer).then_some(value)))
        .collect()
}

#[test]
fn rbc_flooded_ready_for_fake_value_does_not_deliver() {
    // A single byzantine player (t=1, n=4) sends Ready(FAKE) to everyone;
    // delivery needs 2t+1 = 3 distinct Ready senders, and honest players
    // never echo a value without the echo quorum: nobody delivers FAKE.
    let n = 4;
    let behavior: Behavior<RbcMsg<u64>> = Box::new(|me, _from, _msg| {
        (0..4)
            .filter(|&p| p != me)
            .map(|p| (p, RbcMsg::Ready(666)))
            .collect()
    });
    for kind in schedulers() {
        for seed in 0..4 {
            let (_, delivered) = run_machines(
                rbc_peers(n, 1, 0, 42),
                vec![(3, behavior.clone_box().into())],
                kind.build().as_mut(),
                seed,
                200_000,
            );
            for (i, d) in delivered.iter().enumerate() {
                if i != 3 {
                    assert_eq!(
                        *d,
                        Some(42),
                        "player {i} must deliver the real value ({kind:?})"
                    );
                }
            }
        }
    }
}

#[test]
fn rbc_byzantine_dealer_equivocation_never_splits_honest_players() {
    // The dealer sends different Inits to different halves across many
    // schedules; whatever honest players deliver, they deliver the SAME
    // value (agreement), possibly nothing.
    let n = 7;
    let t = 2;
    for kind in schedulers() {
        for seed in 0..8 {
            // All players are receivers; the byzantine "dealer" (6) plays an
            // equivocating kickoff instead of its honest machine (whose
            // placeholder value is discarded with the machine).
            let machines: Vec<RbcPeer<u64>> = (0..n)
                .map(|me| RbcPeer::new(n, t, 6, me, (me == 6).then_some(0)))
                .collect();
            let kickoff: Vec<(usize, RbcMsg<u64>)> = (0..3)
                .map(|p| (p, RbcMsg::Init(1)))
                .chain((3..6).map(|p| (p, RbcMsg::Init(2))))
                .collect();
            let byz = ByzantineProcess::new(no_op()).with_kickoff(kickoff);
            let (_, delivered) = run_machines(
                machines,
                vec![(6, byz)],
                kind.build().as_mut(),
                seed,
                200_000,
            );
            let vals: Vec<u64> = delivered[..6].iter().flatten().copied().collect();
            assert!(
                vals.windows(2).all(|w| w[0] == w[1]),
                "{kind:?} seed {seed}: honest players split: {delivered:?}"
            );
        }
    }
}

#[test]
fn aba_forged_done_below_quorum_does_not_decide() {
    // t Done(v) messages (here t=2 from one equivocating byz via two ids is
    // impossible — senders are deduplicated — so a single byz contributes
    // one) never reach the t+1 adoption threshold by themselves.
    let n = 7;
    let t = 2;
    let mut s = AbaState::new(n, t, 0, Box::new(IdealCoin::new(0)));
    let _ = s.start(true);
    let (_, d1) = s.on_message(5, AbaMsg::Done { v: false });
    let (_, d2) = s.on_message(5, AbaMsg::Done { v: false }); // duplicate sender
    assert!(d1.is_none() && d2.is_none());
    assert_eq!(s.decided(), None, "one forger cannot reach t+1 = 3");
}

#[test]
fn aba_byzantine_cannot_inject_a_value_no_honest_proposed() {
    // All honest input true; two byzantine players (n=7, t=2) flood BVal
    // and Aux for false. Acceptance of false needs 2t+1 = 5 BVal senders —
    // impossible with 2 liars and no honest relay.
    let n = 7;
    let t = 2;
    let behavior: Behavior<AbaMsg> = Box::new(|me, from, msg| match *msg {
        // React only to honest traffic: responding to the other byzantine's
        // floods would model an infinite mailbox loop, not an attack.
        AbaMsg::BVal { round, .. } if from < 5 => (0..5)
            .filter(|&p| p != me)
            .flat_map(|p| {
                vec![
                    (p, AbaMsg::BVal { round, v: false }),
                    (p, AbaMsg::Aux { round, v: false }),
                ]
            })
            .collect(),
        _ => Vec::new(),
    });
    for kind in schedulers() {
        for seed in 0..4 {
            let machines: Vec<AbaPeer> = (0..n)
                .map(|_| AbaPeer::new(AbaState::new(n, t, 0, Box::new(IdealCoin::new(3))), true))
                .collect();
            let byz = vec![
                (5, behavior.clone_box().into()),
                (6, behavior.clone_box().into()),
            ];
            let (_, decisions) =
                run_machines(machines, byz, kind.build().as_mut(), seed, 1_000_000);
            for (i, d) in decisions.iter().enumerate().take(5) {
                assert_eq!(
                    *d,
                    Some(true),
                    "validity violated at player {i}, {kind:?} seed {seed}"
                );
            }
        }
    }
}

#[test]
fn acs_byzantine_rbc_equivocator_is_either_consistent_or_excluded() {
    // The byzantine party equivocates in its own broadcast; ACS must still
    // give all honest players the same subset, and if the equivocator is
    // included, every honest player holds the same value for it.
    let n = 4;
    let t = 1;
    for kind in schedulers() {
        for seed in 0..6 {
            let machines: Vec<AcsPeer<u64>> = (0..n)
                .map(|me| AcsPeer::new(n, t, me, 5, 100 + me as u64))
                .collect();
            let kickoff = vec![
                (
                    0,
                    AcsMsg::Rbc {
                        dealer: 3,
                        inner: RbcMsg::Init(7),
                    },
                ),
                (
                    1,
                    AcsMsg::Rbc {
                        dealer: 3,
                        inner: RbcMsg::Init(8),
                    },
                ),
                (
                    2,
                    AcsMsg::Rbc {
                        dealer: 3,
                        inner: RbcMsg::Init(7),
                    },
                ),
            ];
            let byz = ByzantineProcess::new(no_op()).with_kickoff(kickoff);
            let (_, outputs) = run_machines(
                machines,
                vec![(3, byz)],
                kind.build().as_mut(),
                seed,
                1_000_000,
            );
            let first = outputs[0].clone().expect("honest ACS output");
            for (i, o) in outputs.iter().enumerate().take(3) {
                assert_eq!(o.as_ref(), Some(&first), "player {i}, {kind:?} seed {seed}");
            }
            assert!(first.len() >= n - t);
            if let Some(v) = first.get(&3) {
                assert!(
                    *v == 7 || *v == 8,
                    "agreed value is one of the dealer's claims"
                );
            }
        }
    }
}

#[test]
fn acs_two_silent_parties_at_exact_threshold() {
    // n = 7, t = 2: with both byzantine parties silent, ACS still completes
    // with |S| ≥ 5 and identical outputs.
    let n = 7;
    let t = 2;
    for kind in [SchedulerKind::Random, SchedulerKind::Lifo] {
        for seed in 0..3 {
            let machines: Vec<AcsPeer<u64>> = (0..n)
                .map(|me| AcsPeer::new(n, t, me, 1, me as u64))
                .collect();
            let byz = vec![(5, no_op().into()), (6, no_op().into())];
            let (_, outputs) = run_machines(machines, byz, kind.build().as_mut(), seed, 2_000_000);
            let first = outputs[0].clone().expect("output");
            assert!(
                first.len() >= 5,
                "{kind:?} seed {seed}: |S| = {}",
                first.len()
            );
            for (i, o) in outputs.iter().enumerate().take(5) {
                assert_eq!(o.as_ref(), Some(&first), "player {i}, {kind:?} seed {seed}");
            }
        }
    }
}

/// ACS under `AcsState`'s raw interface still works for callers that have
/// not adopted the peers (compatibility check for the embedding layer).
#[test]
fn acs_raw_state_machines_still_driveable() {
    let n = 4;
    let mut states: Vec<AcsState<u64>> = (0..n).map(|i| AcsState::new(n, 1, i, 5)).collect();
    let batch = states[0].start(7);
    assert!(!batch.is_empty(), "start emits the RBC dealing");
    assert!(states[0].value_of(0).is_none());
}
