//! Failure injection for the agreement substrate: byzantine dealers,
//! forged votes, and flooding — the attacks the `t < n/3` thresholds are
//! priced against.

use mediator_bcast::harness::{Behavior, Net};
use mediator_bcast::{AbaMsg, AbaState, AcsMsg, AcsState, CoinSource, IdealCoin, RbcMsg, RbcState};
use std::collections::BTreeMap;

fn no_op<M: 'static>() -> Behavior<M> {
    Box::new(|_, _, _| Vec::new())
}

#[test]
fn rbc_flooded_ready_for_fake_value_does_not_deliver() {
    // A single byzantine player (t=1, n=4) sends Ready(FAKE) to everyone;
    // delivery needs 2t+1 = 3 distinct Ready senders, and honest players
    // never echo a value without the echo quorum: nobody delivers FAKE.
    let n = 4;
    let mut states: Vec<RbcState<u64>> = (0..n).map(|_| RbcState::new(n, 1, 0)).collect();
    let mut delivered: Vec<Option<u64>> = vec![None; n];
    let behavior: Behavior<RbcMsg<u64>> = Box::new(|me, _from, _msg| {
        (0..4).filter(|&p| p != me).map(|p| (p, RbcMsg::Ready(666))).collect()
    });
    let mut net = Net::new(n, vec![3], 9, behavior);
    let batch = states[0].start(42);
    net.push_batch(0, batch);
    net.run(|to, from, msg, sink| {
        let (out, d) = states[to].on_message(from, msg);
        if let Some(v) = d {
            delivered[to] = Some(v);
        }
        sink.push_batch(to, out);
    });
    for (i, d) in delivered.iter().enumerate() {
        if i != 3 {
            assert_eq!(*d, Some(42), "player {i} must deliver the real value");
        }
    }
}

#[test]
fn rbc_byzantine_dealer_equivocation_never_splits_honest_players() {
    // The dealer sends different Inits to different halves across many
    // schedules; whatever honest players deliver, they deliver the SAME
    // value (agreement), possibly nothing.
    let n = 7;
    let t = 2;
    for seed in 0..20 {
        let mut states: Vec<RbcState<u64>> = (0..n).map(|_| RbcState::new(n, t, 6)).collect();
        let mut delivered: Vec<Option<u64>> = vec![None; n];
        let mut net = Net::new(n, vec![6], seed, no_op());
        for p in 0..3 {
            net.push(6, p, RbcMsg::Init(1));
        }
        for p in 3..6 {
            net.push(6, p, RbcMsg::Init(2));
        }
        net.run(|to, from, msg, sink| {
            let (out, d) = states[to].on_message(from, msg);
            if let Some(v) = d {
                delivered[to] = Some(v);
            }
            sink.push_batch(to, out);
        });
        let vals: Vec<u64> = delivered[..6].iter().flatten().copied().collect();
        assert!(
            vals.windows(2).all(|w| w[0] == w[1]),
            "seed {seed}: honest players split: {delivered:?}"
        );
    }
}

#[test]
fn aba_forged_done_below_quorum_does_not_decide() {
    // t Done(v) messages (here t=2 from one equivocating byz via two ids is
    // impossible — senders are deduplicated — so a single byz contributes
    // one) never reach the t+1 adoption threshold by themselves.
    let n = 7;
    let t = 2;
    let mut s = AbaState::new(n, t, 0, Box::new(IdealCoin::new(0)));
    let _ = s.start(true);
    let (_, d1) = s.on_message(5, AbaMsg::Done { v: false });
    let (_, d2) = s.on_message(5, AbaMsg::Done { v: false }); // duplicate sender
    assert!(d1.is_none() && d2.is_none());
    assert_eq!(s.decided(), None, "one forger cannot reach t+1 = 3");
}

#[test]
fn aba_byzantine_cannot_inject_a_value_no_honest_proposed() {
    // All honest input true; two byzantine players (n=7, t=2) flood BVal
    // and Aux for false. Acceptance of false needs 2t+1 = 5 BVal senders —
    // impossible with 2 liars and no honest relay.
    let n = 7;
    let t = 2;
    let behavior: Behavior<AbaMsg> = Box::new(|me, from, msg| match *msg {
        // React only to honest traffic: responding to the other byzantine's
        // floods would model an infinite mailbox loop, not an attack.
        AbaMsg::BVal { round, .. } if from < 5 => (0..5)
            .filter(|&p| p != me)
            .flat_map(|p| {
                vec![
                    (p, AbaMsg::BVal { round, v: false }),
                    (p, AbaMsg::Aux { round, v: false }),
                ]
            })
            .collect(),
        _ => Vec::new(),
    });
    for seed in 0..10 {
        let mut states: Vec<AbaState> = (0..n)
            .map(|_| AbaState::new(n, t, 0, Box::new(IdealCoin::new(3)) as Box<dyn CoinSource>))
            .collect();
        let mut decisions: Vec<Option<bool>> = vec![None; n];
        let mut net = Net::new(n, vec![5, 6], seed, behavior.clone_box());
        for i in 0..5 {
            let batch = states[i].start(true);
            net.push_batch(i, batch);
        }
        net.run(|to, from, msg, sink| {
            let (out, d) = states[to].on_message(from, msg);
            if let Some(v) = d {
                decisions[to] = Some(v);
            }
            sink.push_batch(to, out);
        });
        for (i, d) in decisions.iter().enumerate().take(5) {
            assert_eq!(*d, Some(true), "validity violated at player {i}, seed {seed}");
        }
    }
}

#[test]
fn acs_byzantine_rbc_equivocator_is_either_consistent_or_excluded() {
    // The byzantine party equivocates in its own broadcast; ACS must still
    // give all honest players the same subset, and if the equivocator is
    // included, every honest player holds the same value for it.
    let n = 4;
    let t = 1;
    for seed in 0..15 {
        let mut states: Vec<AcsState<u64>> = (0..n).map(|i| AcsState::new(n, t, i, 5)).collect();
        let mut outputs: Vec<Option<BTreeMap<usize, u64>>> = vec![None; n];
        let mut net = Net::new(n, vec![3], seed, no_op());
        for i in 0..3 {
            let batch = states[i].start(100 + i as u64);
            net.push_batch(i, batch);
        }
        // Byzantine 3 equivocates in its RBC Init.
        net.push(3, 0, AcsMsg::Rbc { dealer: 3, inner: RbcMsg::Init(7) });
        net.push(3, 1, AcsMsg::Rbc { dealer: 3, inner: RbcMsg::Init(8) });
        net.push(3, 2, AcsMsg::Rbc { dealer: 3, inner: RbcMsg::Init(7) });
        net.run(|to, from, msg, sink| {
            let (out, done) = states[to].on_message(from, msg);
            if let Some(s) = done {
                outputs[to] = Some(s);
            }
            sink.push_batch(to, out);
        });
        let first = outputs[0].clone().expect("honest ACS output");
        for (i, o) in outputs.iter().enumerate().take(3) {
            assert_eq!(o.as_ref(), Some(&first), "player {i}, seed {seed}");
        }
        assert!(first.len() >= n - t);
        if let Some(v) = first.get(&3) {
            assert!(*v == 7 || *v == 8, "agreed value is one of the dealer's claims");
        }
    }
}

#[test]
fn acs_two_silent_parties_at_exact_threshold() {
    // n = 7, t = 2: with both byzantine parties silent, ACS still completes
    // with |S| ≥ 5 and identical outputs.
    let n = 7;
    let t = 2;
    for seed in 0..5 {
        let mut states: Vec<AcsState<u64>> = (0..n).map(|i| AcsState::new(n, t, i, 1)).collect();
        let mut outputs: Vec<Option<BTreeMap<usize, u64>>> = vec![None; n];
        let mut net = Net::new(n, vec![5, 6], seed, no_op());
        for i in 0..5 {
            let batch = states[i].start(i as u64);
            net.push_batch(i, batch);
        }
        net.run(|to, from, msg, sink| {
            let (out, done) = states[to].on_message(from, msg);
            if let Some(s) = done {
                outputs[to] = Some(s);
            }
            sink.push_batch(to, out);
        });
        let first = outputs[0].clone().expect("output");
        assert!(first.len() >= 5, "seed {seed}: |S| = {}", first.len());
        for (i, o) in outputs.iter().enumerate().take(5) {
            assert_eq!(o.as_ref(), Some(&first), "player {i}, seed {seed}");
        }
    }
}
