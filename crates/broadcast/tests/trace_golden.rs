//! Golden trace-equality suite: pins the `World` event plane to the seed
//! semantics.
//!
//! Lemma 6.8 reasons about *message patterns* — the environment-visible
//! `(s,i,j,k)/(d,i,j,k)` event sequences. The indexed event plane (see
//! `mediator_sim::world`) must reproduce them **byte for byte**: the same
//! scheduler choices at every step, the same `Outcome` counters, the same
//! traces. This suite hashes the full pattern + outcome of RBC and ABA
//! worlds across the whole `SchedulerKind::battery` × 32 seeds and compares
//! against constants captured from the pre-refactor implementation.
//!
//! To regenerate after an *intentional* semantic change, run
//! `cargo test -p mediator-bcast --test trace_golden -- --ignored --nocapture`
//! and paste the printed tables.

use mediator_bcast::{AbaPeer, RbcPeer};
use mediator_bcast::{AbaState, IdealCoin};
use mediator_sim::sansio::run_machines;
use mediator_sim::{Outcome, SchedulerKind};

/// The single-sourced run fingerprint (see [`Outcome::fingerprint`]).
fn outcome_hash(out: &Outcome) -> u64 {
    out.fingerprint()
}

const SEEDS: u64 = 32;

fn run_rbc(kind: &SchedulerKind, seed: u64) -> Outcome {
    let machines: Vec<RbcPeer<u64>> = (0..4)
        .map(|me| RbcPeer::new(4, 1, 0, me, (me == 0).then_some(42)))
        .collect();
    run_machines(machines, Vec::new(), kind.build().as_mut(), seed, 200_000).0
}

fn run_aba(kind: &SchedulerKind, seed: u64) -> Outcome {
    let machines: Vec<AbaPeer> = (0..4)
        .map(|i| {
            AbaPeer::new(
                AbaState::new(4, 1, 0, Box::new(IdealCoin::new(9))),
                i % 2 == 0,
            )
        })
        .collect();
    run_machines(machines, Vec::new(), kind.build().as_mut(), seed, 500_000).0
}

/// Folds the per-seed outcome hashes of one scheduler kind into one value.
fn battery_hash(run: impl Fn(&SchedulerKind, u64) -> Outcome) -> Vec<(String, u64)> {
    SchedulerKind::battery(4)
        .iter()
        .map(|kind| {
            let mut h = 0u64;
            for seed in 0..SEEDS {
                h = h
                    .rotate_left(1)
                    .wrapping_add(outcome_hash(&run(kind, seed)));
            }
            (format!("{kind:?}"), h)
        })
        .collect()
}

/// Golden values captured from the pre-event-plane-refactor seed (PR 1).
const GOLDEN_RBC: &[(&str, u64)] = &[
    ("Random", 0x92776b952105af7f),
    ("Fifo", 0xe59bcef817d9ebf7),
    ("Lifo", 0x27fddd4fa30bcb53),
    ("TargetedDelay([0])", 0xc76d97cc7e0c39d0),
    ("TargetedDelay([1])", 0xf34681fa916ca726),
    ("TargetedDelay([2])", 0xa576f082d5322dbf),
    (
        "Partition { group: [0, 1], heal_after: 200 }",
        0x3ad343ff737c6a42,
    ),
];

const GOLDEN_ABA: &[(&str, u64)] = &[
    ("Random", 0xfd9a418d2525a158),
    ("Fifo", 0xcda2f919b6de26e6),
    ("Lifo", 0x51d872b250d22e72),
    ("TargetedDelay([0])", 0xada0a32dbbe5c66d),
    ("TargetedDelay([1])", 0x63f5844c0d7c2ede),
    ("TargetedDelay([2])", 0x132687b3458b18b6),
    (
        "Partition { group: [0, 1], heal_after: 200 }",
        0xae9879aac7f862d8,
    ),
];

fn check(golden: &[(&str, u64)], got: &[(String, u64)], what: &str) {
    assert_eq!(golden.len(), got.len(), "{what}: battery size changed");
    for ((gk, gh), (k, h)) in golden.iter().zip(got) {
        assert_eq!(gk, k, "{what}: scheduler battery order changed");
        assert_eq!(
            *gh, *h,
            "{what}/{k}: message pattern diverged from the seed event plane \
             (Lemma 6.8 semantics must survive byte-for-byte)"
        );
    }
}

#[test]
fn rbc_traces_match_seed_event_plane() {
    check(GOLDEN_RBC, &battery_hash(run_rbc), "rbc");
}

#[test]
fn aba_traces_match_seed_event_plane() {
    check(GOLDEN_ABA, &battery_hash(run_aba), "aba");
}

/// Regeneration helper: prints the tables to paste above.
#[test]
#[ignore = "golden-value regeneration helper"]
fn print_golden_tables() {
    for (name, table) in [
        ("GOLDEN_RBC", battery_hash(run_rbc)),
        ("GOLDEN_ABA", battery_hash(run_aba)),
    ] {
        println!("const {name}: &[(&str, u64)] = &[");
        for (k, h) in table {
            println!("    (\"{k}\", {h:#018x}),");
        }
        println!("];");
    }
}
