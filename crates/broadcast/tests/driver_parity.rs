//! Driver parity: the legacy `Net` harness and the `World` adapter must
//! agree on what the protocols decide.
//!
//! For every seed (64 proptest cases — beyond the ≥ 32 the acceptance bar
//! asks for) each protocol runs once under the legacy seeded-random `Net`
//! driver and once per [`SchedulerKind`] in the battery under the `World`
//! via the shared sans-IO adapter:
//!
//! * **RBC** with an honest dealer: the decision (the delivered value) is
//!   schedule-independent, so every honest player must output the *same*
//!   value under every driver — bitwise parity.
//! * **ABA** with unanimous inputs: validity forces the decision, so the
//!   same bitwise parity applies.
//! * **ACS**: the agreed subset legitimately *depends on the schedule* (an
//!   adversarial scheduler can keep a slow dealer out of the core), so
//!   bitwise cross-driver equality would be asking the paper for more than
//!   it promises. What must hold under every driver: all honest players
//!   output the **identical** subset, the subset has ≥ n − t members, and
//!   each member's agreed value is the value that member actually dealt —
//!   and those agreed values must match across drivers member-by-member.

use mediator_bcast::driver::{AbaPeer, AcsPeer, RbcPeer};
use mediator_bcast::harness::Net;
use mediator_bcast::{AbaState, AcsState, IdealCoin, RbcState};
use mediator_sim::sansio::{run_machines, Behavior};
use mediator_sim::SchedulerKind;
use proptest::prelude::*;
use std::collections::BTreeMap;

const N: usize = 4;
const T: usize = 1;

fn no_op<M: 'static>() -> Behavior<M> {
    Box::new(|_, _, _| Vec::new())
}

/// Every scheduler family the simulator ships.
fn battery() -> Vec<SchedulerKind> {
    SchedulerKind::battery(N)
}

// ---- legacy Net runners ----------------------------------------------------

fn rbc_under_net(value: u64, seed: u64) -> Vec<Option<u64>> {
    let mut states: Vec<RbcState<u64>> = (0..N).map(|_| RbcState::new(N, T, 0)).collect();
    let mut delivered: Vec<Option<u64>> = vec![None; N];
    let mut net = Net::new(N, vec![], seed, no_op());
    let batch = states[0].start(value);
    net.push_batch(0, batch);
    net.run(|to, from, msg, sink| {
        let (out, d) = states[to].on_message(from, msg);
        if let Some(v) = d {
            delivered[to] = Some(v);
        }
        sink.push_batch(to, out);
    });
    delivered
}

fn aba_under_net(input: bool, seed: u64) -> Vec<Option<bool>> {
    let mut states: Vec<AbaState> = (0..N)
        .map(|_| AbaState::new(N, T, 0, Box::new(IdealCoin::new(99))))
        .collect();
    let mut decisions: Vec<Option<bool>> = vec![None; N];
    let mut net = Net::new(N, vec![], seed, no_op());
    for (i, s) in states.iter_mut().enumerate() {
        let batch = s.start(input);
        net.push_batch(i, batch);
    }
    net.run(|to, from, msg, sink| {
        let (out, d) = states[to].on_message(from, msg);
        if let Some(v) = d {
            decisions[to] = Some(v);
        }
        sink.push_batch(to, out);
    });
    decisions
}

fn acs_under_net(seed: u64) -> Vec<Option<BTreeMap<usize, u64>>> {
    let mut states: Vec<AcsState<u64>> = (0..N).map(|i| AcsState::new(N, T, i, 7)).collect();
    let mut outputs: Vec<Option<BTreeMap<usize, u64>>> = vec![None; N];
    let mut net = Net::new(N, vec![], seed, no_op());
    for (i, s) in states.iter_mut().enumerate() {
        let batch = s.start(100 + i as u64);
        net.push_batch(i, batch);
    }
    net.run(|to, from, msg, sink| {
        let (out, done) = states[to].on_message(from, msg);
        if let Some(s) = done {
            outputs[to] = Some(s);
        }
        sink.push_batch(to, out);
    });
    outputs
}

// ---- World-adapter runners -------------------------------------------------

fn rbc_under_world(value: u64, kind: &SchedulerKind, seed: u64) -> Vec<Option<u64>> {
    let machines: Vec<RbcPeer<u64>> = (0..N)
        .map(|me| RbcPeer::new(N, T, 0, me, (me == 0).then_some(value)))
        .collect();
    run_machines(machines, Vec::new(), kind.build().as_mut(), seed, 500_000).1
}

fn aba_under_world(input: bool, kind: &SchedulerKind, seed: u64) -> Vec<Option<bool>> {
    let machines: Vec<AbaPeer> = (0..N)
        .map(|_| AbaPeer::new(AbaState::new(N, T, 0, Box::new(IdealCoin::new(99))), input))
        .collect();
    run_machines(machines, Vec::new(), kind.build().as_mut(), seed, 1_000_000).1
}

fn acs_under_world(kind: &SchedulerKind, seed: u64) -> Vec<Option<BTreeMap<usize, u64>>> {
    let machines: Vec<AcsPeer<u64>> = (0..N)
        .map(|me| AcsPeer::new(N, T, me, 7, 100 + me as u64))
        .collect();
    run_machines(machines, Vec::new(), kind.build().as_mut(), seed, 2_000_000).1
}

// ---- parity properties -----------------------------------------------------

proptest! {
    #[test]
    fn rbc_decisions_identical_across_drivers(value in any::<u64>(), seed in any::<u64>()) {
        let reference = rbc_under_net(value, seed);
        prop_assert_eq!(&reference, &vec![Some(value); N], "Net: everyone delivers the dealt value");
        for kind in battery() {
            let world = rbc_under_world(value, &kind, seed);
            prop_assert_eq!(&world, &reference, "scheduler {:?}", kind);
        }
    }

    #[test]
    fn aba_decisions_identical_across_drivers(input in any::<bool>(), seed in any::<u64>()) {
        let reference = aba_under_net(input, seed);
        prop_assert_eq!(&reference, &vec![Some(input); N], "Net: validity forces the decision");
        for kind in battery() {
            let world = aba_under_world(input, &kind, seed);
            prop_assert_eq!(&world, &reference, "scheduler {:?}", kind);
        }
    }

    #[test]
    fn acs_invariants_and_member_values_agree_across_drivers(seed in any::<u64>()) {
        let check = |outputs: &[Option<BTreeMap<usize, u64>>], label: &str| -> BTreeMap<usize, u64> {
            let first = outputs[0].clone().unwrap_or_else(|| panic!("{label}: no output"));
            assert!(first.len() >= N - T, "{label}: |S| = {} < n - t", first.len());
            for (j, o) in outputs.iter().enumerate() {
                assert_eq!(o.as_ref(), Some(&first), "{label}: player {j} disagrees");
            }
            for (&j, &v) in &first {
                assert_eq!(v, 100 + j as u64, "{label}: member {j} carries a forged value");
            }
            first
        };
        let reference = check(&acs_under_net(seed), "net");
        for kind in battery() {
            let world = check(&acs_under_world(&kind, seed), &format!("world/{kind:?}"));
            // The subset may differ per schedule; agreed values of common
            // members must not.
            for (j, v) in &world {
                if let Some(rv) = reference.get(j) {
                    prop_assert_eq!(v, rv, "member {} differs across drivers", j);
                }
            }
        }
    }
}
